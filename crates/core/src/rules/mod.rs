//! The Ruleset and rule-matching engine (paper §3.1).
//!
//! "Ruleset is triggered by a sequence of Events. ... The matching in
//! the Ruleset is based on Events that can potentially encapsulate
//! information from multiple packets and can bear state information.
//! Besides the information that Events provide, the Ruleset can also
//! perform the matching based on crude information directly from the
//! Trails."
//!
//! The ruleset is **compiled**: at install time every rule declares its
//! [`RuleInterest`] — the set of [`EventClass`]es it can possibly react
//! to — and [`CompiledRuleset`] indexes the rules by class so an event
//! is only offered to the rules subscribed to it. A benign RTP event
//! touches zero or one rule regardless of how many rules are installed;
//! matching cost scales with *interested* rules, not total rules.

pub(crate) mod builtin;
mod bye_rule;
mod combo;
pub mod dsl;
mod predicate;
mod spec;
pub(crate) mod threshold;

pub use builtin::{builtin_ruleset, rapid_spec, RuleToggles};
pub use bye_rule::{ByeAttackRule, ByeOrigin};
pub use combo::{CombinationRule, SequenceRule};
pub use dsl::{Diagnostic, Program};
pub use predicate::{ClassMatcher, CmpOp, FieldPredicate, PredValue, PredicateRule};
pub use spec::{parse_ruleset, SpecError};
pub use threshold::{ThresholdRule, ThresholdSpec, MAX_DISTINCT_THRESHOLD};

use crate::alert::Alert;
use crate::event::{Event, EventClass};
use crate::observe::RuleEval;
use crate::trail::{SessionKey, TrailStore};
use scidive_netsim::time::{SimDuration, SimTime};
use std::collections::HashMap;

/// Context a rule sees while matching: the current time plus read access
/// to the trails (the paper's "crude information" escape hatch).
pub struct RuleCtx<'a> {
    /// Current time.
    pub now: SimTime,
    /// The trail store.
    pub trails: &'a TrailStore,
    /// Constant-memory rate trackers (see [`crate::rate`]): any rule can
    /// keep windowed counts, distinct estimates, and fired latches here
    /// without per-key state. [`crate::rate::RateHub::exact`] reports
    /// the engine's `exact_rate_state` switch so rules that offer both
    /// paths can pick at event time.
    pub rates: &'a crate::rate::RateHub,
}

/// Where a rule emits its alerts. A thin push handle over the engine's
/// alert buffer — rules append in place instead of returning a
/// `Vec<Alert>` per `(event, rule)` call, so the common no-match case
/// costs nothing.
pub struct AlertSink<'a> {
    out: &'a mut Vec<Alert>,
}

impl<'a> AlertSink<'a> {
    /// Wraps an alert buffer.
    pub fn new(out: &'a mut Vec<Alert>) -> AlertSink<'a> {
        AlertSink { out }
    }

    /// Emits one alert.
    pub fn push(&mut self, alert: Alert) {
        self.out.push(alert);
    }

    /// Alerts in the underlying buffer so far (including ones emitted
    /// before this sink was created).
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// Whether the underlying buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }
}

/// The set of [`EventClass`]es a rule subscribes to: a bitset over the
/// class enum plus an "all events" escape hatch for rules that cannot
/// enumerate their triggers.
///
/// See [`Rule::interests`] for the contract implementors must uphold.
///
/// # Examples
///
/// ```
/// use scidive_core::event::EventClass;
/// use scidive_core::rules::RuleInterest;
///
/// let i = RuleInterest::of(&[EventClass::SipMalformed]);
/// assert!(i.contains(EventClass::SipMalformed));
/// assert!(!i.contains(EventClass::RtpFlowActive));
/// assert!(RuleInterest::all().contains(EventClass::RtpFlowActive));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleInterest {
    bits: u32,
    all: bool,
}

impl RuleInterest {
    /// Subscribes to nothing (useful as a fold seed).
    pub const fn none() -> RuleInterest {
        RuleInterest { bits: 0, all: false }
    }

    /// Subscribes to every event class, present and future — the escape
    /// hatch (and the default for custom rules that do not override
    /// [`Rule::interests`]).
    pub const fn all() -> RuleInterest {
        RuleInterest { bits: 0, all: true }
    }

    /// Subscribes to exactly the given classes.
    pub fn of(classes: &[EventClass]) -> RuleInterest {
        let mut i = RuleInterest::none();
        for c in classes {
            i = i.with(*c);
        }
        i
    }

    /// Adds one class (builder-style).
    pub fn with(mut self, class: EventClass) -> RuleInterest {
        self.bits |= 1 << (class as u32);
        self
    }

    /// Whether events of `class` are subscribed.
    pub fn contains(self, class: EventClass) -> bool {
        self.all || self.bits & (1 << (class as u32)) != 0
    }

    /// Whether this is the all-events escape hatch.
    pub fn is_all(self) -> bool {
        self.all
    }
}

/// Default idle timeout for per-rule session state, mirroring
/// [`crate::trail::TrailStoreConfig`]'s default `idle_timeout`. The
/// engine overrides it with the configured trail timeout at install
/// time ([`Rule::set_state_timeout`]).
pub const DEFAULT_STATE_TIMEOUT: SimDuration = SimDuration::from_secs(600);

/// Live/expired entry counts of a rule's session-keyed state, summed
/// into the engine's [`crate::observe::StateGauges`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuleStateStats {
    /// Live session entries across the rule's state maps.
    pub sessions: u64,
    /// Entries dropped by idle expiry so far (monotonic).
    pub expired: u64,
}

impl std::ops::Add for RuleStateStats {
    type Output = RuleStateStats;
    fn add(self, rhs: RuleStateStats) -> RuleStateStats {
        RuleStateStats {
            sessions: self.sessions + rhs.sessions,
            expired: self.expired + rhs.expired,
        }
    }
}

/// Session-keyed rule state with idle expiry mirroring
/// [`crate::trail::TrailStore::expire`]: an entry untouched for the
/// timeout is gone, exactly as the session's trails are.
///
/// Staleness is checked **at access** — a stale entry reads as absent
/// the moment the timeout passes, regardless of when the background
/// sweep last ran — so rule behavior is a pure function of the event
/// stream. The periodic sweep (every `timeout / 4` of sim time, piggy-
/// backed on accesses) is pure memory reclamation; running it more or
/// less often cannot change what a rule observes. That determinism is
/// what keeps sharded and single-engine deployments byte-identical.
///
/// Every access refreshes the entry's idle clock: a session the rule
/// keeps seeing (through its subscribed classes) never expires mid-
/// conversation; only sessions gone quiet are reclaimed.
#[derive(Debug)]
pub struct SessionMap<V> {
    map: HashMap<SessionKey, (V, SimTime)>,
    timeout: SimDuration,
    last_sweep: SimTime,
    expired: u64,
}

impl<V> Default for SessionMap<V> {
    fn default() -> SessionMap<V> {
        SessionMap::new()
    }
}

impl<V> SessionMap<V> {
    /// Creates an empty map with [`DEFAULT_STATE_TIMEOUT`].
    pub fn new() -> SessionMap<V> {
        SessionMap {
            map: HashMap::new(),
            timeout: DEFAULT_STATE_TIMEOUT,
            last_sweep: SimTime::ZERO,
            expired: 0,
        }
    }

    /// Changes the idle timeout (the engine calls this with the trail
    /// store's timeout at rule install).
    pub fn set_timeout(&mut self, timeout: SimDuration) {
        self.timeout = timeout;
    }

    /// Accesses a session's state at `now`, refreshing its idle clock.
    /// A stale entry (idle ≥ timeout) is dropped and reads as absent.
    pub fn get_mut(&mut self, session: &SessionKey, now: SimTime) -> Option<&mut V> {
        self.maybe_sweep(now);
        if let Some((_, touched)) = self.map.get(session) {
            if now.saturating_since(*touched) >= self.timeout {
                self.map.remove(session);
                self.expired += 1;
                return None;
            }
        }
        self.map.get_mut(session).map(|(v, touched)| {
            *touched = now;
            v
        })
    }

    /// Inserts (or overwrites) a session's state, stamped at `now`.
    pub fn insert(&mut self, session: SessionKey, value: V, now: SimTime) {
        self.maybe_sweep(now);
        self.map.insert(session, (value, now));
    }

    /// Removes a session's state (e.g. after a rule fires and resets).
    pub fn remove(&mut self, session: &SessionKey) {
        self.map.remove(session);
    }

    /// Live entries (including any not yet reclaimed by the sweep; the
    /// sweep runs at least every `timeout / 4` of accessed sim time, so
    /// this gauge plateaus under sustained load).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the map holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Entries dropped by idle expiry so far (monotonic).
    pub fn expired(&self) -> u64 {
        self.expired
    }

    /// Gauge pair for [`RuleStateStats`] summing.
    pub fn state_stats(&self) -> RuleStateStats {
        RuleStateStats {
            sessions: self.map.len() as u64,
            expired: self.expired,
        }
    }

    /// Reclaims stale entries at most once per `timeout / 4`. Pure
    /// reclamation: [`SessionMap::get_mut`] already treats stale entries
    /// as absent, so sweep scheduling cannot affect rule output.
    fn maybe_sweep(&mut self, now: SimTime) {
        if now.saturating_since(self.last_sweep) < self.timeout / 4 {
            return;
        }
        self.last_sweep = now;
        let timeout = self.timeout;
        let before = self.map.len();
        self.map
            .retain(|_, (_, touched)| now.saturating_since(*touched) < timeout);
        self.expired += (before - self.map.len()) as u64;
    }
}

/// A detection rule.
///
/// # Implementing `interests` (the dispatch contract)
///
/// The engine compiles the ruleset into an event-class-indexed dispatch
/// table: [`Rule::on_event`] is only invoked for events whose class is
/// in the rule's declared [`RuleInterest`]. Implementors must uphold:
///
/// * **Soundness** — every event class the rule can react to (emit an
///   alert for, or mutate state on) must be in the interest set. A
///   class left out is never delivered; under-declaring silently
///   disables part of the rule.
/// * **Stability** — the set must not change after the rule is
///   installed: it is read once at install time. Rules whose triggers
///   are dynamic must return [`RuleInterest::all`].
/// * **Indifference** — the rule must not *depend* on seeing events
///   outside its interest set (e.g. for timekeeping or state expiry).
///   The default implementation returns [`RuleInterest::all`], so a
///   custom rule that ignores this method keeps full-scan semantics and
///   simply forgoes the dispatch speedup.
///
/// Rules holding per-session state should keep it in a [`SessionMap`]
/// (and report it via [`Rule::state_stats`]) so it expires with the
/// trail-store idle timeout instead of growing across sessions forever.
pub trait Rule {
    /// Stable rule identifier (kebab-case).
    fn id(&self) -> &str;

    /// One-line description.
    fn description(&self) -> &str;

    /// Whether the rule correlates more than one protocol (Table 1's
    /// "Cross-protocol?" column).
    fn is_cross_protocol(&self) -> bool;

    /// Whether the rule relies on state spanning multiple packets
    /// (Table 1's "Stateful?" column).
    fn is_stateful(&self) -> bool;

    /// The event classes this rule subscribes to (see the trait-level
    /// contract). Defaults to every event, which is always sound.
    fn interests(&self) -> RuleInterest {
        RuleInterest::all()
    }

    /// Hot-reload state-adoption key. Two instances returning the same
    /// non-zero value promise to be **behaviorally interchangeable** —
    /// built from identical parameters, with identical [`Rule::interests`]
    /// — so [`CompiledRuleset::adopt_state`] may move one's accumulated
    /// session state wholesale into the other's slot across a ruleset
    /// swap. Implementations must fold *every* behavior-determining
    /// construction parameter into the hash. The default `0` means "not
    /// adoptable": the rule restarts stateless after a swap, which is
    /// always sound, merely forgetful.
    fn state_signature(&self) -> u64 {
        0
    }

    /// Feeds one event; alerts are pushed into `sink`.
    fn on_event(&mut self, ev: &Event, ctx: &RuleCtx<'_>, sink: &mut AlertSink<'_>);

    /// Sets the idle timeout for the rule's session-keyed state. The
    /// engine calls this at install with the trail-store timeout so
    /// rule state and trails expire together. Stateless rules ignore it.
    fn set_state_timeout(&mut self, _timeout: SimDuration) {}

    /// Live/expired counts of the rule's session-keyed state, for the
    /// leak-plateau gauges. Stateless rules report zero.
    fn state_stats(&self) -> RuleStateStats {
        RuleStateStats::default()
    }
}

/// Test/tooling convenience: runs one event through a rule, collecting
/// the alerts it emits into a fresh `Vec`.
pub fn collect_alerts(rule: &mut dyn Rule, ev: &Event, ctx: &RuleCtx<'_>) -> Vec<Alert> {
    let mut out = Vec::new();
    rule.on_event(ev, ctx, &mut AlertSink::new(&mut out));
    out
}

/// The ruleset compiled for dispatch: rules in install order plus a
/// per-[`EventClass`] index of the rules subscribed to that class.
///
/// Dispatch offers an event only to its class's subscribers, in install
/// order — the same relative order a full scan would reach them in —
/// and rules never mutate state on classes outside their interest set,
/// so compiled dispatch and the full-scan reference
/// (`full_scan = true`, every event to every rule) produce **byte-
/// identical** alert streams. `scripts/ci.sh` proves it on benign plus
/// all four attack scenarios (`tests/rule_dispatch_equivalence.rs`).
pub struct CompiledRuleset {
    rules: Vec<Box<dyn Rule>>,
    /// `class as usize` → indices into `rules`, install order.
    by_class: Vec<Vec<u32>>,
    /// Exact per-rule `on_event` invocation counts (same indexing as
    /// `rules`). Dispatch makes these nearly free, so they are exact
    /// counters, not samples.
    evals: Vec<u64>,
    full_scan: bool,
    state_timeout: SimDuration,
}

impl CompiledRuleset {
    /// Compiles a ruleset. With `full_scan` every event is offered to
    /// every rule — the reference mode equivalence tests and benchmarks
    /// compare dispatch against.
    pub fn new(rules: Vec<Box<dyn Rule>>, full_scan: bool) -> CompiledRuleset {
        let mut compiled = CompiledRuleset {
            rules: Vec::new(),
            by_class: vec![Vec::new(); EventClass::COUNT],
            evals: Vec::new(),
            full_scan,
            state_timeout: DEFAULT_STATE_TIMEOUT,
        };
        for rule in rules {
            compiled.push(rule);
        }
        compiled
    }

    /// Alias of [`CompiledRuleset::new`], named for symmetry with
    /// [`CompiledRuleset::from_program`].
    pub fn from_rules(rules: Vec<Box<dyn Rule>>, full_scan: bool) -> CompiledRuleset {
        CompiledRuleset::new(rules, full_scan)
    }

    /// Compiles a validated DSL [`Program`] (see [`crate::rules::dsl`])
    /// into a ruleset — each clause lowers onto the same runtime struct
    /// its hand-written twin uses.
    pub fn from_program(program: &Program, full_scan: bool) -> CompiledRuleset {
        CompiledRuleset::new(dsl::compile_program(program), full_scan)
    }

    /// Moves accumulated per-rule session state from `old` (the ruleset
    /// being replaced in a hot reload) into this one, wherever a rule
    /// survived the swap.
    ///
    /// A rule survives when some old rule has the same id **and** the
    /// same non-zero [`Rule::state_signature`] — i.e. it was built from
    /// identical parameters. The old instance is then moved wholesale
    /// into the new ruleset's slot (same signature ⇒ same interests, so
    /// the dispatch index stays valid) and keeps its `SessionMap`s,
    /// partial sequences, fired latches, and exact threshold windows.
    /// Rules that changed, are new, or report signature 0 start fresh —
    /// exactly the "new ruleset from the boundary onward" semantics.
    ///
    /// Returns the number of adopted rules and the old ruleset's final
    /// eval counters (for the engine to retire into its observation so
    /// invocation totals stay monotonic across swaps).
    pub fn adopt_state(&mut self, old: CompiledRuleset) -> (usize, Vec<RuleEval>) {
        let retired = old.rule_evals();
        let timeout = self.state_timeout;
        let mut pool: Vec<Option<(u64, Box<dyn Rule>)>> = old
            .rules
            .into_iter()
            .map(|r| Some((r.state_signature(), r)))
            .collect();
        let mut adopted = 0;
        for slot in &mut self.rules {
            let sig = slot.state_signature();
            if sig == 0 {
                continue;
            }
            let hit = pool.iter().position(|e| {
                e.as_ref()
                    .is_some_and(|(s, r)| *s == sig && r.id() == slot.id())
            });
            if let Some(i) = hit {
                let (_, mut old_rule) = pool[i].take().expect("position matched Some");
                // The new ruleset's timeout wins (it may differ if the
                // config changed between installs).
                old_rule.set_state_timeout(timeout);
                *slot = old_rule;
                adopted += 1;
            }
        }
        (adopted, retired)
    }

    /// Installs one rule: indexes its interest set and applies the
    /// state timeout.
    pub fn push(&mut self, mut rule: Box<dyn Rule>) {
        rule.set_state_timeout(self.state_timeout);
        let idx = self.rules.len() as u32;
        let interest = rule.interests();
        for class in EventClass::ALL {
            if interest.contains(class) {
                self.by_class[class as usize].push(idx);
            }
        }
        self.rules.push(rule);
        self.evals.push(0);
    }

    /// Sets the idle timeout for every installed (and future) rule's
    /// session state.
    pub fn set_state_timeout(&mut self, timeout: SimDuration) {
        self.state_timeout = timeout;
        for rule in &mut self.rules {
            rule.set_state_timeout(timeout);
        }
    }

    /// Offers one event to its subscribed rules (or to every rule in
    /// full-scan mode), in install order.
    pub fn dispatch(&mut self, ev: &Event, ctx: &RuleCtx<'_>, sink: &mut AlertSink<'_>) {
        if self.full_scan {
            for (i, rule) in self.rules.iter_mut().enumerate() {
                self.evals[i] += 1;
                rule.on_event(ev, ctx, sink);
            }
            return;
        }
        let class = ev.class() as usize;
        for k in 0..self.by_class[class].len() {
            let i = self.by_class[class][k] as usize;
            self.evals[i] += 1;
            self.rules[i].on_event(ev, ctx, sink);
        }
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Whether this instance runs the full-scan reference path.
    pub fn is_full_scan(&self) -> bool {
        self.full_scan
    }

    /// The idle timeout applied to per-rule session state.
    pub fn state_timeout(&self) -> SimDuration {
        self.state_timeout
    }

    /// Read access to the installed rules, install order.
    pub fn rules(&self) -> impl Iterator<Item = &dyn Rule> {
        self.rules.iter().map(|r| r.as_ref())
    }

    /// Exact per-rule `on_event` invocation counts, install order.
    pub fn rule_evals(&self) -> Vec<RuleEval> {
        self.rules
            .iter()
            .zip(&self.evals)
            .map(|(rule, evals)| RuleEval {
                rule: rule.id().to_string(),
                evals: *evals,
            })
            .collect()
    }

    /// Summed session-state gauges across all rules.
    pub fn state_stats(&self) -> RuleStateStats {
        self.rules
            .iter()
            .fold(RuleStateStats::default(), |acc, r| acc + r.state_stats())
    }
}

impl std::fmt::Debug for CompiledRuleset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledRuleset")
            .field("rules", &self.rules.len())
            .field("full_scan", &self.full_scan)
            .finish()
    }
}

/// Everything needed to build a [`CompiledRuleset`] — the form a
/// ruleset takes while crossing threads during a hot reload.
///
/// `Box<dyn Rule>` is not `Send`, so the sharded pipeline cannot ship
/// compiled rules to its workers. It ships this instead: the builtin
/// toggles plus the **validated** DSL program (plain `Send + Sync`
/// data), and every worker lowers it locally at the swap barrier. The
/// lowering is deterministic, so all workers (and the single-engine
/// reference) build behaviorally identical rulesets from one blueprint.
#[derive(Debug, Clone)]
pub struct RulesetBlueprint {
    /// Which built-in rules to install.
    pub toggles: RuleToggles,
    /// Operator rules appended after the builtins, if any. Must be
    /// validated ([`Program::parse`] / [`Program::check`]) — lowering
    /// assumes it.
    pub program: Option<Program>,
    /// Monotonic ruleset generation, stamped by the engine that created
    /// the blueprint and surfaced as a gauge after installs.
    pub generation: u64,
}

impl RulesetBlueprint {
    /// Lowers the blueprint: toggled builtins first (their relative
    /// order is fixed), then the program's rules in declaration order.
    pub fn build(&self, full_scan: bool, state_timeout: SimDuration) -> CompiledRuleset {
        let mut rules = builtin_ruleset(&self.toggles);
        if let Some(program) = &self.program {
            rules.extend(dsl::compile_program(program));
        }
        let mut compiled = CompiledRuleset::new(rules, full_scan);
        compiled.set_state_timeout(state_timeout);
        compiled
    }

    /// The threshold clauses the fold plane must evaluate for this
    /// blueprint: the builtin rapid-connect spec (when toggled on)
    /// followed by the program's threshold clauses.
    pub fn threshold_specs(&self) -> Vec<threshold::ThresholdSpec> {
        let mut specs = Vec::new();
        if self.toggles.rapid_connect {
            specs.push(builtin::rapid_spec());
        }
        if let Some(program) = &self.program {
            specs.extend(dsl::threshold_specs(program));
        }
        specs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alert::Severity;
    use crate::event::{EventKind, FlowKey};
    use crate::trail::{TrailStore, TrailStoreConfig};
    use std::net::Ipv4Addr;

    #[test]
    fn event_class_cast_matches_all_ordering() {
        // The dispatch table indexes by `class as usize`; `ALL` must
        // enumerate the variants in declaration (discriminant) order.
        for (i, c) in EventClass::ALL.into_iter().enumerate() {
            assert_eq!(c as usize, i, "EventClass::ALL out of order at {c:?}");
        }
        assert_eq!(EventClass::ALL.len(), EventClass::COUNT);
    }

    #[test]
    fn interest_bitset_and_all() {
        let i = RuleInterest::of(&[EventClass::SipMalformed, EventClass::AcctMismatch]);
        assert!(i.contains(EventClass::SipMalformed));
        assert!(i.contains(EventClass::AcctMismatch));
        assert!(!i.contains(EventClass::RtpFlowActive));
        assert!(!i.is_all());
        assert!(RuleInterest::all().contains(EventClass::RtpFlowActive));
        assert!(RuleInterest::all().is_all());
        assert!(!RuleInterest::none().contains(EventClass::SipMalformed));
    }

    #[test]
    fn session_map_expires_on_access_and_counts() {
        let mut m: SessionMap<u32> = SessionMap::new();
        m.set_timeout(SimDuration::from_secs(2));
        let k = SessionKey::new("c1");
        m.insert(k.clone(), 7, SimTime::from_millis(0));
        // Fresh access refreshes the idle clock.
        assert_eq!(
            m.get_mut(&k, SimTime::from_millis(1_500)).copied(),
            Some(7)
        );
        // 1.5s + 1.9s idle < timeout from the refresh: still there.
        assert_eq!(
            m.get_mut(&k, SimTime::from_millis(3_400)).copied(),
            Some(7)
        );
        // Now cross the timeout from the last touch: gone, counted.
        assert!(m.get_mut(&k, SimTime::from_millis(5_500)).is_none());
        assert_eq!(m.expired(), 1);
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn session_map_sweep_reclaims_untouched_entries() {
        let mut m: SessionMap<()> = SessionMap::new();
        m.set_timeout(SimDuration::from_secs(2));
        for i in 0..10 {
            m.insert(SessionKey::new(format!("s{i}")), (), SimTime::from_millis(i));
        }
        assert_eq!(m.len(), 10);
        // An access far in the future sweeps everything stale even
        // though none of the stale keys is touched directly.
        m.insert(SessionKey::new("fresh"), (), SimTime::from_secs(60));
        assert_eq!(m.len(), 1);
        assert_eq!(m.expired(), 10);
    }

    struct CountingRule {
        id: String,
        interest: RuleInterest,
        seen: u64,
    }

    impl Rule for CountingRule {
        fn id(&self) -> &str {
            &self.id
        }
        fn description(&self) -> &str {
            "counts deliveries"
        }
        fn is_cross_protocol(&self) -> bool {
            false
        }
        fn is_stateful(&self) -> bool {
            false
        }
        fn interests(&self) -> RuleInterest {
            self.interest
        }
        fn on_event(&mut self, _ev: &Event, _ctx: &RuleCtx<'_>, _sink: &mut AlertSink<'_>) {
            self.seen += 1;
        }
    }

    fn malformed(t: u64) -> Event {
        Event {
            time: SimTime::from_millis(t),
            session: Some(SessionKey::new("c1")),
            kind: EventKind::SipMalformed {
                violations: vec!["x".into()],
                src: Ipv4Addr::new(10, 0, 0, 9),
            },
        }
    }

    fn rtp_active(t: u64) -> Event {
        Event {
            time: SimTime::from_millis(t),
            session: Some(SessionKey::new("c1")),
            kind: EventKind::RtpFlowActive {
                flow: FlowKey {
                    src: Ipv4Addr::new(10, 0, 0, 3),
                    dst: Ipv4Addr::new(10, 0, 0, 2),
                    dst_port: 8000,
                },
            },
        }
    }

    #[test]
    fn dispatch_skips_uninterested_rules_and_counts_exactly() {
        let narrow = CountingRule {
            id: "narrow".into(),
            interest: RuleInterest::of(&[EventClass::SipMalformed]),
            seen: 0,
        };
        let wide = CountingRule {
            id: "wide".into(),
            interest: RuleInterest::all(),
            seen: 0,
        };
        let mut compiled = CompiledRuleset::new(vec![Box::new(narrow), Box::new(wide)], false);
        let store = TrailStore::new(TrailStoreConfig::default());
        let rates = crate::rate::RateHub::default();
        let ctx = RuleCtx {
            now: SimTime::ZERO,
            trails: &store,
            rates: &rates,
        };
        let mut out = Vec::new();
        let mut sink = AlertSink::new(&mut out);
        compiled.dispatch(&malformed(1), &ctx, &mut sink);
        compiled.dispatch(&rtp_active(2), &ctx, &mut sink);
        compiled.dispatch(&rtp_active(3), &ctx, &mut sink);
        let evals = compiled.rule_evals();
        assert_eq!(evals[0].rule, "narrow");
        assert_eq!(evals[0].evals, 1); // only the SipMalformed event
        assert_eq!(evals[1].rule, "wide");
        assert_eq!(evals[1].evals, 3); // the all-events escape hatch
    }

    #[test]
    fn full_scan_offers_everything_to_everyone() {
        let narrow = CountingRule {
            id: "narrow".into(),
            interest: RuleInterest::of(&[EventClass::SipMalformed]),
            seen: 0,
        };
        let mut compiled = CompiledRuleset::new(vec![Box::new(narrow)], true);
        let store = TrailStore::new(TrailStoreConfig::default());
        let rates = crate::rate::RateHub::default();
        let ctx = RuleCtx {
            now: SimTime::ZERO,
            trails: &store,
            rates: &rates,
        };
        let mut out = Vec::new();
        let mut sink = AlertSink::new(&mut out);
        compiled.dispatch(&rtp_active(1), &ctx, &mut sink);
        assert_eq!(compiled.rule_evals()[0].evals, 1);
    }

    #[test]
    fn sink_collects_in_emission_order() {
        let mut out = Vec::new();
        let mut sink = AlertSink::new(&mut out);
        sink.push(Alert::new("a", Severity::Info, SimTime::ZERO, None, "1"));
        sink.push(Alert::new("b", Severity::Info, SimTime::ZERO, None, "2"));
        assert_eq!(sink.len(), 2);
        assert_eq!(out[0].rule, "a");
        assert_eq!(out[1].rule, "b");
    }
}
