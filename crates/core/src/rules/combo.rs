//! Generic sequence / combination rules over event classes.
//!
//! The paper's Ruleset is "triggered by a sequence of Events"; these two
//! engines give rule authors that declaratively: [`SequenceRule`]
//! requires its steps in order, [`CombinationRule`] requires them in any
//! order, both per-session within a time window.

use crate::alert::{Alert, Severity};
use crate::event::{Event, EventClass};
use crate::rules::{AlertSink, Rule, RuleCtx, RuleInterest, RuleStateStats, SessionMap};
use scidive_netsim::time::{SimDuration, SimTime};

/// Construction-parameter hash shared by both rule kinds, for
/// [`Rule::state_signature`]: two instances agree exactly when every
/// behavior-determining parameter agrees, which is the hot-reload
/// state-adoption criterion.
fn signature(
    kind: &'static [u8],
    id: &str,
    description: &str,
    classes: &[EventClass],
    window: SimDuration,
    severity: Severity,
) -> u64 {
    let window_bytes = window.as_micros().to_le_bytes();
    let mut parts: Vec<&[u8]> = vec![
        kind,
        id.as_bytes(),
        description.as_bytes(),
        &window_bytes,
        match severity {
            Severity::Info => b"i",
            Severity::Warning => b"w",
            Severity::Critical => b"c",
        },
    ];
    for c in classes {
        parts.push(c.name().as_bytes());
    }
    crate::rate::hash_parts(0x636f_6d62_6f5f_7369, &parts)
}

/// A rule requiring events of given classes in order, per session,
/// within a window.
///
/// # Examples
///
/// ```
/// use scidive_core::rules::SequenceRule;
/// use scidive_core::event::EventClass;
/// use scidive_netsim::time::SimDuration;
///
/// let rule = SequenceRule::new(
///     "teardown-then-media",
///     "media after teardown",
///     vec![EventClass::CallTornDown, EventClass::OrphanRtpAfterBye],
///     SimDuration::from_secs(1),
/// );
/// assert_eq!(rule.id_str(), "teardown-then-media");
/// ```
#[derive(Debug)]
pub struct SequenceRule {
    id: String,
    description: String,
    steps: Vec<EventClass>,
    window: SimDuration,
    severity: Severity,
    /// session → (next step index, time of first matched step).
    partial: SessionMap<(usize, SimTime)>,
    fired: SessionMap<()>,
}

impl SequenceRule {
    /// Creates a sequence rule.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty.
    pub fn new(
        id: impl Into<String>,
        description: impl Into<String>,
        steps: Vec<EventClass>,
        window: SimDuration,
    ) -> SequenceRule {
        assert!(!steps.is_empty(), "sequence rule needs at least one step");
        SequenceRule {
            id: id.into(),
            description: description.into(),
            steps,
            window,
            severity: Severity::Critical,
            partial: SessionMap::new(),
            fired: SessionMap::new(),
        }
    }

    /// Sets the severity (builder-style).
    pub fn with_severity(mut self, severity: Severity) -> SequenceRule {
        self.severity = severity;
        self
    }

    /// The rule id (also available through the [`Rule`] trait).
    pub fn id_str(&self) -> &str {
        &self.id
    }
}

impl Rule for SequenceRule {
    fn id(&self) -> &str {
        &self.id
    }

    fn description(&self) -> &str {
        &self.description
    }

    fn is_cross_protocol(&self) -> bool {
        true // spans whatever protocols its steps come from
    }

    fn is_stateful(&self) -> bool {
        true
    }

    fn interests(&self) -> RuleInterest {
        RuleInterest::of(&self.steps)
    }

    fn state_signature(&self) -> u64 {
        signature(b"sequence", &self.id, &self.description, &self.steps, self.window, self.severity)
    }

    fn on_event(&mut self, ev: &Event, _ctx: &RuleCtx<'_>, sink: &mut AlertSink<'_>) {
        // Self-filter first: events outside the step classes must not
        // touch per-session state, so compiled dispatch (which never
        // offers them) stays state-identical to a full scan.
        if !self.steps.contains(&ev.class()) {
            return;
        }
        let Some(session) = &ev.session else {
            return;
        };
        if self.fired.get_mut(session, ev.time).is_some() {
            return;
        }
        let (next, started) = self
            .partial
            .get_mut(session, ev.time)
            .map(|p| *p)
            .unwrap_or((0, ev.time));
        // Window expiry resets progress.
        let (next, started) = if next > 0 && ev.time.saturating_since(started) > self.window {
            (0, ev.time)
        } else {
            (next, started)
        };
        if ev.class() != self.steps[next] {
            self.partial
                .insert(session.clone(), (next, started), ev.time);
            return;
        }
        let started = if next == 0 { ev.time } else { started };
        let next = next + 1;
        if next == self.steps.len() {
            self.partial.remove(session);
            self.fired.insert(session.clone(), (), ev.time);
            sink.push(Alert::new(
                self.id.clone(),
                self.severity,
                ev.time,
                Some(session.clone()),
                format!("{} (sequence complete)", self.description),
            ));
            return;
        }
        self.partial
            .insert(session.clone(), (next, started), ev.time);
    }

    fn set_state_timeout(&mut self, timeout: SimDuration) {
        self.partial.set_timeout(timeout);
        self.fired.set_timeout(timeout);
    }

    fn state_stats(&self) -> RuleStateStats {
        self.partial.state_stats() + self.fired.state_stats()
    }
}

/// A rule requiring events of all given classes, in any order, per
/// session, within a window.
#[derive(Debug)]
pub struct CombinationRule {
    id: String,
    description: String,
    required: Vec<EventClass>,
    window: SimDuration,
    severity: Severity,
    /// session → (matched mask, earliest match time).
    partial: SessionMap<(u64, SimTime)>,
    fired: SessionMap<()>,
}

impl CombinationRule {
    /// Creates a combination rule.
    ///
    /// # Panics
    ///
    /// Panics if `required` is empty or longer than 64 classes.
    pub fn new(
        id: impl Into<String>,
        description: impl Into<String>,
        required: Vec<EventClass>,
        window: SimDuration,
    ) -> CombinationRule {
        assert!(
            !required.is_empty() && required.len() <= 64,
            "combination rule needs 1..=64 classes"
        );
        CombinationRule {
            id: id.into(),
            description: description.into(),
            required,
            window,
            severity: Severity::Critical,
            partial: SessionMap::new(),
            fired: SessionMap::new(),
        }
    }

    /// Sets the severity (builder-style).
    pub fn with_severity(mut self, severity: Severity) -> CombinationRule {
        self.severity = severity;
        self
    }
}

impl Rule for CombinationRule {
    fn id(&self) -> &str {
        &self.id
    }

    fn description(&self) -> &str {
        &self.description
    }

    fn is_cross_protocol(&self) -> bool {
        true
    }

    fn is_stateful(&self) -> bool {
        true
    }

    fn interests(&self) -> RuleInterest {
        RuleInterest::of(&self.required)
    }

    fn state_signature(&self) -> u64 {
        signature(b"all-of", &self.id, &self.description, &self.required, self.window, self.severity)
    }

    fn on_event(&mut self, ev: &Event, _ctx: &RuleCtx<'_>, sink: &mut AlertSink<'_>) {
        let Some(bit) = self.required.iter().position(|c| *c == ev.class()) else {
            return;
        };
        let Some(session) = &ev.session else {
            return;
        };
        if self.fired.get_mut(session, ev.time).is_some() {
            return;
        }
        let (mask, started) = self
            .partial
            .get_mut(session, ev.time)
            .map(|p| *p)
            .unwrap_or((0, ev.time));
        let (mask, started) = if mask != 0 && ev.time.saturating_since(started) > self.window {
            (0, ev.time)
        } else {
            (mask, started)
        };
        let mask = mask | (1u64 << bit);
        let full = (1u64 << self.required.len()) - 1;
        if mask == full {
            self.partial.remove(session);
            self.fired.insert(session.clone(), (), ev.time);
            sink.push(Alert::new(
                self.id.clone(),
                self.severity,
                ev.time,
                Some(session.clone()),
                format!("{} (all conditions met)", self.description),
            ));
            return;
        }
        self.partial.insert(session.clone(), (mask, started), ev.time);
    }

    fn set_state_timeout(&mut self, timeout: SimDuration) {
        self.partial.set_timeout(timeout);
        self.fired.set_timeout(timeout);
    }

    fn state_stats(&self) -> RuleStateStats {
        self.partial.state_stats() + self.fired.state_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, FlowKey};
    use crate::rules::collect_alerts;
    use crate::trail::{SessionKey, TrailStore, TrailStoreConfig};
    use std::net::Ipv4Addr;

    fn ev(t: u64, session: &str, kind: EventKind) -> Event {
        Event {
            time: SimTime::from_millis(t),
            session: Some(SessionKey::new(session)),
            kind,
        }
    }

    fn flow() -> FlowKey {
        FlowKey {
            src: Ipv4Addr::new(10, 0, 0, 3),
            dst: Ipv4Addr::new(10, 0, 0, 2),
            dst_port: 8000,
        }
    }

    fn torn() -> EventKind {
        EventKind::CallTornDown {
            by_aor: "bob@lab".to_string(),
            by_media_ip: Some(Ipv4Addr::new(10, 0, 0, 3)),
        }
    }

    fn orphan() -> EventKind {
        EventKind::OrphanRtpAfterBye {
            flow: flow(),
            gap: SimDuration::from_millis(5),
        }
    }

    fn store() -> TrailStore {
        TrailStore::new(TrailStoreConfig::default())
    }

    fn ctx<'a>(t: u64, s: &'a TrailStore) -> RuleCtx<'a> {
        RuleCtx {
            now: SimTime::from_millis(t),
            trails: s,
            rates: Box::leak(Box::new(crate::rate::RateHub::default())),
        }
    }

    #[test]
    fn sequence_fires_in_order_once() {
        let s = store();
        let mut rule = SequenceRule::new(
            "seq",
            "teardown then orphan",
            vec![EventClass::CallTornDown, EventClass::OrphanRtpAfterBye],
            SimDuration::from_secs(1),
        );
        assert!(collect_alerts(&mut rule, &ev(1, "c1", torn()), &ctx(1, &s)).is_empty());
        let alerts = collect_alerts(&mut rule, &ev(2, "c1", orphan()), &ctx(2, &s));
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "seq");
        // Does not re-fire for the same session.
        assert!(collect_alerts(&mut rule, &ev(3, "c1", orphan()), &ctx(3, &s)).is_empty());
    }

    #[test]
    fn sequence_requires_order() {
        let s = store();
        let mut rule = SequenceRule::new(
            "seq",
            "x",
            vec![EventClass::CallTornDown, EventClass::OrphanRtpAfterBye],
            SimDuration::from_secs(1),
        );
        // Orphan first: no progress.
        assert!(collect_alerts(&mut rule, &ev(1, "c1", orphan()), &ctx(1, &s)).is_empty());
        assert!(collect_alerts(&mut rule, &ev(2, "c1", torn()), &ctx(2, &s)).is_empty());
        // Now the orphan completes it.
        assert_eq!(
            collect_alerts(&mut rule, &ev(3, "c1", orphan()), &ctx(3, &s)).len(),
            1
        );
    }

    #[test]
    fn sequence_window_expires() {
        let s = store();
        let mut rule = SequenceRule::new(
            "seq",
            "x",
            vec![EventClass::CallTornDown, EventClass::OrphanRtpAfterBye],
            SimDuration::from_millis(10),
        );
        collect_alerts(&mut rule, &ev(1, "c1", torn()), &ctx(1, &s));
        // Too late: resets; the orphan is step 1, not step 2.
        assert!(collect_alerts(&mut rule, &ev(100, "c1", orphan()), &ctx(100, &s)).is_empty());
    }

    #[test]
    fn sequence_sessions_are_independent() {
        let s = store();
        let mut rule = SequenceRule::new(
            "seq",
            "x",
            vec![EventClass::CallTornDown, EventClass::OrphanRtpAfterBye],
            SimDuration::from_secs(1),
        );
        collect_alerts(&mut rule, &ev(1, "c1", torn()), &ctx(1, &s));
        // c2's orphan must not complete c1's sequence.
        assert!(collect_alerts(&mut rule, &ev(2, "c2", orphan()), &ctx(2, &s)).is_empty());
        assert_eq!(
            collect_alerts(&mut rule, &ev(3, "c1", orphan()), &ctx(3, &s)).len(),
            1
        );
    }

    #[test]
    fn combination_any_order() {
        let s = store();
        let mut rule = CombinationRule::new(
            "combo",
            "both things",
            vec![EventClass::CallTornDown, EventClass::OrphanRtpAfterBye],
            SimDuration::from_secs(1),
        );
        assert!(collect_alerts(&mut rule, &ev(1, "c1", orphan()), &ctx(1, &s)).is_empty());
        assert_eq!(
            collect_alerts(&mut rule, &ev(2, "c1", torn()), &ctx(2, &s)).len(),
            1
        );
    }

    #[test]
    fn combination_ignores_unrelated_events() {
        let s = store();
        let mut rule = CombinationRule::new(
            "combo",
            "x",
            vec![EventClass::CallTornDown],
            SimDuration::from_secs(1),
        );
        let unrelated = ev(1, "c1", EventKind::RtpFlowActive { flow: flow() });
        assert!(collect_alerts(&mut rule, &unrelated, &ctx(1, &s)).is_empty());
        // Unrelated events leave no per-session residue behind.
        assert_eq!(rule.state_stats().sessions, 0);
    }

    #[test]
    fn sequence_declares_step_classes_and_expires_idle_state() {
        let s = store();
        let mut rule = SequenceRule::new(
            "seq",
            "x",
            vec![EventClass::CallTornDown, EventClass::OrphanRtpAfterBye],
            SimDuration::from_secs(100),
        );
        let interest = rule.interests();
        assert!(interest.contains(EventClass::CallTornDown));
        assert!(interest.contains(EventClass::OrphanRtpAfterBye));
        assert!(!interest.contains(EventClass::RtpFlowActive));

        rule.set_state_timeout(SimDuration::from_millis(50));
        collect_alerts(&mut rule, &ev(1, "c1", torn()), &ctx(1, &s));
        assert_eq!(rule.state_stats().sessions, 1);
        // Well past the idle timeout: partial state is dropped on access,
        // so the orphan is treated as step 1 and nothing fires.
        assert!(collect_alerts(&mut rule, &ev(500, "c1", orphan()), &ctx(500, &s)).is_empty());
        assert!(rule.state_stats().expired >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn empty_sequence_panics() {
        SequenceRule::new("x", "y", vec![], SimDuration::ZERO);
    }
}
