//! The BYE-attack rule with the paper's "crude trail access".
//!
//! "Besides the information that Events provide, the Ruleset can also
//! perform the matching based on crude information directly from the
//! Trails in case no suitable Event is available. For example, we might
//! be interested in knowing who prematurely tears down the session. To
//! achieve this, we probably need to have a look at the corresponding
//! SIP Footprint to identify the ID and IP address of the originator."
//!
//! This rule fires on the orphan-flow event like the simple variant, but
//! then digs into the session's SIP trail to name the BYE's claimed
//! originator and the network address the teardown actually came from —
//! forensic detail the condensed event does not carry.

use crate::alert::{Alert, Severity};
use crate::event::{Event, EventClass};
use crate::footprint::{FootprintBody, TrailProto};
use crate::rules::{AlertSink, Rule, RuleCtx, RuleInterest, RuleStateStats, SessionMap};
use crate::trail::{SessionKey, TrailKey};
use scidive_netsim::time::SimDuration;
use scidive_sip::method::Method;
use std::net::Ipv4Addr;

/// Who sent the fatal BYE, per the SIP trail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ByeOrigin {
    /// The AOR the BYE's From header claims.
    pub claimed_aor: Option<String>,
    /// The IP the BYE packet actually came from.
    pub src_ip: Ipv4Addr,
    /// The BYE's CSeq number (forged BYEs often jump it).
    pub cseq: Option<u32>,
}

/// The enriched BYE-attack rule.
#[derive(Debug, Default)]
pub struct ByeAttackRule {
    fired: SessionMap<()>,
}

impl ByeAttackRule {
    /// Creates the rule.
    pub fn new() -> ByeAttackRule {
        ByeAttackRule::default()
    }

    /// Crude trail access: finds the (last) BYE footprint in the
    /// session's SIP trail and extracts originator details.
    pub fn bye_origin(ctx: &RuleCtx<'_>, session: &SessionKey) -> Option<ByeOrigin> {
        let key = TrailKey {
            session: session.clone(),
            proto: TrailProto::Sip,
        };
        let trail = ctx.trails.trail(&key)?;
        // Search backwards: the fatal BYE is the most recent one.
        let bye = trail
            .footprints()
            .rev()
            .find(|fp| matches!(&fp.body, FootprintBody::Sip(m) if m.method() == Some(Method::Bye)))?;
        let FootprintBody::Sip(msg) = &bye.body else {
            unreachable!("filtered to SIP above");
        };
        Some(ByeOrigin {
            claimed_aor: msg.from_().ok().map(|f| f.uri.aor()),
            src_ip: bye.meta.src,
            cseq: msg.cseq().ok().map(|c| c.seq),
        })
    }
}

impl Rule for ByeAttackRule {
    fn id(&self) -> &str {
        "bye-attack"
    }

    fn description(&self) -> &str {
        "no RTP should be seen from a user agent after its BYE"
    }

    fn is_cross_protocol(&self) -> bool {
        true
    }

    fn is_stateful(&self) -> bool {
        true
    }

    fn interests(&self) -> RuleInterest {
        RuleInterest::of(&[EventClass::OrphanRtpAfterBye])
    }

    fn on_event(&mut self, ev: &Event, ctx: &RuleCtx<'_>, sink: &mut AlertSink<'_>) {
        if ev.class() != EventClass::OrphanRtpAfterBye {
            return;
        }
        let Some(session) = &ev.session else {
            return;
        };
        if self.fired.get_mut(session, ev.time).is_some() {
            return;
        }
        self.fired.insert(session.clone(), (), ev.time);
        let origin = Self::bye_origin(ctx, session);
        let forensics = match &origin {
            Some(o) => format!(
                "; the BYE claimed {} and came from {} (CSeq {})",
                o.claimed_aor.as_deref().unwrap_or("<unknown>"),
                o.src_ip,
                o.cseq.map(|c| c.to_string()).unwrap_or_else(|| "?".into()),
            ),
            None => String::new(),
        };
        sink.push(Alert::new(
            "bye-attack",
            Severity::Critical,
            ev.time,
            Some(session.clone()),
            format!(
                "{}: orphan media after teardown{forensics}",
                self.description()
            ),
        ));
    }

    fn set_state_timeout(&mut self, timeout: SimDuration) {
        self.fired.set_timeout(timeout);
    }

    fn state_stats(&self) -> RuleStateStats {
        self.fired.state_stats()
    }

    fn state_signature(&self) -> u64 {
        // No tunable parameters: any instance can adopt any other's
        // fired-once markers.
        crate::rate::hash_parts(0x6279_655f_7369_6721, &[b"bye-attack"])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, FlowKey};
    use crate::footprint::{Footprint, PacketMeta};
    use crate::rules::collect_alerts;
    use crate::trail::{TrailStore, TrailStoreConfig};
    use scidive_netsim::time::SimTime;
    use scidive_sip::header::{CSeq, NameAddr, Via};
    use scidive_sip::msg::RequestBuilder;

    fn bye_footprint(src: Ipv4Addr, cseq: u32) -> Footprint {
        let mut b = RequestBuilder::new(Method::Bye, "sip:alice@10.0.0.2".parse().unwrap());
        b.from(NameAddr::new("sip:bob@lab".parse().unwrap()).with_tag("tb"))
            .to(NameAddr::new("sip:alice@lab".parse().unwrap()).with_tag("ta"))
            .call_id("c1")
            .cseq(CSeq::new(cseq, Method::Bye))
            .via(Via::udp("10.0.0.3:5060", "z9hG4bK-x"));
        Footprint {
            meta: PacketMeta {
                time: SimTime::from_millis(1),
                src,
                src_port: 5060,
                dst: Ipv4Addr::new(10, 0, 0, 2),
                dst_port: 5060,
            },
            body: FootprintBody::Sip(b.build().into()),
        }
    }

    fn orphan_event() -> Event {
        Event {
            time: SimTime::from_millis(10),
            session: Some(SessionKey::new("c1")),
            kind: EventKind::OrphanRtpAfterBye {
                flow: FlowKey {
                    src: Ipv4Addr::new(10, 0, 0, 3),
                    dst: Ipv4Addr::new(10, 0, 0, 2),
                    dst_port: 8000,
                },
                gap: SimDuration::from_millis(3),
            },
        }
    }

    #[test]
    fn alert_names_the_bye_originator_from_the_trail() {
        let mut store = TrailStore::new(TrailStoreConfig::default());
        store.insert(bye_footprint(Ipv4Addr::new(10, 0, 0, 66), 101));
        let rates = crate::rate::RateHub::default();
        let ctx = RuleCtx {
            now: SimTime::from_millis(10),
            trails: &store,
            rates: &rates,
        };
        let mut rule = ByeAttackRule::new();
        let alerts = collect_alerts(&mut rule, &orphan_event(), &ctx);
        assert_eq!(alerts.len(), 1);
        let msg = &alerts[0].message;
        assert!(msg.contains("bob@lab"), "{msg}");
        assert!(msg.contains("10.0.0.66"), "{msg}");
        assert!(msg.contains("CSeq 101"), "{msg}");
    }

    #[test]
    fn latest_bye_wins() {
        let mut store = TrailStore::new(TrailStoreConfig::default());
        store.insert(bye_footprint(Ipv4Addr::new(10, 0, 0, 3), 2));
        store.insert(bye_footprint(Ipv4Addr::new(10, 0, 0, 66), 102));
        let rates = crate::rate::RateHub::default();
        let ctx = RuleCtx {
            now: SimTime::from_millis(10),
            trails: &store,
            rates: &rates,
        };
        let origin = ByeAttackRule::bye_origin(&ctx, &SessionKey::new("c1")).unwrap();
        assert_eq!(origin.src_ip, Ipv4Addr::new(10, 0, 0, 66));
        assert_eq!(origin.cseq, Some(102));
    }

    #[test]
    fn fires_once_per_session_and_survives_missing_trail() {
        let store = TrailStore::new(TrailStoreConfig::default());
        let rates = crate::rate::RateHub::default();
        let ctx = RuleCtx {
            now: SimTime::from_millis(10),
            trails: &store,
            rates: &rates,
        };
        let mut rule = ByeAttackRule::new();
        // No SIP trail at all: still alarms (without forensics).
        let alerts = collect_alerts(&mut rule, &orphan_event(), &ctx);
        assert_eq!(alerts.len(), 1);
        assert!(!alerts[0].message.contains("came from"));
        assert!(collect_alerts(&mut rule, &orphan_event(), &ctx).is_empty());
    }
}
