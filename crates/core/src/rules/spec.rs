//! A small text format for operator-defined rules.
//!
//! The paper positions SCIDIVE as configurable — it "can, without
//! substantial system customization, be extended for detecting new
//! classes of attacks", with accuracy "a function of the input rule
//! base". This module lets operators feed that rule base as text, one
//! rule per block:
//!
//! ```text
//! # Detect teardown followed by orphan media within half a second.
//! rule my-bye severity critical window 500ms {
//!     sequence CallTornDown, OrphanRtpAfterBye
//! }
//!
//! # The billing-fraud combination, any order.
//! rule my-fraud severity critical window 120s {
//!     all-of SipMalformed, AcctMismatch
//! }
//!
//! # A single-event advisory.
//! rule my-format severity warning {
//!     any-of SipMalformed
//! }
//! ```
//!
//! Bodies name [`EventClass`]es; `sequence` requires order, `all-of`
//! any order within the window, `any-of` fires on the first match.

use crate::alert::{Alert, Severity};
use crate::event::{Event, EventClass};
use crate::rules::combo::{CombinationRule, SequenceRule};
use crate::rules::{AlertSink, Rule, RuleCtx, RuleInterest, RuleStateStats, SessionMap};
use scidive_netsim::time::SimDuration;
use std::collections::HashSet;
use std::fmt;

/// Error parsing a rule specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line where parsing failed.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule spec error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SpecError {}

/// A single-shot rule matching any of its classes (used for `any-of`
/// bodies; fires once per session per rule).
#[derive(Debug)]
struct AnyOfRule {
    id: String,
    classes: Vec<EventClass>,
    severity: Severity,
    fired: SessionMap<()>,
    global_fired: bool,
}

impl Rule for AnyOfRule {
    fn id(&self) -> &str {
        &self.id
    }

    fn description(&self) -> &str {
        "operator-defined any-of rule"
    }

    fn is_cross_protocol(&self) -> bool {
        true
    }

    fn is_stateful(&self) -> bool {
        false
    }

    fn interests(&self) -> RuleInterest {
        RuleInterest::of(&self.classes)
    }

    fn on_event(&mut self, ev: &Event, _ctx: &RuleCtx<'_>, sink: &mut AlertSink<'_>) {
        if !self.classes.contains(&ev.class()) {
            return;
        }
        match &ev.session {
            Some(session) => {
                if self.fired.get_mut(session, ev.time).is_some() {
                    return;
                }
                self.fired.insert(session.clone(), (), ev.time);
            }
            None => {
                if self.global_fired {
                    return;
                }
                self.global_fired = true;
            }
        }
        sink.push(Alert::new(
            self.id.clone(),
            self.severity,
            ev.time,
            ev.session.clone(),
            format!("operator rule matched event {}", ev.class().name()),
        ));
    }

    fn set_state_timeout(&mut self, timeout: SimDuration) {
        self.fired.set_timeout(timeout);
    }

    fn state_stats(&self) -> RuleStateStats {
        self.fired.state_stats()
    }
}

/// Parses a rule specification into ready-to-install rules.
///
/// # Errors
///
/// Returns a [`SpecError`] naming the offending line for any syntax
/// problem, unknown event class, duplicate rule id, or empty body.
///
/// # Examples
///
/// ```
/// use scidive_core::rules::parse_ruleset;
///
/// let rules = parse_ruleset(
///     "rule demo severity critical window 1s {\n\
///      \tsequence CallTornDown, OrphanRtpAfterBye\n\
///      }\n",
/// )?;
/// assert_eq!(rules.len(), 1);
/// assert_eq!(rules[0].id(), "demo");
/// # Ok::<(), scidive_core::rules::SpecError>(())
/// ```
pub fn parse_ruleset(input: &str) -> Result<Vec<Box<dyn Rule>>, SpecError> {
    let mut rules: Vec<Box<dyn Rule>> = Vec::new();
    let mut seen_ids: HashSet<String> = HashSet::new();
    let mut header: Option<(usize, RuleHeader)> = None;
    let mut body: Option<(usize, String)> = None;

    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match (&mut header, &mut body) {
            (None, _) => {
                // Expect `rule <id> ... {`
                let without_brace = line.strip_suffix('{').ok_or_else(|| SpecError {
                    line: line_no,
                    message: "expected `rule <id> [severity <s>] [window <dur>] {`".to_string(),
                })?;
                let h = parse_header(without_brace.trim(), line_no)?;
                if !seen_ids.insert(h.id.clone()) {
                    return Err(SpecError {
                        line: line_no,
                        message: format!("duplicate rule id `{}`", h.id),
                    });
                }
                header = Some((line_no, h));
            }
            (Some(_), None) if line == "}" => {
                return Err(SpecError {
                    line: line_no,
                    message: "rule body is empty".to_string(),
                });
            }
            (Some(_), None) => {
                body = Some((line_no, line.to_string()));
            }
            (Some((_, h)), Some((body_line, b))) => {
                if line != "}" {
                    return Err(SpecError {
                        line: line_no,
                        message: "expected `}` (one body line per rule)".to_string(),
                    });
                }
                rules.push(build_rule(h.clone(), b, *body_line)?);
                header = None;
                body = None;
            }
        }
    }
    if let Some((line, h)) = header {
        return Err(SpecError {
            line,
            message: format!("rule `{}` is not closed with `}}`", h.id),
        });
    }
    Ok(rules)
}

#[derive(Debug, Clone)]
struct RuleHeader {
    id: String,
    severity: Severity,
    window: SimDuration,
}

fn parse_header(text: &str, line: usize) -> Result<RuleHeader, SpecError> {
    let mut tokens = text.split_whitespace();
    if tokens.next() != Some("rule") {
        return Err(SpecError {
            line,
            message: "rule block must start with `rule`".to_string(),
        });
    }
    let id = tokens
        .next()
        .ok_or_else(|| SpecError {
            line,
            message: "missing rule id".to_string(),
        })?
        .to_string();
    let mut severity = Severity::Critical;
    let mut window = SimDuration::from_secs(60);
    while let Some(key) = tokens.next() {
        let value = tokens.next().ok_or_else(|| SpecError {
            line,
            message: format!("`{key}` needs a value"),
        })?;
        match key {
            "severity" => {
                severity = match value.to_ascii_lowercase().as_str() {
                    "info" => Severity::Info,
                    "warning" | "warn" => Severity::Warning,
                    "critical" | "crit" => Severity::Critical,
                    other => {
                        return Err(SpecError {
                            line,
                            message: format!("unknown severity `{other}`"),
                        })
                    }
                };
            }
            "window" => {
                window = parse_duration(value).ok_or_else(|| SpecError {
                    line,
                    message: format!("bad duration `{value}` (use e.g. 500ms, 2s)"),
                })?;
            }
            other => {
                return Err(SpecError {
                    line,
                    message: format!("unknown header key `{other}`"),
                })
            }
        }
    }
    Ok(RuleHeader {
        id,
        severity,
        window,
    })
}

fn parse_duration(text: &str) -> Option<SimDuration> {
    if let Some(ms) = text.strip_suffix("ms") {
        return ms.parse::<u64>().ok().map(SimDuration::from_millis);
    }
    if let Some(s) = text.strip_suffix('s') {
        return s.parse::<u64>().ok().map(SimDuration::from_secs);
    }
    None
}

fn build_rule(
    header: RuleHeader,
    body: &str,
    line: usize,
) -> Result<Box<dyn Rule>, SpecError> {
    let (kind, rest) = body.split_once(' ').ok_or_else(|| SpecError {
        line,
        message: "body must be `<sequence|all-of|any-of> Class[, Class...]`".to_string(),
    })?;
    let classes: Vec<EventClass> = rest
        .split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .map(|name| {
            EventClass::parse_name(name).ok_or_else(|| SpecError {
                line,
                message: format!(
                    "unknown event class `{name}` (one of: {})",
                    EventClass::ALL
                        .iter()
                        .map(|c| c.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            })
        })
        .collect::<Result<_, _>>()?;
    if classes.is_empty() {
        return Err(SpecError {
            line,
            message: "no event classes listed".to_string(),
        });
    }
    let description = format!("operator-defined rule `{}`", header.id);
    Ok(match kind {
        "sequence" => Box::new(
            SequenceRule::new(header.id, description, classes, header.window)
                .with_severity(header.severity),
        ),
        "all-of" => Box::new(
            CombinationRule::new(header.id, description, classes, header.window)
                .with_severity(header.severity),
        ),
        "any-of" => Box::new(AnyOfRule {
            id: header.id,
            classes,
            severity: header.severity,
            fired: SessionMap::new(),
            global_fired: false,
        }),
        other => {
            return Err(SpecError {
                line,
                message: format!("unknown body kind `{other}` (sequence | all-of | any-of)"),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, FlowKey};
    use crate::rules::collect_alerts;
    use crate::trail::{SessionKey, TrailStore, TrailStoreConfig};
    use scidive_netsim::time::SimTime;
    use std::net::Ipv4Addr;

    const SPEC: &str = "\
# demo ruleset
rule demo-seq severity critical window 500ms {
    sequence CallTornDown, OrphanRtpAfterBye
}

rule demo-combo severity warning window 2s {
    all-of SipMalformed, AcctMismatch
}

rule demo-any {
    any-of RtpSeqViolation, MediaPortGarbage
}
";

    #[test]
    fn parses_all_three_kinds() {
        let rules = parse_ruleset(SPEC).unwrap();
        assert_eq!(rules.len(), 3);
        assert_eq!(rules[0].id(), "demo-seq");
        assert_eq!(rules[1].id(), "demo-combo");
        assert_eq!(rules[2].id(), "demo-any");
    }

    #[test]
    fn parsed_sequence_rule_fires() {
        let mut rules = parse_ruleset(SPEC).unwrap();
        let store = TrailStore::new(TrailStoreConfig::default());
        let rates = crate::rate::RateHub::default();
        let ctx = RuleCtx {
            now: SimTime::from_millis(5),
            trails: &store,
            rates: &rates,
        };
        let session = Some(SessionKey::new("c1"));
        let torn = Event {
            time: SimTime::from_millis(1),
            session: session.clone(),
            kind: EventKind::CallTornDown {
                by_aor: "bob@lab".to_string(),
                by_media_ip: None,
            },
        };
        let orphan = Event {
            time: SimTime::from_millis(2),
            session,
            kind: EventKind::OrphanRtpAfterBye {
                flow: FlowKey {
                    src: Ipv4Addr::new(10, 0, 0, 3),
                    dst: Ipv4Addr::new(10, 0, 0, 2),
                    dst_port: 8000,
                },
                gap: SimDuration::from_millis(1),
            },
        };
        assert!(collect_alerts(rules[0].as_mut(), &torn, &ctx).is_empty());
        let alerts = collect_alerts(rules[0].as_mut(), &orphan, &ctx);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "demo-seq");
        assert_eq!(alerts[0].severity, Severity::Critical);
    }

    #[test]
    fn any_of_fires_once_per_session() {
        let mut rules = parse_ruleset(SPEC).unwrap();
        let store = TrailStore::new(TrailStoreConfig::default());
        let rates = crate::rate::RateHub::default();
        let ctx = RuleCtx {
            now: SimTime::from_millis(5),
            trails: &store,
            rates: &rates,
        };
        let ev = Event {
            time: SimTime::from_millis(1),
            session: Some(SessionKey::new("c9")),
            kind: EventKind::RtpSeqViolation {
                flow: FlowKey {
                    src: Ipv4Addr::new(10, 0, 0, 3),
                    dst: Ipv4Addr::new(10, 0, 0, 2),
                    dst_port: 8000,
                },
                delta: 7000,
            },
        };
        assert_eq!(collect_alerts(rules[2].as_mut(), &ev, &ctx).len(), 1);
        assert!(collect_alerts(rules[2].as_mut(), &ev, &ctx).is_empty());
    }

    #[test]
    fn parsed_rules_declare_interests_from_trigger_classes() {
        let rules = parse_ruleset(SPEC).unwrap();
        // sequence CallTornDown, OrphanRtpAfterBye
        assert!(rules[0].interests().contains(EventClass::CallTornDown));
        assert!(!rules[0].interests().contains(EventClass::SipMalformed));
        // all-of SipMalformed, AcctMismatch
        assert!(rules[1].interests().contains(EventClass::AcctMismatch));
        assert!(!rules[1].interests().contains(EventClass::CallTornDown));
        // any-of RtpSeqViolation, MediaPortGarbage
        assert!(rules[2].interests().contains(EventClass::RtpSeqViolation));
        assert!(rules[2].interests().contains(EventClass::MediaPortGarbage));
        assert!(!rules[2].interests().is_all());
    }

    fn expect_err(input: &str) -> SpecError {
        match parse_ruleset(input) {
            Ok(_) => panic!("spec unexpectedly parsed: {input}"),
            Err(e) => e,
        }
    }

    #[test]
    fn error_reporting_names_the_line() {
        let err = expect_err("rule broken {\n    sequence NotAClass\n}\n");
        assert_eq!(err.line, 2);
        assert!(err.message.contains("NotAClass"));
        assert!(err.message.contains("CallTornDown")); // lists valid names

        let err = expect_err("nonsense\n");
        assert_eq!(err.line, 1);

        let err = expect_err("rule a {\n}\n");
        assert!(err.message.contains("empty"));

        let err = expect_err("rule a {\n    any-of SipMalformed\n");
        assert!(err.message.contains("not closed"));

        let err = expect_err("rule a severity nope {\n    any-of SipMalformed\n}\n");
        assert!(err.message.contains("severity"));

        let err = expect_err("rule a window 5h {\n    any-of SipMalformed\n}\n");
        assert!(err.message.contains("duration"));
    }

    #[test]
    fn duplicate_ids_rejected() {
        let spec = "rule a {\n any-of SipMalformed\n}\nrule a {\n any-of SipMalformed\n}\n";
        let err = expect_err(spec);
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let rules = parse_ruleset("# nothing here\n\n# still nothing\n").unwrap();
        assert!(rules.is_empty());
    }

    #[test]
    fn class_name_roundtrip() {
        for c in EventClass::ALL {
            assert_eq!(EventClass::parse_name(c.name()), Some(c));
            assert_eq!(
                EventClass::parse_name(&c.name().to_ascii_lowercase()),
                Some(c)
            );
        }
        assert_eq!(EventClass::parse_name("NotAClass"), None);
    }
}
