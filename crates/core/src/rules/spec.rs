//! A small text format for operator-defined rules.
//!
//! The paper positions SCIDIVE as configurable — it "can, without
//! substantial system customization, be extended for detecting new
//! classes of attacks", with accuracy "a function of the input rule
//! base". This module lets operators feed that rule base as text, one
//! rule per block:
//!
//! ```text
//! # Detect teardown followed by orphan media within half a second.
//! rule my-bye severity critical window 500ms {
//!     sequence CallTornDown, OrphanRtpAfterBye
//! }
//!
//! # The billing-fraud combination, any order.
//! rule my-fraud severity critical window 120s {
//!     all-of SipMalformed, AcctMismatch
//! }
//!
//! # A single-event advisory.
//! rule my-format severity warning {
//!     any-of SipMalformed
//! }
//! ```
//!
//! Bodies name [`crate::event::EventClass`]es; `sequence` requires
//! order, `all-of` any order within the window, `any-of` fires on the
//! first match.
//!
//! This module is now a thin compatibility façade over the full rule
//! DSL ([`crate::rules::dsl`]) — the grammar above is a strict subset
//! of the DSL's (which adds field predicates, `threshold` clauses, and
//! free layout), and [`parse_ruleset`] simply compiles a program and
//! flattens the DSL's spanned diagnostics into [`SpecError`]s.

use crate::rules::dsl::{self, Diagnostic, Program};
use crate::rules::Rule;
use std::fmt;

/// Error parsing a rule specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line where parsing failed.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule spec error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SpecError {}

/// Parses a rule specification into ready-to-install rules.
///
/// # Errors
///
/// Returns a [`SpecError`] naming the offending line for any syntax
/// problem, unknown event class, duplicate rule id, or empty body.
///
/// # Examples
///
/// ```
/// use scidive_core::rules::parse_ruleset;
///
/// let rules = parse_ruleset(
///     "rule demo severity critical window 1s {\n\
///      \tsequence CallTornDown, OrphanRtpAfterBye\n\
///      }\n",
/// )?;
/// assert_eq!(rules.len(), 1);
/// assert_eq!(rules[0].id(), "demo");
/// # Ok::<(), scidive_core::rules::SpecError>(())
/// ```
pub fn parse_ruleset(input: &str) -> Result<Vec<Box<dyn Rule>>, SpecError> {
    let program = Program::parse(input)?;
    Ok(dsl::compile_program(&program))
}

impl From<Diagnostic> for SpecError {
    /// Flattens a spanned DSL diagnostic into the historical
    /// line-plus-message shape, folding the hint into the message so no
    /// guidance is lost.
    fn from(d: Diagnostic) -> SpecError {
        SpecError {
            line: d.line,
            message: match d.hint {
                Some(hint) => format!("{} ({hint})", d.message),
                None => d.message,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alert::Severity;
    use crate::event::{Event, EventClass, EventKind, FlowKey};
    use crate::rules::{collect_alerts, RuleCtx};
    use crate::trail::{SessionKey, TrailStore, TrailStoreConfig};
    use scidive_netsim::time::{SimDuration, SimTime};
    use std::net::Ipv4Addr;

    const SPEC: &str = "\
# demo ruleset
rule demo-seq severity critical window 500ms {
    sequence CallTornDown, OrphanRtpAfterBye
}

rule demo-combo severity warning window 2s {
    all-of SipMalformed, AcctMismatch
}

rule demo-any {
    any-of RtpSeqViolation, MediaPortGarbage
}
";

    #[test]
    fn parses_all_three_kinds() {
        let rules = parse_ruleset(SPEC).unwrap();
        assert_eq!(rules.len(), 3);
        assert_eq!(rules[0].id(), "demo-seq");
        assert_eq!(rules[1].id(), "demo-combo");
        assert_eq!(rules[2].id(), "demo-any");
    }

    #[test]
    fn parsed_sequence_rule_fires() {
        let mut rules = parse_ruleset(SPEC).unwrap();
        let store = TrailStore::new(TrailStoreConfig::default());
        let rates = crate::rate::RateHub::default();
        let ctx = RuleCtx {
            now: SimTime::from_millis(5),
            trails: &store,
            rates: &rates,
        };
        let session = Some(SessionKey::new("c1"));
        let torn = Event {
            time: SimTime::from_millis(1),
            session: session.clone(),
            kind: EventKind::CallTornDown {
                by_aor: "bob@lab".to_string(),
                by_media_ip: None,
            },
        };
        let orphan = Event {
            time: SimTime::from_millis(2),
            session,
            kind: EventKind::OrphanRtpAfterBye {
                flow: FlowKey {
                    src: Ipv4Addr::new(10, 0, 0, 3),
                    dst: Ipv4Addr::new(10, 0, 0, 2),
                    dst_port: 8000,
                },
                gap: SimDuration::from_millis(1),
            },
        };
        assert!(collect_alerts(rules[0].as_mut(), &torn, &ctx).is_empty());
        let alerts = collect_alerts(rules[0].as_mut(), &orphan, &ctx);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "demo-seq");
        assert_eq!(alerts[0].severity, Severity::Critical);
    }

    #[test]
    fn any_of_fires_once_per_session() {
        let mut rules = parse_ruleset(SPEC).unwrap();
        let store = TrailStore::new(TrailStoreConfig::default());
        let rates = crate::rate::RateHub::default();
        let ctx = RuleCtx {
            now: SimTime::from_millis(5),
            trails: &store,
            rates: &rates,
        };
        let ev = Event {
            time: SimTime::from_millis(1),
            session: Some(SessionKey::new("c9")),
            kind: EventKind::RtpSeqViolation {
                flow: FlowKey {
                    src: Ipv4Addr::new(10, 0, 0, 3),
                    dst: Ipv4Addr::new(10, 0, 0, 2),
                    dst_port: 8000,
                },
                delta: 7000,
            },
        };
        assert_eq!(collect_alerts(rules[2].as_mut(), &ev, &ctx).len(), 1);
        assert!(collect_alerts(rules[2].as_mut(), &ev, &ctx).is_empty());
    }

    #[test]
    fn parsed_rules_declare_interests_from_trigger_classes() {
        let rules = parse_ruleset(SPEC).unwrap();
        // sequence CallTornDown, OrphanRtpAfterBye
        assert!(rules[0].interests().contains(EventClass::CallTornDown));
        assert!(!rules[0].interests().contains(EventClass::SipMalformed));
        // all-of SipMalformed, AcctMismatch
        assert!(rules[1].interests().contains(EventClass::AcctMismatch));
        assert!(!rules[1].interests().contains(EventClass::CallTornDown));
        // any-of RtpSeqViolation, MediaPortGarbage
        assert!(rules[2].interests().contains(EventClass::RtpSeqViolation));
        assert!(rules[2].interests().contains(EventClass::MediaPortGarbage));
        assert!(!rules[2].interests().is_all());
    }

    fn expect_err(input: &str) -> SpecError {
        match parse_ruleset(input) {
            Ok(_) => panic!("spec unexpectedly parsed: {input}"),
            Err(e) => e,
        }
    }

    #[test]
    fn error_reporting_names_the_line() {
        let err = expect_err("rule broken {\n    sequence NotAClass\n}\n");
        assert_eq!(err.line, 2);
        assert!(err.message.contains("NotAClass"));
        assert!(err.message.contains("CallTornDown")); // lists valid names

        let err = expect_err("nonsense\n");
        assert_eq!(err.line, 1);

        let err = expect_err("rule a {\n}\n");
        assert!(err.message.contains("empty"));

        let err = expect_err("rule a {\n    any-of SipMalformed\n");
        assert!(err.message.contains("not closed"));

        let err = expect_err("rule a severity nope {\n    any-of SipMalformed\n}\n");
        assert!(err.message.contains("severity"));

        let err = expect_err("rule a window 5h {\n    any-of SipMalformed\n}\n");
        assert!(err.message.contains("duration"));
    }

    #[test]
    fn duplicate_ids_rejected() {
        let spec = "rule a {\n any-of SipMalformed\n}\nrule a {\n any-of SipMalformed\n}\n";
        let err = expect_err(spec);
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let rules = parse_ruleset("# nothing here\n\n# still nothing\n").unwrap();
        assert!(rules.is_empty());
    }

    #[test]
    fn class_name_roundtrip() {
        for c in EventClass::ALL {
            assert_eq!(EventClass::parse_name(c.name()), Some(c));
            assert_eq!(
                EventClass::parse_name(&c.name().to_ascii_lowercase()),
                Some(c)
            );
        }
        assert_eq!(EventClass::parse_name("NotAClass"), None);
    }
}
