//! The built-in ruleset: one rule per attack the paper covers.
//!
//! Table 1 maps each attack to the protocols involved and whether its
//! rule is cross-protocol and stateful; the structures here carry those
//! attributes so experiment harnesses can reproduce the table.

use crate::alert::{Alert, Severity};
use crate::event::{Event, EventClass, EventKind};
use crate::rules::combo::CombinationRule;
use crate::rules::threshold::{ThresholdRule, ThresholdSpec};
use crate::rules::{AlertSink, Rule, RuleCtx, RuleInterest, RuleStateStats, SessionMap};
use scidive_netsim::time::SimDuration;

/// A rule that fires on any event of the given classes, once per
/// session (or globally de-duplicated by message for session-less
/// events). The fired-once markers live in a [`SessionMap`], so a
/// session idle past the trail timeout sheds its marker along with its
/// trails (and may legitimately alarm again if the attack recurs).
#[derive(Debug)]
pub struct EventRule {
    id: &'static str,
    description: &'static str,
    classes: &'static [EventClass],
    severity: Severity,
    cross_protocol: bool,
    stateful: bool,
    fired_sessions: SessionMap<()>,
    global_fired: u32,
    /// Maximum global (session-less) firings; 0 = unlimited.
    global_cap: u32,
}

impl EventRule {
    /// Creates a single-event rule.
    pub fn new(
        id: &'static str,
        description: &'static str,
        classes: &'static [EventClass],
        severity: Severity,
        cross_protocol: bool,
        stateful: bool,
    ) -> EventRule {
        EventRule {
            id,
            description,
            classes,
            severity,
            cross_protocol,
            stateful,
            fired_sessions: SessionMap::new(),
            global_fired: 0,
            global_cap: 0,
        }
    }
}

impl Rule for EventRule {
    fn id(&self) -> &str {
        self.id
    }

    fn description(&self) -> &str {
        self.description
    }

    fn is_cross_protocol(&self) -> bool {
        self.cross_protocol
    }

    fn is_stateful(&self) -> bool {
        self.stateful
    }

    fn interests(&self) -> RuleInterest {
        RuleInterest::of(self.classes)
    }

    fn on_event(&mut self, ev: &Event, _ctx: &RuleCtx<'_>, sink: &mut AlertSink<'_>) {
        if !self.classes.contains(&ev.class()) {
            return;
        }
        if let Some(session) = &ev.session {
            if self.fired_sessions.get_mut(session, ev.time).is_some() {
                return;
            }
            self.fired_sessions.insert(session.clone(), (), ev.time);
        } else {
            if self.global_cap != 0 && self.global_fired >= self.global_cap {
                return;
            }
            self.global_fired += 1;
        }
        sink.push(Alert::new(
            self.id,
            self.severity,
            ev.time,
            ev.session.clone(),
            format!("{}: {}", self.description, describe(&ev.kind)),
        ));
    }

    fn set_state_timeout(&mut self, timeout: SimDuration) {
        self.fired_sessions.set_timeout(timeout);
    }

    fn state_stats(&self) -> RuleStateStats {
        self.fired_sessions.state_stats()
    }

    fn state_signature(&self) -> u64 {
        let mut parts: Vec<&[u8]> = vec![
            b"event",
            self.id.as_bytes(),
            match self.severity {
                Severity::Info => b"i",
                Severity::Warning => b"w",
                Severity::Critical => b"c",
            },
            if self.cross_protocol { b"x" } else { b"-" },
            if self.stateful { b"s" } else { b"-" },
        ];
        parts.extend(self.classes.iter().map(|c| c.name().as_bytes()));
        crate::rate::hash_parts(0x6576_656e_745f_7369, &parts)
    }
}

fn describe(kind: &EventKind) -> String {
    match kind {
        EventKind::OrphanRtpAfterBye { flow, gap } => {
            format!("RTP flow {flow} continued {gap} after the BYE")
        }
        EventKind::OrphanRtpAfterRedirect { flow, gap } => {
            format!("RTP flow {flow} continued {gap} after the re-INVITE")
        }
        EventKind::RtpSeqViolation { flow, delta } => {
            format!("sequence jumped by {delta} on {flow}")
        }
        EventKind::RtpUnknownSource { flow } => {
            format!("media from unnegotiated source on {flow}")
        }
        EventKind::MediaPortGarbage { sink, reason } => {
            format!("undecodable media at {}:{} ({reason})", sink.0, sink.1)
        }
        EventKind::ImSourceMismatch {
            claimed_aor,
            src_ip,
            expected_ip,
        } => format!("message claims {claimed_aor} but came from {src_ip} (expected {expected_ip})"),
        EventKind::RegisterFlood { src, count } => {
            format!("{count} request/4xx alternations from {src}")
        }
        EventKind::PasswordGuessing {
            src,
            username,
            distinct_responses,
        } => format!("{distinct_responses} distinct digest responses for {username} from {src}"),
        EventKind::SipMalformed { violations, src } => {
            format!("{} violation(s) from {src}: {}", violations.len(), violations.join("; "))
        }
        EventKind::RtpAfterRtcpBye { flow, ssrc, gap } => {
            format!("SSRC {ssrc:#010x} kept streaming on {flow} {gap} after its RTCP BYE")
        }
        EventKind::AcctMismatch {
            billed,
            observed_caller,
            call_id,
        } => format!(
            "billing charges {billed} for call {call_id} initiated by {}",
            observed_caller.as_deref().unwrap_or("<nobody>")
        ),
        EventKind::Protocol { signal, detail, .. } => format!("{signal}: {detail}"),
        other => format!("{other:?}"),
    }
}

/// Window for rapid-connection (SPIT / war-dial) detection.
pub(crate) const RAPID_WINDOW: SimDuration = SimDuration::from_secs(60);
/// Calls within the window that make a caller suspicious.
pub(crate) const RAPID_ATTEMPTS: u32 = 12;
/// Distinct callees within the window that make it a campaign (a hot
/// legitimate line redials the *same* peer; a SPIT campaign fans out).
pub(crate) const RAPID_DISTINCT: u32 = 8;

/// Clause / latch name shared by the local rule and the fold plane.
pub(crate) const RAPID_CLAUSE: &str = "rapid-connect";

/// The built-in SPIT / war-dialing clause as a compiled
/// [`ThresholdSpec`] — the single definition evaluated by the local
/// [`ThresholdRule`] (exact or sketch) and by the dispatcher's
/// [`crate::rate::GlobalRatePlane`] under sharding, so a campaign
/// crosses at exactly the same counts regardless of where the
/// evaluation runs. A DSL program declaring the same clause compiles to
/// a spec `==` to this one (tracker names, hash prefixes, template and
/// all), which is what makes the DSL twin byte-identical.
pub fn rapid_spec() -> ThresholdSpec {
    ThresholdSpec {
        clause: RAPID_CLAUSE,
        count_tracker: "rapid-connect-count",
        distinct_tracker: "rapid-connect-distinct",
        class: EventClass::CallEstablished,
        key_field: "caller",
        distinct_field: Some("callee"),
        window: RAPID_WINDOW,
        count_threshold: RAPID_ATTEMPTS,
        distinct_threshold: RAPID_DISTINCT,
        severity: Severity::Critical,
        template: "rapid connections: caller {key} established {count} calls to \
                   {distinct} distinct callees within {window}s",
    }
}

/// Which built-in rules to install (ablation knobs).
#[derive(Debug, Clone)]
pub struct RuleToggles {
    /// §4.2.1 BYE attack.
    pub bye_attack: bool,
    /// §4.2.3 call hijacking.
    pub call_hijack: bool,
    /// §4.2.2 fake instant messaging.
    pub fake_im: bool,
    /// §4.2.4 RTP attack.
    pub rtp_attack: bool,
    /// §3.3 REGISTER-flood DoS.
    pub register_dos: bool,
    /// §3.3 password guessing.
    pub password_guess: bool,
    /// §3.2 billing fraud (cross-protocol combination).
    pub billing_fraud: bool,
    /// SIP format discipline (warning-level).
    pub sip_format: bool,
    /// RTCP BYE vs. continuing media consistency.
    pub rtcp_bye: bool,
    /// MGCP gateway teardown evasion (inert unless the MGCP protocol
    /// module is registered — without it the rule's event never fires).
    pub mgcp: bool,
    /// SPIT / war-dialing: one caller fanning out to many distinct
    /// callees (a [`ThresholdRule`] over [`rapid_spec`]).
    pub rapid_connect: bool,
}

impl Default for RuleToggles {
    fn default() -> RuleToggles {
        RuleToggles {
            bye_attack: true,
            call_hijack: true,
            fake_im: true,
            rtp_attack: true,
            register_dos: true,
            password_guess: true,
            billing_fraud: true,
            sip_format: true,
            rtcp_bye: true,
            mgcp: true,
            rapid_connect: true,
        }
    }
}

/// Builds the built-in ruleset.
pub fn builtin_ruleset(toggles: &RuleToggles) -> Vec<Box<dyn Rule>> {
    let mut rules: Vec<Box<dyn Rule>> = Vec::new();
    if toggles.bye_attack {
        // The enriched variant: besides matching the event, it performs
        // the paper's "crude information directly from the Trails"
        // lookup to name the BYE's claimed originator.
        rules.push(Box::new(crate::rules::bye_rule::ByeAttackRule::new()));
    }
    if toggles.call_hijack {
        rules.push(Box::new(EventRule::new(
            "call-hijack",
            "no RTP should be seen from an endpoint after its re-INVITE moved it",
            &[EventClass::OrphanRtpAfterRedirect],
            Severity::Critical,
            true,
            true,
        )));
    }
    if toggles.fake_im {
        rules.push(Box::new(EventRule::new(
            "fake-im",
            "instant-message source must match the claimed sender",
            &[EventClass::ImSourceMismatch],
            Severity::Critical,
            true,  // SIP + IP
            false, // per Table 1: an address check, not session state
        )));
    }
    if toggles.rtp_attack {
        rules.push(Box::new(EventRule::new(
            "rtp-attack",
            "RTP must come from a negotiated source with disciplined sequence numbers",
            &[
                EventClass::RtpSeqViolation,
                EventClass::RtpUnknownSource,
                EventClass::MediaPortGarbage,
            ],
            Severity::Critical,
            true, // RTP + IP
            true, // sequence history
        )));
    }
    if toggles.register_dos {
        rules.push(Box::new(EventRule::new(
            "register-dos",
            "repeated unauthenticated requests answered by 4xx",
            &[EventClass::RegisterFlood],
            Severity::Critical,
            false,
            true,
        )));
    }
    if toggles.password_guess {
        rules.push(Box::new(EventRule::new(
            "password-guess",
            "many distinct digest responses against one account",
            &[EventClass::PasswordGuessing],
            Severity::Critical,
            false,
            true,
        )));
    }
    if toggles.billing_fraud {
        rules.push(Box::new(
            CombinationRule::new(
                "billing-fraud",
                "malformed call setup whose billing attribution has no matching SIP initiation",
                vec![EventClass::SipMalformed, EventClass::AcctMismatch],
                SimDuration::from_secs(120),
            )
            .with_severity(Severity::Critical),
        ));
    }
    if toggles.rtcp_bye {
        rules.push(Box::new(EventRule::new(
            "rtcp-bye-anomaly",
            "a source must stop transmitting after its RTCP BYE",
            &[EventClass::RtpAfterRtcpBye],
            Severity::Critical,
            true, // RTP + RTCP
            true, // per-SSRC goodbye state
        )));
    }
    if toggles.sip_format {
        rules.push(Box::new(EventRule::new(
            "sip-format",
            "SIP message violates mandatory format",
            &[EventClass::SipMalformed],
            Severity::Warning,
            false,
            false,
        )));
    }
    if toggles.mgcp {
        rules.push(Box::new(crate::proto::mgcp::MgcpTeardownRule::new()));
    }
    if toggles.rapid_connect {
        // Appended last so the alert ordering of the pre-existing rules
        // is untouched.
        rules.push(Box::new(ThresholdRule::new(rapid_spec())));
    }
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FlowKey;
    use crate::rules::collect_alerts;
    use crate::trail::{SessionKey, TrailStore, TrailStoreConfig};
    use scidive_netsim::time::SimTime;
    use std::net::Ipv4Addr;

    fn orphan_event(session: &str) -> Event {
        Event {
            time: SimTime::from_millis(10),
            session: Some(SessionKey::new(session)),
            kind: EventKind::OrphanRtpAfterBye {
                flow: FlowKey {
                    src: Ipv4Addr::new(10, 0, 0, 3),
                    dst: Ipv4Addr::new(10, 0, 0, 2),
                    dst_port: 8000,
                },
                gap: SimDuration::from_millis(4),
            },
        }
    }

    #[test]
    fn default_ruleset_has_all_rules() {
        let rules = builtin_ruleset(&RuleToggles::default());
        let ids: Vec<&str> = rules.iter().map(|r| r.id()).collect();
        for expected in [
            "bye-attack",
            "call-hijack",
            "fake-im",
            "rtp-attack",
            "register-dos",
            "password-guess",
            "billing-fraud",
            "sip-format",
            "mgcp-teardown",
            "rapid-connect",
        ] {
            assert!(ids.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn toggles_remove_rules() {
        let toggles = RuleToggles {
            bye_attack: false,
            billing_fraud: false,
            ..RuleToggles::default()
        };
        let ids: Vec<String> = builtin_ruleset(&toggles)
            .iter()
            .map(|r| r.id().to_string())
            .collect();
        assert!(!ids.contains(&"bye-attack".to_string()));
        assert!(!ids.contains(&"billing-fraud".to_string()));
        assert!(ids.contains(&"call-hijack".to_string()));
    }

    #[test]
    fn event_rule_fires_once_per_session() {
        let store = TrailStore::new(TrailStoreConfig::default());
        let rates = crate::rate::RateHub::default();
        let ctx = RuleCtx {
            now: SimTime::from_millis(10),
            trails: &store,
            rates: &rates,
        };
        let mut rule = EventRule::new(
            "bye-attack",
            "test",
            &[EventClass::OrphanRtpAfterBye],
            Severity::Critical,
            true,
            true,
        );
        assert_eq!(collect_alerts(&mut rule, &orphan_event("c1"), &ctx).len(), 1);
        assert_eq!(collect_alerts(&mut rule, &orphan_event("c1"), &ctx).len(), 0);
        assert_eq!(collect_alerts(&mut rule, &orphan_event("c2"), &ctx).len(), 1);
        assert_eq!(rule.state_stats().sessions, 2);
    }

    #[test]
    fn event_rule_fired_marker_expires_with_idle_sessions() {
        let store = TrailStore::new(TrailStoreConfig::default());
        let rates = crate::rate::RateHub::default();
        let ctx = RuleCtx {
            now: SimTime::from_millis(10),
            trails: &store,
            rates: &rates,
        };
        let mut rule = EventRule::new(
            "bye-attack",
            "test",
            &[EventClass::OrphanRtpAfterBye],
            Severity::Critical,
            true,
            true,
        );
        rule.set_state_timeout(SimDuration::from_secs(2));
        assert_eq!(collect_alerts(&mut rule, &orphan_event("c1"), &ctx).len(), 1);
        // The same session recurring after the idle timeout alarms
        // again: its trails (and thus the marker's context) are gone.
        let mut late = orphan_event("c1");
        late.time = SimTime::from_secs(60);
        assert_eq!(collect_alerts(&mut rule, &late, &ctx).len(), 1);
        assert_eq!(rule.state_stats().expired, 1);
    }

    #[test]
    fn event_rule_declares_its_classes_as_interests() {
        let rule = EventRule::new(
            "rtp-attack",
            "test",
            &[EventClass::RtpSeqViolation, EventClass::RtpUnknownSource],
            Severity::Critical,
            true,
            true,
        );
        let i = rule.interests();
        assert!(i.contains(EventClass::RtpSeqViolation));
        assert!(i.contains(EventClass::RtpUnknownSource));
        assert!(!i.contains(EventClass::OrphanRtpAfterBye));
        assert!(!i.is_all());
    }

    #[test]
    fn table1_attributes() {
        let rules = builtin_ruleset(&RuleToggles::default());
        let find = |id: &str| {
            rules
                .iter()
                .find(|r| r.id() == id)
                .unwrap_or_else(|| panic!("missing {id}"))
        };
        // Table 1 rows.
        assert!(find("bye-attack").is_cross_protocol());
        assert!(find("bye-attack").is_stateful());
        assert!(find("fake-im").is_cross_protocol());
        assert!(!find("fake-im").is_stateful());
        assert!(find("call-hijack").is_cross_protocol());
        assert!(find("call-hijack").is_stateful());
        assert!(find("rtp-attack").is_cross_protocol());
        assert!(find("rtp-attack").is_stateful());
    }

    #[test]
    fn alert_messages_are_descriptive() {
        let store = TrailStore::new(TrailStoreConfig::default());
        let rates = crate::rate::RateHub::default();
        let ctx = RuleCtx {
            now: SimTime::from_millis(10),
            trails: &store,
            rates: &rates,
        };
        let mut rule = EventRule::new(
            "bye-attack",
            "no RTP after BYE",
            &[EventClass::OrphanRtpAfterBye],
            Severity::Critical,
            true,
            true,
        );
        let alerts = collect_alerts(&mut rule, &orphan_event("c1"), &ctx);
        assert!(alerts[0].message.contains("10.0.0.3"));
        assert!(alerts[0].message.contains("after the BYE"));
    }

    fn call_event(n: u32, caller: &str, callee: &str) -> Event {
        Event {
            time: SimTime::from_millis(100 * u64::from(n)),
            session: Some(SessionKey::new(format!("dialog-{n}"))),
            kind: EventKind::CallEstablished {
                caller: caller.to_string(),
                callee: callee.to_string(),
            },
        }
    }

    /// Drives a fan-out campaign (one caller, distinct callees, all
    /// within the window) through the rule under the given hub and
    /// returns the alerts.
    fn rapid_campaign(rates: &crate::rate::RateHub) -> Vec<Alert> {
        let store = TrailStore::new(TrailStoreConfig::default());
        let mut rule = ThresholdRule::new(rapid_spec());
        let mut alerts = Vec::new();
        for n in 0..RAPID_ATTEMPTS + 3 {
            let ev = call_event(n, "spitter@lab", &format!("victim-{n}@lab"));
            let ctx = RuleCtx {
                now: ev.time,
                trails: &store,
                rates,
            };
            alerts.extend(collect_alerts(&mut rule, &ev, &ctx));
        }
        alerts
    }

    #[test]
    fn rapid_connect_fires_once_on_fanout_exact() {
        let rates = crate::rate::RateHub::default();
        let alerts = rapid_campaign(&rates);
        assert_eq!(alerts.len(), 1, "latched: one alert for the campaign");
        assert_eq!(alerts[0].rule, "rapid-connect");
        assert!(alerts[0].message.contains("spitter@lab"));
        assert!(alerts[0].message.contains("12 calls"));
    }

    #[test]
    fn rapid_connect_fires_identically_in_sketch_mode() {
        let exact = rapid_campaign(&crate::rate::RateHub::default());
        let sketch = rapid_campaign(&crate::rate::RateHub::new(
            crate::rate::RateConfig::default(),
            false,
        ));
        assert_eq!(exact, sketch, "exact and sketch paths must agree");
    }

    #[test]
    fn rapid_connect_ignores_redials_to_one_callee() {
        let store = TrailStore::new(TrailStoreConfig::default());
        let rates = crate::rate::RateHub::default();
        let mut rule = ThresholdRule::new(rapid_spec());
        for n in 0..4 * RAPID_ATTEMPTS {
            // A hot legitimate line: many calls, one peer.
            let ev = call_event(n, "alice@lab", "bob@lab");
            let ctx = RuleCtx {
                now: ev.time,
                trails: &store,
                rates: &rates,
            };
            assert!(collect_alerts(&mut rule, &ev, &ctx).is_empty());
        }
    }

    #[test]
    fn rapid_connect_window_forgets_slow_fanout() {
        let store = TrailStore::new(TrailStoreConfig::default());
        let rates = crate::rate::RateHub::default();
        let mut rule = ThresholdRule::new(rapid_spec());
        for n in 0..4 * RAPID_ATTEMPTS {
            // One call every two minutes never accumulates in the 60s
            // window, distinct callees or not.
            let mut ev = call_event(n, "slow@lab", &format!("peer-{n}@lab"));
            ev.time = SimTime::from_secs(120 * u64::from(n));
            let ctx = RuleCtx {
                now: ev.time,
                trails: &store,
                rates: &rates,
            };
            assert!(collect_alerts(&mut rule, &ev, &ctx).is_empty());
        }
    }
}
