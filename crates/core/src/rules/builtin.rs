//! The built-in ruleset: one rule per attack the paper covers.
//!
//! Table 1 maps each attack to the protocols involved and whether its
//! rule is cross-protocol and stateful; the structures here carry those
//! attributes so experiment harnesses can reproduce the table.

use crate::alert::{Alert, Severity};
use crate::event::{Event, EventClass, EventKind};
use crate::rules::combo::CombinationRule;
use crate::rules::{AlertSink, Rule, RuleCtx, RuleInterest, RuleStateStats, SessionMap};
use scidive_netsim::time::{SimDuration, SimTime};

/// A rule that fires on any event of the given classes, once per
/// session (or globally de-duplicated by message for session-less
/// events). The fired-once markers live in a [`SessionMap`], so a
/// session idle past the trail timeout sheds its marker along with its
/// trails (and may legitimately alarm again if the attack recurs).
#[derive(Debug)]
pub struct EventRule {
    id: &'static str,
    description: &'static str,
    classes: &'static [EventClass],
    severity: Severity,
    cross_protocol: bool,
    stateful: bool,
    fired_sessions: SessionMap<()>,
    global_fired: u32,
    /// Maximum global (session-less) firings; 0 = unlimited.
    global_cap: u32,
}

impl EventRule {
    /// Creates a single-event rule.
    pub fn new(
        id: &'static str,
        description: &'static str,
        classes: &'static [EventClass],
        severity: Severity,
        cross_protocol: bool,
        stateful: bool,
    ) -> EventRule {
        EventRule {
            id,
            description,
            classes,
            severity,
            cross_protocol,
            stateful,
            fired_sessions: SessionMap::new(),
            global_fired: 0,
            global_cap: 0,
        }
    }
}

impl Rule for EventRule {
    fn id(&self) -> &str {
        self.id
    }

    fn description(&self) -> &str {
        self.description
    }

    fn is_cross_protocol(&self) -> bool {
        self.cross_protocol
    }

    fn is_stateful(&self) -> bool {
        self.stateful
    }

    fn interests(&self) -> RuleInterest {
        RuleInterest::of(self.classes)
    }

    fn on_event(&mut self, ev: &Event, _ctx: &RuleCtx<'_>, sink: &mut AlertSink<'_>) {
        if !self.classes.contains(&ev.class()) {
            return;
        }
        if let Some(session) = &ev.session {
            if self.fired_sessions.get_mut(session, ev.time).is_some() {
                return;
            }
            self.fired_sessions.insert(session.clone(), (), ev.time);
        } else {
            if self.global_cap != 0 && self.global_fired >= self.global_cap {
                return;
            }
            self.global_fired += 1;
        }
        sink.push(Alert::new(
            self.id,
            self.severity,
            ev.time,
            ev.session.clone(),
            format!("{}: {}", self.description, describe(&ev.kind)),
        ));
    }

    fn set_state_timeout(&mut self, timeout: SimDuration) {
        self.fired_sessions.set_timeout(timeout);
    }

    fn state_stats(&self) -> RuleStateStats {
        self.fired_sessions.state_stats()
    }
}

fn describe(kind: &EventKind) -> String {
    match kind {
        EventKind::OrphanRtpAfterBye { flow, gap } => {
            format!("RTP flow {flow} continued {gap} after the BYE")
        }
        EventKind::OrphanRtpAfterRedirect { flow, gap } => {
            format!("RTP flow {flow} continued {gap} after the re-INVITE")
        }
        EventKind::RtpSeqViolation { flow, delta } => {
            format!("sequence jumped by {delta} on {flow}")
        }
        EventKind::RtpUnknownSource { flow } => {
            format!("media from unnegotiated source on {flow}")
        }
        EventKind::MediaPortGarbage { sink, reason } => {
            format!("undecodable media at {}:{} ({reason})", sink.0, sink.1)
        }
        EventKind::ImSourceMismatch {
            claimed_aor,
            src_ip,
            expected_ip,
        } => format!("message claims {claimed_aor} but came from {src_ip} (expected {expected_ip})"),
        EventKind::RegisterFlood { src, count } => {
            format!("{count} request/4xx alternations from {src}")
        }
        EventKind::PasswordGuessing {
            src,
            username,
            distinct_responses,
        } => format!("{distinct_responses} distinct digest responses for {username} from {src}"),
        EventKind::SipMalformed { violations, src } => {
            format!("{} violation(s) from {src}: {}", violations.len(), violations.join("; "))
        }
        EventKind::RtpAfterRtcpBye { flow, ssrc, gap } => {
            format!("SSRC {ssrc:#010x} kept streaming on {flow} {gap} after its RTCP BYE")
        }
        EventKind::AcctMismatch {
            billed,
            observed_caller,
            call_id,
        } => format!(
            "billing charges {billed} for call {call_id} initiated by {}",
            observed_caller.as_deref().unwrap_or("<nobody>")
        ),
        EventKind::Protocol { signal, detail, .. } => format!("{signal}: {detail}"),
        other => format!("{other:?}"),
    }
}

/// Window for rapid-connection (SPIT / war-dial) detection.
pub(crate) const RAPID_WINDOW: SimDuration = SimDuration::from_secs(60);
/// Calls within the window that make a caller suspicious.
pub(crate) const RAPID_ATTEMPTS: u32 = 12;
/// Distinct callees within the window that make it a campaign (a hot
/// legitimate line redials the *same* peer; a SPIT campaign fans out).
pub(crate) const RAPID_DISTINCT: u32 = 8;

/// Clause / latch name shared by the local rule and the fold plane.
pub(crate) const RAPID_CLAUSE: &str = "rapid-connect";
/// Windowed attempt counter fed in sketch and aggregated modes.
pub(crate) const RAPID_ATTEMPTS_TRACKER: &str = "rapid-connect-attempts";
/// Windowed distinct-callee estimator fed in sketch and aggregated modes.
pub(crate) const RAPID_CALLEES_TRACKER: &str = "rapid-connect-callees";

/// The rapid-connect threshold clause — one definition evaluated by both
/// planes: the local sketch path (single engine) and the fold plane's
/// global pass (sharded pipeline), so a campaign crosses at exactly the
/// same counts regardless of where the evaluation runs.
pub(crate) fn rapid_clause(attempts: u32, distinct: u32) -> bool {
    attempts >= RAPID_ATTEMPTS && distinct >= RAPID_DISTINCT
}

/// Builds the rapid-connect alert — shared by the local rule (alert at
/// the crossing call, with its session) and the fold plane (alert at the
/// fold boundary, session-less: the campaign spans many calls).
pub(crate) fn rapid_alert_at(
    time: SimTime,
    session: Option<crate::trail::SessionKey>,
    caller: &str,
    attempts: u32,
    distinct: u32,
) -> Alert {
    Alert::new(
        RAPID_CLAUSE,
        Severity::Critical,
        time,
        session,
        format!(
            "rapid connections: caller {caller} established {attempts} calls to \
             {distinct} distinct callees within {}s",
            RAPID_WINDOW.as_micros() / 1_000_000
        ),
    )
}

/// Exact per-caller state for [`RapidConnectRule`]: established calls
/// within the window as (time, callee-hash) pairs — one queue serves
/// both the attempt count and the distinct-callee check, and hashing
/// the callee keeps the hot path allocation-free.
#[derive(Debug, Default)]
struct RapidState {
    calls: std::collections::VecDeque<(SimTime, u64)>,
    emitted: bool,
}

impl RapidState {
    /// Whether the window holds at least [`RAPID_DISTINCT`] distinct
    /// callees. Early-exit linear probe over a fixed array: no
    /// allocation on the per-event path (the full count for the alert
    /// message is only taken when this returns true).
    fn fans_out(&self) -> bool {
        let mut seen = [0u64; RAPID_DISTINCT as usize];
        let mut n = 0;
        for &(_, callee) in &self.calls {
            if !seen[..n].contains(&callee) {
                seen[n] = callee;
                n += 1;
                if n == seen.len() {
                    return true;
                }
            }
        }
        false
    }

    fn distinct(&self) -> u32 {
        let set: std::collections::HashSet<u64> = self.calls.iter().map(|&(_, c)| c).collect();
        set.len() as u32
    }
}

/// SPIT / war-dialing detection: one caller establishing many calls to
/// many *distinct* callees inside a sliding window. The first rule built
/// directly on the [`crate::rate`] primitives — in sketch mode
/// ([`crate::rate::RateHub::exact`] false) it keeps **no per-caller
/// state at all**: a windowed count, a windowed distinct estimate, and a
/// fired latch, all constant memory. In exact mode it keeps the
/// reference queues in a caller-hash-keyed map with the same
/// staleness-at-access lifecycle as [`SessionMap`] (so the state shows
/// up in the rule-state gauges and expires with idle callers) — hash
/// keys rather than [`crate::trail::SessionKey`] strings because this
/// rule sits on the per-call hot path and must not allocate per event.
///
/// Under the sharded pipeline (where calls are routed by Call-ID, so one
/// caller's campaign spreads across shards) the rule runs in
/// **aggregated** mode ([`crate::rate::RateHub::aggregated`]): it only
/// observes the trackers (feeding the fold-plane delta twins) and
/// forwards candidate callers whose local slice crosses
/// `⌈threshold/shards⌉`; the threshold clause and the fired latch are
/// evaluated by the dispatcher's [`crate::rate::GlobalRatePlane`]
/// against the merged trackers, so the campaign trips at the global
/// threshold no matter how its calls hash.
#[derive(Debug)]
pub struct RapidConnectRule {
    exact: std::collections::HashMap<u64, (RapidState, SimTime)>,
    timeout: SimDuration,
    last_sweep: SimTime,
    expired: u64,
}

impl Default for RapidConnectRule {
    fn default() -> RapidConnectRule {
        RapidConnectRule {
            exact: std::collections::HashMap::new(),
            timeout: crate::rules::DEFAULT_STATE_TIMEOUT,
            last_sweep: SimTime::ZERO,
            expired: 0,
        }
    }
}

impl RapidConnectRule {
    /// Creates the rule.
    pub fn new() -> RapidConnectRule {
        RapidConnectRule::default()
    }

    /// Amortized reclamation of idle callers, mirroring
    /// [`SessionMap::maybe_sweep`]: at most once per quarter-timeout.
    fn maybe_sweep(&mut self, now: SimTime) {
        if now.saturating_since(self.last_sweep) < self.timeout / 4 {
            return;
        }
        self.last_sweep = now;
        let timeout = self.timeout;
        let before = self.exact.len();
        self.exact
            .retain(|_, (_, touched)| now.saturating_since(*touched) < timeout);
        self.expired += (before - self.exact.len()) as u64;
    }

    fn alert(ev: &Event, caller: &str, attempts: u32, distinct: u32) -> Alert {
        rapid_alert_at(ev.time, ev.session.clone(), caller, attempts, distinct)
    }
}

impl Rule for RapidConnectRule {
    fn id(&self) -> &str {
        "rapid-connect"
    }

    fn description(&self) -> &str {
        "one caller fanning out calls to many distinct callees (SPIT / war dialing)"
    }

    fn is_cross_protocol(&self) -> bool {
        false
    }

    fn is_stateful(&self) -> bool {
        true
    }

    fn interests(&self) -> RuleInterest {
        RuleInterest::of(&[EventClass::CallEstablished])
    }

    fn on_event(&mut self, ev: &Event, ctx: &RuleCtx<'_>, sink: &mut AlertSink<'_>) {
        let EventKind::CallEstablished { caller, callee } = &ev.kind else {
            return;
        };
        if caller.is_empty() {
            return;
        }
        // Same seeded hash for both modes: the caller key identifies
        // the window, the callee key is the distinct item. In exact
        // mode these are just cheap map keys — no string allocation on
        // the per-call path.
        let key = ctx.rates.key(&[b"rapid", caller.as_bytes()]);
        let item = ctx.rates.key(&[b"callee", callee.as_bytes()]);
        if ctx.rates.aggregated() {
            // Fold-plane mode (sharded pipeline, exact or sketch):
            // observe — feeding the plain-update delta twins — and admit
            // the caller as a fold candidate once the local slice could
            // be a 1/shards share of a global crossing. The conservative
            // local estimate never undercounts this shard's true slice,
            // and a global crossing forces *some* shard's slice to at
            // least ⌈threshold/shards⌉, so every globally crossing
            // caller is admitted at every shard count; sub-threshold
            // admissions just fail the identical global clause. The
            // threshold itself and the fired latch belong to the global
            // plane.
            let attempts =
                ctx.rates
                    .observe_count(RAPID_ATTEMPTS_TRACKER, RAPID_WINDOW, ev.time, key);
            ctx.rates
                .observe_distinct(RAPID_CALLEES_TRACKER, RAPID_WINDOW, ev.time, key, item);
            let bar = RAPID_ATTEMPTS.div_ceil(ctx.rates.fold_shards() as u32);
            if attempts >= bar {
                ctx.rates
                    .push_candidate(RAPID_CLAUSE, key, ev.time, attempts, caller);
            }
            return;
        }
        if ctx.rates.exact() {
            self.maybe_sweep(ev.time);
            let timeout = self.timeout;
            let entry = self.exact.entry(key).or_insert_with(|| {
                (RapidState::default(), ev.time)
            });
            // Staleness-at-access, mirroring SessionMap::get_mut: an
            // entry idle past the timeout reads as absent.
            if ev.time.saturating_since(entry.1) >= timeout {
                self.expired += 1;
                *entry = (RapidState::default(), ev.time);
            }
            let (state, touched) = entry;
            *touched = ev.time;
            state.calls.push_back((ev.time, item));
            while let Some(&(t, _)) = state.calls.front() {
                if ev.time.saturating_since(t) > RAPID_WINDOW {
                    state.calls.pop_front();
                } else {
                    break;
                }
            }
            let attempts = state.calls.len() as u32;
            if !state.emitted && attempts >= RAPID_ATTEMPTS && state.fans_out() {
                state.emitted = true;
                let distinct = state.distinct();
                sink.push(RapidConnectRule::alert(ev, caller, attempts, distinct));
            }
        } else {
            let attempts =
                ctx.rates
                    .observe_count(RAPID_ATTEMPTS_TRACKER, RAPID_WINDOW, ev.time, key);
            let distinct = ctx.rates.observe_distinct(
                RAPID_CALLEES_TRACKER,
                RAPID_WINDOW,
                ev.time,
                key,
                item,
            );
            if rapid_clause(attempts, distinct) && !ctx.rates.latched(RAPID_CLAUSE, key) {
                ctx.rates.set_latch(RAPID_CLAUSE, key, true);
                sink.push(RapidConnectRule::alert(ev, caller, attempts, distinct));
            }
        }
    }

    fn set_state_timeout(&mut self, timeout: SimDuration) {
        self.timeout = timeout;
    }

    fn state_stats(&self) -> RuleStateStats {
        RuleStateStats {
            sessions: self.exact.len() as u64,
            expired: self.expired,
        }
    }
}

/// Which built-in rules to install (ablation knobs).
#[derive(Debug, Clone)]
pub struct RuleToggles {
    /// §4.2.1 BYE attack.
    pub bye_attack: bool,
    /// §4.2.3 call hijacking.
    pub call_hijack: bool,
    /// §4.2.2 fake instant messaging.
    pub fake_im: bool,
    /// §4.2.4 RTP attack.
    pub rtp_attack: bool,
    /// §3.3 REGISTER-flood DoS.
    pub register_dos: bool,
    /// §3.3 password guessing.
    pub password_guess: bool,
    /// §3.2 billing fraud (cross-protocol combination).
    pub billing_fraud: bool,
    /// SIP format discipline (warning-level).
    pub sip_format: bool,
    /// RTCP BYE vs. continuing media consistency.
    pub rtcp_bye: bool,
    /// MGCP gateway teardown evasion (inert unless the MGCP protocol
    /// module is registered — without it the rule's event never fires).
    pub mgcp: bool,
    /// SPIT / war-dialing: one caller fanning out to many distinct
    /// callees ([`RapidConnectRule`]).
    pub rapid_connect: bool,
}

impl Default for RuleToggles {
    fn default() -> RuleToggles {
        RuleToggles {
            bye_attack: true,
            call_hijack: true,
            fake_im: true,
            rtp_attack: true,
            register_dos: true,
            password_guess: true,
            billing_fraud: true,
            sip_format: true,
            rtcp_bye: true,
            mgcp: true,
            rapid_connect: true,
        }
    }
}

/// Builds the built-in ruleset.
pub fn builtin_ruleset(toggles: &RuleToggles) -> Vec<Box<dyn Rule>> {
    let mut rules: Vec<Box<dyn Rule>> = Vec::new();
    if toggles.bye_attack {
        // The enriched variant: besides matching the event, it performs
        // the paper's "crude information directly from the Trails"
        // lookup to name the BYE's claimed originator.
        rules.push(Box::new(crate::rules::bye_rule::ByeAttackRule::new()));
    }
    if toggles.call_hijack {
        rules.push(Box::new(EventRule::new(
            "call-hijack",
            "no RTP should be seen from an endpoint after its re-INVITE moved it",
            &[EventClass::OrphanRtpAfterRedirect],
            Severity::Critical,
            true,
            true,
        )));
    }
    if toggles.fake_im {
        rules.push(Box::new(EventRule::new(
            "fake-im",
            "instant-message source must match the claimed sender",
            &[EventClass::ImSourceMismatch],
            Severity::Critical,
            true,  // SIP + IP
            false, // per Table 1: an address check, not session state
        )));
    }
    if toggles.rtp_attack {
        rules.push(Box::new(EventRule::new(
            "rtp-attack",
            "RTP must come from a negotiated source with disciplined sequence numbers",
            &[
                EventClass::RtpSeqViolation,
                EventClass::RtpUnknownSource,
                EventClass::MediaPortGarbage,
            ],
            Severity::Critical,
            true, // RTP + IP
            true, // sequence history
        )));
    }
    if toggles.register_dos {
        rules.push(Box::new(EventRule::new(
            "register-dos",
            "repeated unauthenticated requests answered by 4xx",
            &[EventClass::RegisterFlood],
            Severity::Critical,
            false,
            true,
        )));
    }
    if toggles.password_guess {
        rules.push(Box::new(EventRule::new(
            "password-guess",
            "many distinct digest responses against one account",
            &[EventClass::PasswordGuessing],
            Severity::Critical,
            false,
            true,
        )));
    }
    if toggles.billing_fraud {
        rules.push(Box::new(
            CombinationRule::new(
                "billing-fraud",
                "malformed call setup whose billing attribution has no matching SIP initiation",
                vec![EventClass::SipMalformed, EventClass::AcctMismatch],
                SimDuration::from_secs(120),
            )
            .with_severity(Severity::Critical),
        ));
    }
    if toggles.rtcp_bye {
        rules.push(Box::new(EventRule::new(
            "rtcp-bye-anomaly",
            "a source must stop transmitting after its RTCP BYE",
            &[EventClass::RtpAfterRtcpBye],
            Severity::Critical,
            true, // RTP + RTCP
            true, // per-SSRC goodbye state
        )));
    }
    if toggles.sip_format {
        rules.push(Box::new(EventRule::new(
            "sip-format",
            "SIP message violates mandatory format",
            &[EventClass::SipMalformed],
            Severity::Warning,
            false,
            false,
        )));
    }
    if toggles.mgcp {
        rules.push(Box::new(crate::proto::mgcp::MgcpTeardownRule::new()));
    }
    if toggles.rapid_connect {
        // Appended last so the alert ordering of the pre-existing rules
        // is untouched.
        rules.push(Box::new(RapidConnectRule::new()));
    }
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FlowKey;
    use crate::rules::collect_alerts;
    use crate::trail::{SessionKey, TrailStore, TrailStoreConfig};
    use scidive_netsim::time::SimTime;
    use std::net::Ipv4Addr;

    fn orphan_event(session: &str) -> Event {
        Event {
            time: SimTime::from_millis(10),
            session: Some(SessionKey::new(session)),
            kind: EventKind::OrphanRtpAfterBye {
                flow: FlowKey {
                    src: Ipv4Addr::new(10, 0, 0, 3),
                    dst: Ipv4Addr::new(10, 0, 0, 2),
                    dst_port: 8000,
                },
                gap: SimDuration::from_millis(4),
            },
        }
    }

    #[test]
    fn default_ruleset_has_all_rules() {
        let rules = builtin_ruleset(&RuleToggles::default());
        let ids: Vec<&str> = rules.iter().map(|r| r.id()).collect();
        for expected in [
            "bye-attack",
            "call-hijack",
            "fake-im",
            "rtp-attack",
            "register-dos",
            "password-guess",
            "billing-fraud",
            "sip-format",
            "mgcp-teardown",
            "rapid-connect",
        ] {
            assert!(ids.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn toggles_remove_rules() {
        let toggles = RuleToggles {
            bye_attack: false,
            billing_fraud: false,
            ..RuleToggles::default()
        };
        let ids: Vec<String> = builtin_ruleset(&toggles)
            .iter()
            .map(|r| r.id().to_string())
            .collect();
        assert!(!ids.contains(&"bye-attack".to_string()));
        assert!(!ids.contains(&"billing-fraud".to_string()));
        assert!(ids.contains(&"call-hijack".to_string()));
    }

    #[test]
    fn event_rule_fires_once_per_session() {
        let store = TrailStore::new(TrailStoreConfig::default());
        let rates = crate::rate::RateHub::default();
        let ctx = RuleCtx {
            now: SimTime::from_millis(10),
            trails: &store,
            rates: &rates,
        };
        let mut rule = EventRule::new(
            "bye-attack",
            "test",
            &[EventClass::OrphanRtpAfterBye],
            Severity::Critical,
            true,
            true,
        );
        assert_eq!(collect_alerts(&mut rule, &orphan_event("c1"), &ctx).len(), 1);
        assert_eq!(collect_alerts(&mut rule, &orphan_event("c1"), &ctx).len(), 0);
        assert_eq!(collect_alerts(&mut rule, &orphan_event("c2"), &ctx).len(), 1);
        assert_eq!(rule.state_stats().sessions, 2);
    }

    #[test]
    fn event_rule_fired_marker_expires_with_idle_sessions() {
        let store = TrailStore::new(TrailStoreConfig::default());
        let rates = crate::rate::RateHub::default();
        let ctx = RuleCtx {
            now: SimTime::from_millis(10),
            trails: &store,
            rates: &rates,
        };
        let mut rule = EventRule::new(
            "bye-attack",
            "test",
            &[EventClass::OrphanRtpAfterBye],
            Severity::Critical,
            true,
            true,
        );
        rule.set_state_timeout(SimDuration::from_secs(2));
        assert_eq!(collect_alerts(&mut rule, &orphan_event("c1"), &ctx).len(), 1);
        // The same session recurring after the idle timeout alarms
        // again: its trails (and thus the marker's context) are gone.
        let mut late = orphan_event("c1");
        late.time = SimTime::from_secs(60);
        assert_eq!(collect_alerts(&mut rule, &late, &ctx).len(), 1);
        assert_eq!(rule.state_stats().expired, 1);
    }

    #[test]
    fn event_rule_declares_its_classes_as_interests() {
        let rule = EventRule::new(
            "rtp-attack",
            "test",
            &[EventClass::RtpSeqViolation, EventClass::RtpUnknownSource],
            Severity::Critical,
            true,
            true,
        );
        let i = rule.interests();
        assert!(i.contains(EventClass::RtpSeqViolation));
        assert!(i.contains(EventClass::RtpUnknownSource));
        assert!(!i.contains(EventClass::OrphanRtpAfterBye));
        assert!(!i.is_all());
    }

    #[test]
    fn table1_attributes() {
        let rules = builtin_ruleset(&RuleToggles::default());
        let find = |id: &str| {
            rules
                .iter()
                .find(|r| r.id() == id)
                .unwrap_or_else(|| panic!("missing {id}"))
        };
        // Table 1 rows.
        assert!(find("bye-attack").is_cross_protocol());
        assert!(find("bye-attack").is_stateful());
        assert!(find("fake-im").is_cross_protocol());
        assert!(!find("fake-im").is_stateful());
        assert!(find("call-hijack").is_cross_protocol());
        assert!(find("call-hijack").is_stateful());
        assert!(find("rtp-attack").is_cross_protocol());
        assert!(find("rtp-attack").is_stateful());
    }

    #[test]
    fn alert_messages_are_descriptive() {
        let store = TrailStore::new(TrailStoreConfig::default());
        let rates = crate::rate::RateHub::default();
        let ctx = RuleCtx {
            now: SimTime::from_millis(10),
            trails: &store,
            rates: &rates,
        };
        let mut rule = EventRule::new(
            "bye-attack",
            "no RTP after BYE",
            &[EventClass::OrphanRtpAfterBye],
            Severity::Critical,
            true,
            true,
        );
        let alerts = collect_alerts(&mut rule, &orphan_event("c1"), &ctx);
        assert!(alerts[0].message.contains("10.0.0.3"));
        assert!(alerts[0].message.contains("after the BYE"));
    }

    fn call_event(n: u32, caller: &str, callee: &str) -> Event {
        Event {
            time: SimTime::from_millis(100 * u64::from(n)),
            session: Some(SessionKey::new(format!("dialog-{n}"))),
            kind: EventKind::CallEstablished {
                caller: caller.to_string(),
                callee: callee.to_string(),
            },
        }
    }

    /// Drives a fan-out campaign (one caller, distinct callees, all
    /// within the window) through the rule under the given hub and
    /// returns the alerts.
    fn rapid_campaign(rates: &crate::rate::RateHub) -> Vec<Alert> {
        let store = TrailStore::new(TrailStoreConfig::default());
        let mut rule = RapidConnectRule::new();
        let mut alerts = Vec::new();
        for n in 0..RAPID_ATTEMPTS + 3 {
            let ev = call_event(n, "spitter@lab", &format!("victim-{n}@lab"));
            let ctx = RuleCtx {
                now: ev.time,
                trails: &store,
                rates,
            };
            alerts.extend(collect_alerts(&mut rule, &ev, &ctx));
        }
        alerts
    }

    #[test]
    fn rapid_connect_fires_once_on_fanout_exact() {
        let rates = crate::rate::RateHub::default();
        let alerts = rapid_campaign(&rates);
        assert_eq!(alerts.len(), 1, "latched: one alert for the campaign");
        assert_eq!(alerts[0].rule, "rapid-connect");
        assert!(alerts[0].message.contains("spitter@lab"));
        assert!(alerts[0].message.contains("12 calls"));
    }

    #[test]
    fn rapid_connect_fires_identically_in_sketch_mode() {
        let exact = rapid_campaign(&crate::rate::RateHub::default());
        let sketch = rapid_campaign(&crate::rate::RateHub::new(
            crate::rate::RateConfig::default(),
            false,
        ));
        assert_eq!(exact, sketch, "exact and sketch paths must agree");
    }

    #[test]
    fn rapid_connect_ignores_redials_to_one_callee() {
        let store = TrailStore::new(TrailStoreConfig::default());
        let rates = crate::rate::RateHub::default();
        let mut rule = RapidConnectRule::new();
        for n in 0..4 * RAPID_ATTEMPTS {
            // A hot legitimate line: many calls, one peer.
            let ev = call_event(n, "alice@lab", "bob@lab");
            let ctx = RuleCtx {
                now: ev.time,
                trails: &store,
                rates: &rates,
            };
            assert!(collect_alerts(&mut rule, &ev, &ctx).is_empty());
        }
    }

    #[test]
    fn rapid_connect_window_forgets_slow_fanout() {
        let store = TrailStore::new(TrailStoreConfig::default());
        let rates = crate::rate::RateHub::default();
        let mut rule = RapidConnectRule::new();
        for n in 0..4 * RAPID_ATTEMPTS {
            // One call every two minutes never accumulates in the 60s
            // window, distinct callees or not.
            let mut ev = call_event(n, "slow@lab", &format!("peer-{n}@lab"));
            ev.time = SimTime::from_secs(120 * u64::from(n));
            let ctx = RuleCtx {
                now: ev.time,
                trails: &store,
                rates: &rates,
            };
            assert!(collect_alerts(&mut rule, &ev, &ctx).is_empty());
        }
    }
}
