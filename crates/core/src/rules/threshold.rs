//! Generic threshold-clause rules over the [`crate::rate`] primitives.
//!
//! A [`ThresholdSpec`] is the *compiled artifact* of a threshold clause:
//! "events of class C, keyed by field K, crossing `count >= N` (and
//! optionally `distinct(D) >= M`) within a window". The spec is plain
//! data shared by the two evaluation planes —
//!
//! * [`ThresholdRule`] evaluates it locally (exact queues or
//!   constant-memory sketches, mirroring the original hand-written
//!   rapid-connect rule), and under the sharded pipeline feeds the
//!   fold-plane delta twins and nominates candidates;
//! * [`crate::rate::GlobalRatePlane`] evaluates the same spec against
//!   the merged cross-shard trackers.
//!
//! The built-in rapid-connect (SPIT) rule is now just
//! `ThresholdRule::new(rapid_spec())` — and a DSL program declaring the
//! same clause compiles to a spec that is `==` to it, which is what
//! makes the DSL-vs-hand-written byte-identity pin structural rather
//! than coincidental.

use crate::alert::{Alert, Severity};
use crate::event::{Event, EventClass, FieldValue};
use crate::rules::{AlertSink, Rule, RuleCtx, RuleInterest, RuleStateStats};
use scidive_netsim::time::{SimDuration, SimTime};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Interns a string into a process-lifetime `&'static str`, deduplicated
/// so repeated ruleset compiles (and hot-reload loops) never grow the
/// table beyond the set of distinct names. The [`crate::rate::RateHub`]
/// and fold-plane APIs key trackers by `&'static str`; DSL-compiled
/// specs go through here to obtain those names.
pub(crate) fn intern(s: &str) -> &'static str {
    use std::collections::HashSet;
    use std::sync::{Mutex, OnceLock};
    static TABLE: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let mut table = TABLE
        .get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .expect("intern table poisoned");
    if let Some(existing) = table.get(s) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    table.insert(leaked);
    leaked
}

/// A compiled threshold clause. All names are `&'static str` (interned
/// for DSL programs, literal for builtins) so equality is cheap and the
/// spec can cross threads inside a [`crate::rules::RulesetBlueprint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThresholdSpec {
    /// Rule id, alert rule name, candidate clause name, and latch name —
    /// one identity for the whole clause.
    pub clause: &'static str,
    /// Windowed count tracker name (`{clause}-count`).
    pub count_tracker: &'static str,
    /// Windowed distinct tracker name (`{clause}-distinct`).
    pub distinct_tracker: &'static str,
    /// The triggering event class.
    pub class: EventClass,
    /// Field of `class` whose value keys the window (e.g. `caller`).
    pub key_field: &'static str,
    /// Field whose values are counted distinctly (e.g. `callee`);
    /// `None` for a pure count threshold.
    pub distinct_field: Option<&'static str>,
    /// The sliding window.
    pub window: SimDuration,
    /// Events within the window that cross the clause.
    pub count_threshold: u32,
    /// Distinct values within the window that cross the clause
    /// (ignored when `distinct_field` is `None`).
    pub distinct_threshold: u32,
    /// Alert severity.
    pub severity: Severity,
    /// Alert message template; `{key}`, `{count}`, `{distinct}` and
    /// `{window}` (whole seconds) are substituted.
    pub template: &'static str,
}

impl ThresholdSpec {
    /// Whether the merged/observed estimates cross the clause.
    pub fn clause_met(&self, count: u32, distinct: u32) -> bool {
        count >= self.count_threshold
            && (self.distinct_field.is_none() || distinct >= self.distinct_threshold)
    }

    /// Renders the alert message from the template.
    pub fn render(&self, key: &str, count: u32, distinct: u32) -> String {
        let mut out = String::with_capacity(self.template.len() + key.len() + 8);
        let mut rest = self.template;
        while let Some(open) = rest.find('{') {
            out.push_str(&rest[..open]);
            rest = &rest[open..];
            let close = match rest.find('}') {
                Some(c) => c,
                None => break,
            };
            match &rest[..=close] {
                "{key}" => out.push_str(key),
                "{count}" => {
                    let _ = write!(out, "{count}");
                }
                "{distinct}" => {
                    let _ = write!(out, "{distinct}");
                }
                "{window}" => {
                    let _ = write!(out, "{}", self.window.as_micros() / 1_000_000);
                }
                other => out.push_str(other),
            }
            rest = &rest[close + 1..];
        }
        out.push_str(rest);
        out
    }

    /// Builds the clause's alert — used by both evaluation planes so a
    /// local crossing and a fold-boundary crossing differ only in time
    /// and session, never in shape.
    pub fn alert_at(
        &self,
        time: SimTime,
        session: Option<crate::trail::SessionKey>,
        key: &str,
        count: u32,
        distinct: u32,
    ) -> Alert {
        Alert::new(
            self.clause,
            self.severity,
            time,
            session,
            self.render(key, count, distinct),
        )
    }
}

/// Fixed-capacity stack string for rendering non-string key fields
/// (addresses, integers) without touching the allocator on the
/// per-event path.
struct KeyBuf {
    buf: [u8; 48],
    len: usize,
}

impl KeyBuf {
    fn new() -> KeyBuf {
        KeyBuf {
            buf: [0; 48],
            len: 0,
        }
    }

    fn as_str(&self) -> &str {
        std::str::from_utf8(&self.buf[..self.len]).unwrap_or("")
    }
}

impl std::fmt::Write for KeyBuf {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        let take = s.len().min(self.buf.len() - self.len);
        self.buf[self.len..self.len + take].copy_from_slice(&s.as_bytes()[..take]);
        self.len += take;
        Ok(())
    }
}

/// Renders a field value into `buf` (for Ip/Int) or borrows it directly
/// (for Str), returning the canonical text used for both hashing and
/// candidate display — the two must agree or the fold plane's canonical
/// candidate order would depend on which shard rendered the display.
fn field_text<'a>(value: &FieldValue<'a>, buf: &'a mut KeyBuf) -> &'a str {
    match value {
        FieldValue::Str(s) => s,
        FieldValue::Ip(ip) => {
            let _ = write!(buf, "{ip}");
            buf.as_str()
        }
        FieldValue::Int(i) => {
            let _ = write!(buf, "{i}");
            buf.as_str()
        }
    }
}

/// Exact per-key state: events within the window as (time, item-hash)
/// pairs — one queue serves both the count and the distinct check, and
/// hashing the item keeps the hot path allocation-free.
#[derive(Debug, Default)]
struct ThresholdState {
    events: std::collections::VecDeque<(SimTime, u64)>,
    emitted: bool,
}

/// Validator-enforced ceiling on `distinct_threshold`: the exact-mode
/// distinct probe is a fixed stack array of this many slots, so the
/// per-event path stays allocation-free.
pub const MAX_DISTINCT_THRESHOLD: u32 = 64;

impl ThresholdState {
    /// Whether the window holds at least `threshold` distinct items.
    /// Early-exit linear probe over a fixed array: no allocation on the
    /// per-event path (the full count for the alert message is only
    /// taken when the clause fires).
    fn fans_out(&self, threshold: u32) -> bool {
        if threshold == 0 {
            return true;
        }
        let want = threshold.min(MAX_DISTINCT_THRESHOLD) as usize;
        let mut seen = [0u64; MAX_DISTINCT_THRESHOLD as usize];
        let mut n = 0;
        for &(_, item) in &self.events {
            if !seen[..n].contains(&item) {
                seen[n] = item;
                n += 1;
                if n == want {
                    return true;
                }
            }
        }
        false
    }

    fn distinct(&self) -> u32 {
        let set: std::collections::HashSet<u64> = self.events.iter().map(|&(_, i)| i).collect();
        set.len() as u32
    }
}

/// A threshold clause evaluated per event: one key fanning out `count`
/// events (to `distinct` items) inside a sliding window. Generalizes the
/// original hand-written rapid-connect rule — the same three modes:
///
/// * **exact** — reference queues in a key-hash-keyed map with the
///   [`crate::rules::SessionMap`] staleness-at-access lifecycle;
/// * **sketch** — no per-key state at all: a windowed count, a windowed
///   distinct estimate, and a fired latch, all constant memory;
/// * **aggregated** (sharded pipeline) — observes the fold-plane delta
///   twins and nominates candidate keys whose local slice crosses
///   `⌈threshold/shards⌉`; the clause and latch are evaluated globally
///   by the dispatcher's [`crate::rate::GlobalRatePlane`] against this
///   same [`ThresholdSpec`].
#[derive(Debug)]
pub struct ThresholdRule {
    spec: ThresholdSpec,
    exact: HashMap<u64, (ThresholdState, SimTime)>,
    timeout: SimDuration,
    last_sweep: SimTime,
    expired: u64,
}

impl ThresholdRule {
    /// Creates the rule from its compiled clause.
    pub fn new(spec: ThresholdSpec) -> ThresholdRule {
        ThresholdRule {
            spec,
            exact: HashMap::new(),
            timeout: crate::rules::DEFAULT_STATE_TIMEOUT,
            last_sweep: SimTime::ZERO,
            expired: 0,
        }
    }

    /// The compiled clause, for fold-plane registration.
    pub fn spec(&self) -> &ThresholdSpec {
        &self.spec
    }

    /// Amortized reclamation of idle keys, mirroring
    /// [`crate::rules::SessionMap`]: at most once per quarter-timeout.
    fn maybe_sweep(&mut self, now: SimTime) {
        if now.saturating_since(self.last_sweep) < self.timeout / 4 {
            return;
        }
        self.last_sweep = now;
        let timeout = self.timeout;
        let before = self.exact.len();
        self.exact
            .retain(|_, (_, touched)| now.saturating_since(*touched) < timeout);
        self.expired += (before - self.exact.len()) as u64;
    }
}

impl Rule for ThresholdRule {
    fn id(&self) -> &str {
        self.spec.clause
    }

    fn description(&self) -> &str {
        "threshold clause over a sliding window"
    }

    fn is_cross_protocol(&self) -> bool {
        false
    }

    fn is_stateful(&self) -> bool {
        true
    }

    fn interests(&self) -> RuleInterest {
        RuleInterest::of(&[self.spec.class])
    }

    fn state_signature(&self) -> u64 {
        let spec = &self.spec;
        crate::rate::hash_parts(
            0x7472_6573_686f_6c64, // "treshold" tag: distinguishes rule kinds
            &[
                spec.clause.as_bytes(),
                spec.count_tracker.as_bytes(),
                spec.distinct_tracker.as_bytes(),
                spec.class.name().as_bytes(),
                spec.key_field.as_bytes(),
                spec.distinct_field.unwrap_or("").as_bytes(),
                &spec.window.as_micros().to_le_bytes(),
                &spec.count_threshold.to_le_bytes(),
                &spec.distinct_threshold.to_le_bytes(),
                &[spec.severity as u8],
                spec.template.as_bytes(),
            ],
        )
    }

    fn on_event(&mut self, ev: &Event, ctx: &RuleCtx<'_>, sink: &mut AlertSink<'_>) {
        if ev.class() != self.spec.class {
            return;
        }
        let Some(key_value) = ev.kind.field(self.spec.key_field) else {
            return;
        };
        let mut key_buf = KeyBuf::new();
        let key_text = field_text(&key_value, &mut key_buf);
        if key_text.is_empty() {
            return;
        }
        // Same seeded hash for every mode: the key field's text
        // identifies the window, the distinct field's text is the
        // distinct item. Cheap map keys in exact mode — no string
        // allocation on the per-event path.
        let key = ctx.rates.key(&[self.spec.clause.as_bytes(), key_text.as_bytes()]);
        let item = match self.spec.distinct_field {
            Some(field) => {
                let Some(item_value) = ev.kind.field(field) else {
                    return;
                };
                let mut item_buf = KeyBuf::new();
                let item_text = field_text(&item_value, &mut item_buf);
                ctx.rates.key(&[field.as_bytes(), item_text.as_bytes()])
            }
            None => 0,
        };
        let spec = self.spec;
        if ctx.rates.aggregated() {
            // Fold-plane mode (sharded pipeline, exact or sketch):
            // observe — feeding the plain-update delta twins — and admit
            // the key as a fold candidate once the local slice could be
            // a 1/shards share of a global crossing. The conservative
            // local estimate never undercounts this shard's true slice,
            // and a global crossing forces *some* shard's slice to at
            // least ⌈threshold/shards⌉, so every globally crossing key
            // is admitted at every shard count; sub-threshold admissions
            // just fail the identical global clause. The threshold
            // itself and the fired latch belong to the global plane.
            let count = ctx
                .rates
                .observe_count(spec.count_tracker, spec.window, ev.time, key);
            if spec.distinct_field.is_some() {
                ctx.rates
                    .observe_distinct(spec.distinct_tracker, spec.window, ev.time, key, item);
            }
            let bar = spec.count_threshold.div_ceil(ctx.rates.fold_shards() as u32);
            if count >= bar {
                ctx.rates
                    .push_candidate(spec.clause, key, ev.time, count, key_text);
            }
            return;
        }
        if ctx.rates.exact() {
            self.maybe_sweep(ev.time);
            let timeout = self.timeout;
            let entry = self
                .exact
                .entry(key)
                .or_insert_with(|| (ThresholdState::default(), ev.time));
            // Staleness-at-access, mirroring SessionMap::get_mut: an
            // entry idle past the timeout reads as absent.
            if ev.time.saturating_since(entry.1) >= timeout {
                self.expired += 1;
                *entry = (ThresholdState::default(), ev.time);
            }
            let (state, touched) = entry;
            *touched = ev.time;
            state.events.push_back((ev.time, item));
            while let Some(&(t, _)) = state.events.front() {
                if ev.time.saturating_since(t) > spec.window {
                    state.events.pop_front();
                } else {
                    break;
                }
            }
            let count = state.events.len() as u32;
            if !state.emitted
                && count >= spec.count_threshold
                && state.fans_out(if spec.distinct_field.is_some() {
                    spec.distinct_threshold
                } else {
                    0
                })
            {
                state.emitted = true;
                let distinct = state.distinct();
                sink.push(spec.alert_at(ev.time, ev.session.clone(), key_text, count, distinct));
            }
        } else {
            let count = ctx
                .rates
                .observe_count(spec.count_tracker, spec.window, ev.time, key);
            let distinct = if spec.distinct_field.is_some() {
                ctx.rates
                    .observe_distinct(spec.distinct_tracker, spec.window, ev.time, key, item)
            } else {
                0
            };
            if spec.clause_met(count, distinct) && !ctx.rates.latched(spec.clause, key) {
                ctx.rates.set_latch(spec.clause, key, true);
                sink.push(spec.alert_at(ev.time, ev.session.clone(), key_text, count, distinct));
            }
        }
    }

    fn set_state_timeout(&mut self, timeout: SimDuration) {
        self.timeout = timeout;
    }

    fn state_stats(&self) -> RuleStateStats {
        RuleStateStats {
            sessions: self.exact.len() as u64,
            expired: self.expired,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_deduplicates() {
        let a = intern("swap-test-tracker-a");
        let b = intern(&String::from("swap-test-tracker-a"));
        assert!(std::ptr::eq(a, b));
        assert_eq!(a, "swap-test-tracker-a");
    }

    #[test]
    fn template_rendering_substitutes_all_placeholders() {
        let spec = ThresholdSpec {
            clause: "t",
            count_tracker: "t-count",
            distinct_tracker: "t-distinct",
            class: EventClass::CallEstablished,
            key_field: "caller",
            distinct_field: Some("callee"),
            window: SimDuration::from_secs(60),
            count_threshold: 12,
            distinct_threshold: 8,
            severity: Severity::Critical,
            template: "{key} hit {count}/{distinct} in {window}s ({unknown} {open",
        };
        assert_eq!(
            spec.render("alice", 12, 9),
            "alice hit 12/9 in 60s ({unknown} {open"
        );
    }

    #[test]
    fn clause_met_ignores_distinct_without_a_distinct_field() {
        let spec = ThresholdSpec {
            clause: "t",
            count_tracker: "t-count",
            distinct_tracker: "t-distinct",
            class: EventClass::RegisterFlood,
            key_field: "src",
            distinct_field: None,
            window: SimDuration::from_secs(10),
            count_threshold: 3,
            distinct_threshold: 0,
            severity: Severity::Warning,
            template: "{key}",
        };
        assert!(spec.clause_met(3, 0));
        assert!(!spec.clause_met(2, 99));
    }

    #[test]
    fn key_buf_truncates_not_panics() {
        let mut buf = KeyBuf::new();
        let long = "x".repeat(100);
        let _ = write!(buf, "{long}");
        assert_eq!(buf.as_str().len(), 48);
    }
}
