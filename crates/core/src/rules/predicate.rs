//! Event-class predicate rules: `any-of` / `match` clause bodies.
//!
//! A [`PredicateRule`] is the compiled form of the DSL's `any-of` (and
//! its synonym `match`) clause: a list of [`ClassMatcher`]s, each an
//! event class plus zero or more field predicates over the payload
//! fields [`EventKind::field`] exposes. It subsumes the old bespoke
//! `AnyOfRule` (class-only matchers) while keeping its exact alert
//! shape: one alert per session per rule (or once globally for
//! session-less events), message `operator rule matched event <Class>`.
//!
//! The [`RuleInterest`] of a predicate rule is *derived*: exactly the
//! classes its matchers name. Field predicates can only narrow a
//! matcher, never widen it, so the derived interest set is sound by
//! construction — a class no matcher names can never match.

use crate::alert::{Alert, Severity};
use crate::event::{Event, EventClass, EventKind, FieldValue};
use crate::rules::{AlertSink, Rule, RuleCtx, RuleInterest, RuleStateStats, SessionMap};
use scidive_netsim::time::SimDuration;
use std::net::Ipv4Addr;

/// Comparison operator of a field predicate. Which operators are legal
/// against which field types is enforced by the DSL validator
/// (`contains` needs text, ordering needs numbers); at evaluation time
/// an ill-typed comparison is simply false.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `>=`
    Ge,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `<`
    Lt,
    /// Substring containment (text fields only).
    Contains,
}

impl CmpOp {
    /// The operator's surface syntax, for printing and diagnostics.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Ge => ">=",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Lt => "<",
            CmpOp::Contains => "contains",
        }
    }

    fn ordering_holds(self, ord: std::cmp::Ordering) -> bool {
        match self {
            CmpOp::Eq => ord.is_eq(),
            CmpOp::Ne => ord.is_ne(),
            CmpOp::Ge => ord.is_ge(),
            CmpOp::Le => ord.is_le(),
            CmpOp::Gt => ord.is_gt(),
            CmpOp::Lt => ord.is_lt(),
            CmpOp::Contains => false,
        }
    }
}

/// A literal a field is compared against.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PredValue {
    /// An integer literal.
    Int(i64),
    /// A quoted string literal (also matches IP-typed fields by
    /// parsing the string as an address).
    Str(String),
}

/// One field comparison, e.g. `delta >= 1000` or `caller contains "@lab"`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FieldPredicate {
    /// Field name, interned — one of [`EventKind::field_names`] for the
    /// matcher's class.
    pub field: &'static str,
    /// The comparison.
    pub op: CmpOp,
    /// The right-hand literal.
    pub value: PredValue,
}

impl FieldPredicate {
    /// Whether the predicate holds for the event payload. A field the
    /// payload does not carry (optional payloads, or a name unknown to
    /// this class) never matches — not even under `!=` — so predicates
    /// only ever narrow a matcher.
    fn matches(&self, kind: &EventKind) -> bool {
        let Some(actual) = kind.field(self.field) else {
            return false;
        };
        match (&actual, &self.value) {
            (FieldValue::Int(have), PredValue::Int(want)) => {
                self.op.ordering_holds(have.cmp(want))
            }
            (FieldValue::Str(have), PredValue::Str(want)) => match self.op {
                CmpOp::Contains => have.contains(want.as_str()),
                op => op.ordering_holds(have.cmp(&want.as_str())),
            },
            (FieldValue::Ip(have), PredValue::Str(want)) => want
                .parse::<Ipv4Addr>()
                .is_ok_and(|want| self.op.ordering_holds(have.cmp(&want))),
            _ => false,
        }
    }
}

/// An event class plus the predicates that must all hold for it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassMatcher {
    /// The event class this matcher accepts.
    pub class: EventClass,
    /// Conjunction of field predicates (empty = class alone matches).
    pub preds: Vec<FieldPredicate>,
}

impl ClassMatcher {
    fn matches(&self, ev: &Event) -> bool {
        ev.class() == self.class && self.preds.iter().all(|p| p.matches(&ev.kind))
    }
}

/// A single-shot rule matching any of its class matchers; fires once
/// per session per rule (once globally for session-less events).
#[derive(Debug)]
pub struct PredicateRule {
    id: String,
    matchers: Vec<ClassMatcher>,
    severity: Severity,
    fired: SessionMap<()>,
    global_fired: bool,
}

impl PredicateRule {
    /// Creates the rule. `matchers` must be non-empty (the DSL
    /// validator guarantees this; an empty rule would match nothing and
    /// derive an empty interest anyway).
    pub fn new(id: String, matchers: Vec<ClassMatcher>, severity: Severity) -> PredicateRule {
        PredicateRule {
            id,
            matchers,
            severity,
            fired: SessionMap::new(),
            global_fired: false,
        }
    }
}

impl Rule for PredicateRule {
    fn id(&self) -> &str {
        &self.id
    }

    fn description(&self) -> &str {
        "operator-defined any-of rule"
    }

    fn is_cross_protocol(&self) -> bool {
        true
    }

    fn is_stateful(&self) -> bool {
        false
    }

    fn interests(&self) -> RuleInterest {
        let classes: Vec<EventClass> = self.matchers.iter().map(|m| m.class).collect();
        RuleInterest::of(&classes)
    }

    fn state_signature(&self) -> u64 {
        let mut parts: Vec<Vec<u8>> = vec![self.id.as_bytes().to_vec(), vec![self.severity as u8]];
        for m in &self.matchers {
            parts.push(m.class.name().as_bytes().to_vec());
            for p in &m.preds {
                parts.push(p.field.as_bytes().to_vec());
                parts.push(p.op.symbol().as_bytes().to_vec());
                match &p.value {
                    PredValue::Int(i) => parts.push(i.to_le_bytes().to_vec()),
                    PredValue::Str(s) => parts.push(s.as_bytes().to_vec()),
                }
            }
        }
        let refs: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
        crate::rate::hash_parts(0x7072_6564_5f73_6967, &refs)
    }

    fn on_event(&mut self, ev: &Event, _ctx: &RuleCtx<'_>, sink: &mut AlertSink<'_>) {
        if !self.matchers.iter().any(|m| m.matches(ev)) {
            return;
        }
        match &ev.session {
            Some(session) => {
                if self.fired.get_mut(session, ev.time).is_some() {
                    return;
                }
                self.fired.insert(session.clone(), (), ev.time);
            }
            None => {
                if self.global_fired {
                    return;
                }
                self.global_fired = true;
            }
        }
        sink.push(Alert::new(
            self.id.clone(),
            self.severity,
            ev.time,
            ev.session.clone(),
            format!("operator rule matched event {}", ev.class().name()),
        ));
    }

    fn set_state_timeout(&mut self, timeout: SimDuration) {
        self.fired.set_timeout(timeout);
    }

    fn state_stats(&self) -> RuleStateStats {
        self.fired.state_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FlowKey;
    use crate::rules::collect_alerts;
    use crate::trail::{SessionKey, TrailStore, TrailStoreConfig};
    use scidive_netsim::time::SimTime;

    fn seq_violation(session: &str, delta: i32) -> Event {
        Event {
            time: SimTime::from_millis(1),
            session: Some(SessionKey::new(session)),
            kind: EventKind::RtpSeqViolation {
                flow: FlowKey {
                    src: Ipv4Addr::new(10, 0, 0, 3),
                    dst: Ipv4Addr::new(10, 0, 0, 2),
                    dst_port: 8000,
                },
                delta,
            },
        }
    }

    fn harness() -> (TrailStore, crate::rate::RateHub) {
        (
            TrailStore::new(TrailStoreConfig::default()),
            crate::rate::RateHub::default(),
        )
    }

    #[test]
    fn class_only_matcher_behaves_like_any_of() {
        let (store, rates) = harness();
        let ctx = RuleCtx {
            now: SimTime::from_millis(5),
            trails: &store,
            rates: &rates,
        };
        let mut rule = PredicateRule::new(
            "ops".to_string(),
            vec![ClassMatcher {
                class: EventClass::RtpSeqViolation,
                preds: vec![],
            }],
            Severity::Critical,
        );
        let ev = seq_violation("c1", 7000);
        assert_eq!(collect_alerts(&mut rule, &ev, &ctx).len(), 1);
        assert!(collect_alerts(&mut rule, &ev, &ctx).is_empty(), "per-session latch");
        assert_eq!(
            collect_alerts(&mut rule, &seq_violation("c2", 7000), &ctx).len(),
            1
        );
    }

    #[test]
    fn field_predicates_narrow_the_match() {
        let (store, rates) = harness();
        let ctx = RuleCtx {
            now: SimTime::from_millis(5),
            trails: &store,
            rates: &rates,
        };
        let mut rule = PredicateRule::new(
            "big-jump".to_string(),
            vec![ClassMatcher {
                class: EventClass::RtpSeqViolation,
                preds: vec![
                    FieldPredicate {
                        field: "delta",
                        op: CmpOp::Ge,
                        value: PredValue::Int(5000),
                    },
                    FieldPredicate {
                        field: "flow.src",
                        op: CmpOp::Eq,
                        value: PredValue::Str("10.0.0.3".to_string()),
                    },
                ],
            }],
            Severity::Critical,
        );
        assert!(collect_alerts(&mut rule, &seq_violation("c1", 100), &ctx).is_empty());
        assert_eq!(collect_alerts(&mut rule, &seq_violation("c2", 7000), &ctx).len(), 1);
    }

    #[test]
    fn missing_field_never_matches_even_under_ne() {
        let pred = FieldPredicate {
            field: "by_media_ip",
            op: CmpOp::Ne,
            value: PredValue::Str("10.0.0.9".to_string()),
        };
        let torn = EventKind::CallTornDown {
            by_aor: "bob@lab".to_string(),
            by_media_ip: None,
        };
        assert!(!pred.matches(&torn));
    }

    #[test]
    fn interests_derive_from_matcher_classes() {
        let rule = PredicateRule::new(
            "ops".to_string(),
            vec![
                ClassMatcher {
                    class: EventClass::RtpSeqViolation,
                    preds: vec![],
                },
                ClassMatcher {
                    class: EventClass::MediaPortGarbage,
                    preds: vec![],
                },
            ],
            Severity::Warning,
        );
        let i = rule.interests();
        assert!(i.contains(EventClass::RtpSeqViolation));
        assert!(i.contains(EventClass::MediaPortGarbage));
        assert!(!i.contains(EventClass::CallTornDown));
        assert!(!i.is_all());
    }

    #[test]
    fn signature_tracks_construction_params() {
        let mk = |sev| {
            PredicateRule::new(
                "ops".to_string(),
                vec![ClassMatcher {
                    class: EventClass::RtpSeqViolation,
                    preds: vec![],
                }],
                sev,
            )
        };
        assert_eq!(
            mk(Severity::Critical).state_signature(),
            mk(Severity::Critical).state_signature()
        );
        assert_ne!(
            mk(Severity::Critical).state_signature(),
            mk(Severity::Warning).state_signature()
        );
    }
}
