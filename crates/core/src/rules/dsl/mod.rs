//! The operator rule DSL: text programs compiled to runtime rules.
//!
//! The paper positions SCIDIVE as configurable — it "can, without
//! substantial system customization, be extended for detecting new
//! classes of attacks", with accuracy "a function of the input rule
//! base". This module is that rule base as *compiled artifacts*: a
//! small declarative language (in the lineage of SecSip's stateful SIP
//! protection specifications) whose programs lower onto the exact same
//! runtime structs the built-in rules use, so declaring a rule and
//! hand-writing it are indistinguishable at runtime.
//!
//! ```text
//! # Teardown followed by orphan media within half a second.
//! rule ops-bye severity critical window 500ms {
//!     sequence CallTornDown, OrphanRtpAfterBye
//! }
//!
//! # Field predicates narrow a match (any-of / match clauses only).
//! rule big-jump severity warning {
//!     any-of RtpSeqViolation(delta >= 5000)
//! }
//!
//! # Caller-keyed fan-out threshold, evaluated globally under sharding.
//! rule spit severity critical {
//!     threshold CallEstablished by caller count >= 12
//!         distinct callee >= 8 within 60s
//!         emit "caller {key}: {count} calls, {distinct} callees in {window}s"
//! }
//! ```
//!
//! Pipeline: [`lexer`] → [`parser`] (spanned AST) → [`validator`]
//! (class/field/type resolution, bounds, warnings) → [`compiler`]
//! (lowering). [`Program::parse`] runs the first three; a validated
//! program compiles infallibly. Each rule's [`crate::rules::RuleInterest`]
//! is *derived* from the classes its clause names — never declared —
//! so compiled dispatch stays sound by construction.

pub mod ast;
mod compiler;
mod lexer;
mod parser;
mod printer;
mod validator;

pub use ast::Program;
pub use compiler::{compile_program, threshold_specs};
pub use printer::print_program;

use crate::alert::Severity;
use scidive_netsim::time::SimDuration;
use std::fmt;

/// A compile-time error or warning, anchored to the operator's source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
    /// Length of the offending region in characters.
    pub len: usize,
    /// What is wrong.
    pub message: String,
    /// How to fix it, when there is a concrete suggestion.
    pub hint: Option<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, col {}: {}", self.line, self.col, self.message)?;
        if let Some(hint) = &self.hint {
            write!(f, " (hint: {hint})")?;
        }
        Ok(())
    }
}

impl std::error::Error for Diagnostic {}

impl Diagnostic {
    /// Renders the diagnostic with a caret line against `src`, the way
    /// a compiler would:
    ///
    /// ```text
    /// error: unknown event class `NotAClass`
    ///  --> line 2
    ///   |     sequence NotAClass
    ///   |              ^^^^^^^^^
    ///   = hint: one of: CallEstablished, ...
    /// ```
    pub fn render(&self, src: &str) -> String {
        let mut out = format!("error: {}\n --> line {}\n", self.message, self.line);
        if let Some(line) = src.lines().nth(self.line.saturating_sub(1)) {
            out.push_str("  | ");
            out.push_str(line);
            out.push_str("\n  | ");
            for _ in 1..self.col {
                out.push(' ');
            }
            for _ in 0..self.len.max(1) {
                out.push('^');
            }
            out.push('\n');
        }
        if let Some(hint) = &self.hint {
            out.push_str("  = hint: ");
            out.push_str(hint);
            out.push('\n');
        }
        out
    }
}

pub(crate) fn parse_severity(word: &str) -> Option<Severity> {
    match word.to_ascii_lowercase().as_str() {
        "info" => Some(Severity::Info),
        "warning" | "warn" => Some(Severity::Warning),
        "critical" | "crit" => Some(Severity::Critical),
        _ => None,
    }
}

pub(crate) fn severity_name(severity: Severity) -> &'static str {
    match severity {
        Severity::Info => "info",
        Severity::Warning => "warning",
        Severity::Critical => "critical",
    }
}

pub(crate) fn parse_duration(word: &str) -> Option<SimDuration> {
    if let Some(ms) = word.strip_suffix("ms") {
        return ms.parse::<u64>().ok().map(SimDuration::from_millis);
    }
    if let Some(s) = word.strip_suffix('s') {
        return s.parse::<u64>().ok().map(SimDuration::from_secs);
    }
    None
}

pub(crate) fn duration_text(d: SimDuration) -> String {
    let micros = d.as_micros();
    if micros.is_multiple_of(1_000_000) {
        format!("{}s", micros / 1_000_000)
    } else {
        format!("{}ms", micros / 1_000)
    }
}

impl Program {
    /// Parses and validates a program, dropping any warnings. The first
    /// error (lexical, syntactic, or semantic) aborts with its
    /// [`Diagnostic`].
    ///
    /// # Errors
    ///
    /// Returns the first [`Diagnostic`] the pipeline produces.
    pub fn parse(src: &str) -> Result<Program, Diagnostic> {
        Program::check(src).map(|(p, _)| p)
    }

    /// Parses and validates a program, returning the validator's
    /// warnings alongside it (for `--deny-warnings` tooling).
    ///
    /// # Errors
    ///
    /// Returns the first [`Diagnostic`] the pipeline produces.
    pub fn check(src: &str) -> Result<(Program, Vec<Diagnostic>), Diagnostic> {
        let program = parser::parse(src)?;
        let warnings = validator::validate(&program)?;
        Ok((program, warnings))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventClass;

    #[test]
    fn parses_validates_and_compiles_every_clause_kind() {
        let src = r#"
rule ops-seq severity critical window 500ms {
    sequence CallTornDown, OrphanRtpAfterBye
}
rule ops-combo severity warning window 2s {
    all-of SipMalformed, AcctMismatch
}
rule ops-any {
    any-of RtpSeqViolation(delta >= 5000), MediaPortGarbage
}
rule ops-spit {
    threshold CallEstablished by caller count >= 12 distinct callee >= 8 within 60s
}
"#;
        let (program, warnings) = Program::check(src).unwrap();
        assert!(warnings.is_empty(), "{warnings:?}");
        let rules = compile_program(&program);
        assert_eq!(rules.len(), 4);
        assert_eq!(rules[0].id(), "ops-seq");
        assert_eq!(rules[3].id(), "ops-spit");
        assert!(rules[2].interests().contains(EventClass::RtpSeqViolation));
        assert!(!rules[2].interests().contains(EventClass::CallTornDown));
        let specs = threshold_specs(&program);
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].clause, "ops-spit");
        assert_eq!(specs[0].count_tracker, "ops-spit-count");
    }

    #[test]
    fn print_is_a_fixed_point_over_reparse() {
        let src = "rule a severity warning { any-of SipMalformed }\n\
                   rule b { sequence CallTornDown, OrphanRtpAfterBye }\n";
        let p1 = Program::parse(src).unwrap();
        let s1 = print_program(&p1);
        let p2 = Program::parse(&s1).unwrap();
        let s2 = print_program(&p2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn dsl_rapid_connect_twin_compiles_to_the_builtin_spec() {
        let src = r#"
rule rapid-connect severity critical {
    threshold CallEstablished by caller count >= 12 distinct callee >= 8 within 60s
        emit "rapid connections: caller {key} established {count} calls to {distinct} distinct callees within {window}s"
}
"#;
        let program = Program::parse(src).unwrap();
        let specs = threshold_specs(&program);
        assert_eq!(specs, vec![crate::rules::builtin::rapid_spec()]);
    }

    #[test]
    fn render_carets_the_offending_token() {
        let src = "rule broken {\n    sequence NotAClass\n}\n";
        let err = Program::parse(src).unwrap_err();
        let rendered = err.render(src);
        assert!(rendered.contains("NotAClass"));
        assert!(rendered.contains("^^^^^^^^^"));
    }
}
