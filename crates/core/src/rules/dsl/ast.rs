//! Abstract syntax of the rule DSL.
//!
//! The AST keeps the *surface* form — class and field names as spanned
//! strings, not resolved enums — so diagnostics can point at the
//! operator's source and so `parse → print → parse` is a fixed point.
//! Resolution to [`crate::event::EventClass`] / field accessors happens
//! in the validator (which proves it can't fail) and again, infallibly,
//! in the compiler.

use crate::alert::Severity;
use scidive_netsim::time::SimDuration;

/// A half-open source location: 1-based line and column plus length in
/// characters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
    /// Length in characters.
    pub len: usize,
}

/// A node plus where it came from. Equality ignores the span — two
/// programs that differ only in layout compare equal, which is what the
/// round-trip property tests rely on.
#[derive(Debug, Clone)]
pub struct Spanned<T> {
    /// The node.
    pub node: T,
    /// Its source location.
    pub span: Span,
}

impl<T: PartialEq> PartialEq for Spanned<T> {
    fn eq(&self, other: &Spanned<T>) -> bool {
        self.node == other.node
    }
}

impl<T: Eq> Eq for Spanned<T> {}

/// A parsed rule program: zero or more rule declarations.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// The declarations, in source order (which is install order).
    pub rules: Vec<RuleDecl>,
}

/// One `rule <id> ... { <clause> }` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleDecl {
    /// The rule identifier.
    pub id: Spanned<String>,
    /// Explicit `severity` header, if any (defaults to critical).
    pub severity: Option<Spanned<Severity>>,
    /// Explicit `window` header, if any (defaults to 60s; only
    /// sequence / all-of clauses consult it).
    pub window: Option<Spanned<SimDuration>>,
    /// The single clause in the body.
    pub clause: Clause,
}

/// The body of a rule: exactly one clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Clause {
    /// `sequence A, B, ...` — the classes in order, within the window.
    Sequence(Vec<ClassSpec>),
    /// `all-of A, B, ...` — the classes in any order, within the window.
    AllOf(Vec<ClassSpec>),
    /// `any-of A(p, ...), B, ...` (synonym `match`) — first match fires.
    AnyOf(Vec<ClassSpec>),
    /// `threshold Class by field count >= N [distinct field >= M]
    /// within DUR [emit "..."]`. Boxed: the clause dwarfs the other
    /// variants.
    Threshold(Box<ThresholdClause>),
}

/// An event class, optionally narrowed by field predicates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassSpec {
    /// The class name as written.
    pub class: Spanned<String>,
    /// Conjunction of field predicates (only legal under `any-of`).
    pub preds: Vec<PredicateAst>,
}

/// One `field op value` comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredicateAst {
    /// The field name as written.
    pub field: Spanned<String>,
    /// The comparison operator.
    pub op: Spanned<crate::rules::predicate::CmpOp>,
    /// The right-hand literal.
    pub value: Spanned<ValueAst>,
}

/// A literal on the right of a comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValueAst {
    /// An integer.
    Int(i64),
    /// A quoted string.
    Str(String),
}

/// A `threshold` clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThresholdClause {
    /// The event class the threshold counts.
    pub class: Spanned<String>,
    /// The field whose value keys the sliding window (`by <field>`).
    pub key_field: Spanned<String>,
    /// `count >= N`.
    pub count_threshold: Spanned<u32>,
    /// `distinct <field> >= M`, if present.
    pub distinct: Option<(Spanned<String>, Spanned<u32>)>,
    /// `within <duration>` — the sliding window.
    pub within: Spanned<SimDuration>,
    /// `emit "<template>"` — alert message template with `{key}`,
    /// `{count}`, `{distinct}`, `{window}` placeholders.
    pub emit: Option<Spanned<String>>,
}
