//! Tokenizer for the rule DSL.
//!
//! Newline-insensitive: layout never carries meaning, only tokens do
//! (which is what lets the same grammar accept both the historical
//! line-oriented spec format and freer layouts). Every token carries a
//! [`Span`] so later stages report errors against the operator's
//! source, not against a token index.

use super::ast::Span;
use super::Diagnostic;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifiers, keywords, class names, numbers, durations — any run
    /// of word characters (`[A-Za-z0-9_.@-]`).
    Word(String),
    /// A double-quoted string literal (no escape sequences).
    Str(String),
    /// `==` `!=` `>=` `<=` `>` `<` — comparison operators. The textual
    /// `contains` operator lexes as a [`Tok::Word`].
    Op(&'static str),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
}

/// A token plus where it came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Its source location.
    pub span: Span,
}

fn is_word_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '@' | '-')
}

/// Tokenizes `src`. `#` starts a comment running to end of line.
pub fn lex(src: &str) -> Result<Vec<Token>, Diagnostic> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut col = 1usize;
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c == '\n' {
            chars.next();
            line += 1;
            col = 1;
            continue;
        }
        if c.is_whitespace() {
            chars.next();
            col += 1;
            continue;
        }
        if c == '#' {
            while let Some(&c) = chars.peek() {
                if c == '\n' {
                    break;
                }
                chars.next();
                col += 1;
            }
            continue;
        }
        let start_col = col;
        if c == '"' {
            chars.next();
            col += 1;
            let mut s = String::new();
            loop {
                match chars.peek() {
                    Some('"') => {
                        chars.next();
                        col += 1;
                        break;
                    }
                    Some('\n') | None => {
                        return Err(Diagnostic {
                            line,
                            col: start_col,
                            len: col - start_col,
                            message: "string literal is not closed".to_string(),
                            hint: Some("close it with `\"` on the same line".to_string()),
                        });
                    }
                    Some(&c) => {
                        s.push(c);
                        chars.next();
                        col += 1;
                    }
                }
            }
            out.push(Token {
                tok: Tok::Str(s),
                span: Span {
                    line,
                    col: start_col,
                    len: col - start_col,
                },
            });
            continue;
        }
        if let Some(tok) = match c {
            '{' => Some(Tok::LBrace),
            '}' => Some(Tok::RBrace),
            '(' => Some(Tok::LParen),
            ')' => Some(Tok::RParen),
            ',' => Some(Tok::Comma),
            _ => None,
        } {
            chars.next();
            col += 1;
            out.push(Token {
                tok,
                span: Span {
                    line,
                    col: start_col,
                    len: 1,
                },
            });
            continue;
        }
        if matches!(c, '=' | '!' | '>' | '<') {
            chars.next();
            col += 1;
            let two = chars.peek() == Some(&'=');
            let op = match (c, two) {
                ('=', true) => Some("=="),
                ('!', true) => Some("!="),
                ('>', true) => Some(">="),
                ('<', true) => Some("<="),
                ('>', false) => Some(">"),
                ('<', false) => Some("<"),
                _ => None,
            };
            let Some(op) = op else {
                return Err(Diagnostic {
                    line,
                    col: start_col,
                    len: 1,
                    message: format!("unexpected character `{c}`"),
                    hint: Some("comparison operators are == != >= <= > <".to_string()),
                });
            };
            if op.len() == 2 {
                chars.next();
                col += 1;
            }
            out.push(Token {
                tok: Tok::Op(op),
                span: Span {
                    line,
                    col: start_col,
                    len: op.len(),
                },
            });
            continue;
        }
        if is_word_char(c) {
            let mut w = String::new();
            while let Some(&c) = chars.peek() {
                if !is_word_char(c) {
                    break;
                }
                w.push(c);
                chars.next();
                col += 1;
            }
            out.push(Token {
                tok: Tok::Word(w),
                span: Span {
                    line,
                    col: start_col,
                    len: col - start_col,
                },
            });
            continue;
        }
        return Err(Diagnostic {
            line,
            col: start_col,
            len: 1,
            message: format!("unexpected character `{c}`"),
            hint: None,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_ops_and_punctuation() {
        let toks = lex("rule a-b { delta >= -10, x == \"hi\" }").unwrap();
        let kinds: Vec<Tok> = toks.into_iter().map(|t| t.tok).collect();
        assert_eq!(
            kinds,
            vec![
                Tok::Word("rule".into()),
                Tok::Word("a-b".into()),
                Tok::LBrace,
                Tok::Word("delta".into()),
                Tok::Op(">="),
                Tok::Word("-10".into()),
                Tok::Comma,
                Tok::Word("x".into()),
                Tok::Op("=="),
                Tok::Str("hi".into()),
                Tok::RBrace,
            ]
        );
    }

    #[test]
    fn spans_are_one_based_and_comments_skip() {
        let toks = lex("# comment\nrule x\n").unwrap();
        assert_eq!(toks[0].span, Span { line: 2, col: 1, len: 4 });
        assert_eq!(toks[1].span, Span { line: 2, col: 6, len: 1 });
    }

    #[test]
    fn unterminated_string_is_diagnosed() {
        let err = lex("emit \"oops\n").unwrap_err();
        assert!(err.message.contains("not closed"));
        assert_eq!(err.line, 1);
        assert_eq!(err.col, 6);
    }
}
