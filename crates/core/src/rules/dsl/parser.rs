//! Recursive-descent parser for the rule DSL.
//!
//! Produces the surface [`Program`] AST; every name stays a string with
//! a span. Anything that needs the event-class schema (class and field
//! resolution, operator typing, threshold bounds) is the validator's
//! job — the parser only knows the shape of the language.

use super::ast::{
    ClassSpec, Clause, PredicateAst, Program, RuleDecl, Span, Spanned, ThresholdClause, ValueAst,
};
use super::lexer::{lex, Tok, Token};
use super::{parse_duration, parse_severity, Diagnostic};
use crate::rules::predicate::CmpOp;

struct Cursor {
    toks: Vec<Token>,
    pos: usize,
    /// Span to blame when the input ends unexpectedly.
    end: Span,
}

impl Cursor {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn peek_word(&self) -> Option<&str> {
        match self.peek() {
            Some(Token {
                tok: Tok::Word(w), ..
            }) => Some(w.as_str()),
            _ => None,
        }
    }

    /// Next token inside rule `id`'s block; running out of input here
    /// means the block is unterminated.
    fn want(&mut self, id: &str) -> Result<Token, Diagnostic> {
        self.next().ok_or_else(|| Diagnostic {
            line: self.end.line,
            col: self.end.col,
            len: self.end.len,
            message: format!("rule `{id}` is not closed with `}}`"),
            hint: None,
        })
    }

    fn want_word(&mut self, id: &str, what: &str) -> Result<Spanned<String>, Diagnostic> {
        let t = self.want(id)?;
        match t.tok {
            Tok::Word(w) => Ok(Spanned { node: w, span: t.span }),
            _ => Err(diag(t.span, format!("expected {what}"), None)),
        }
    }
}

fn diag(span: Span, message: String, hint: Option<String>) -> Diagnostic {
    Diagnostic {
        line: span.line,
        col: span.col,
        len: span.len,
        message,
        hint,
    }
}

/// Parses source text into a [`Program`] (syntax only; run the
/// validator before compiling).
pub fn parse(src: &str) -> Result<Program, Diagnostic> {
    let toks = lex(src)?;
    let end = toks.last().map_or(
        Span { line: 1, col: 1, len: 1 },
        |t| Span {
            line: t.span.line,
            col: t.span.col + t.span.len,
            len: 1,
        },
    );
    let mut cur = Cursor { toks, pos: 0, end };
    let mut rules = Vec::new();
    while let Some(t) = cur.next() {
        match &t.tok {
            Tok::Word(w) if w == "rule" => rules.push(parse_rule(&mut cur)?),
            _ => {
                return Err(diag(
                    t.span,
                    "expected `rule <id> [severity <s>] [window <dur>] {`".to_string(),
                    None,
                ));
            }
        }
    }
    Ok(Program { rules })
}

fn parse_rule(cur: &mut Cursor) -> Result<RuleDecl, Diagnostic> {
    let id = match cur.next() {
        Some(Token {
            tok: Tok::Word(w),
            span,
        }) => Spanned { node: w, span },
        Some(t) => return Err(diag(t.span, "missing rule id".to_string(), None)),
        None => {
            return Err(diag(cur.end, "missing rule id".to_string(), None));
        }
    };
    let mut severity = None;
    let mut window = None;
    loop {
        match cur.peek() {
            Some(Token {
                tok: Tok::LBrace, ..
            }) => {
                cur.next();
                break;
            }
            Some(Token {
                tok: Tok::Word(w), ..
            }) if w == "severity" => {
                cur.next();
                let v = value_word(cur, &id.node, "severity")?;
                let sev = parse_severity(&v.node).ok_or_else(|| {
                    diag(
                        v.span,
                        format!("unknown severity `{}`", v.node),
                        Some("info | warning | critical".to_string()),
                    )
                })?;
                severity = Some(Spanned { node: sev, span: v.span });
            }
            Some(Token {
                tok: Tok::Word(w), ..
            }) if w == "window" => {
                cur.next();
                let v = value_word(cur, &id.node, "window")?;
                let dur = parse_duration(&v.node).ok_or_else(|| {
                    diag(
                        v.span,
                        format!("bad duration `{}`", v.node),
                        Some("use e.g. 500ms, 2s".to_string()),
                    )
                })?;
                window = Some(Spanned { node: dur, span: v.span });
            }
            Some(t) => {
                let shown = match &t.tok {
                    Tok::Word(w) => format!("unknown header key `{w}`"),
                    _ => "expected `{` to open the rule body".to_string(),
                };
                return Err(diag(t.span, shown, Some("severity | window".to_string())));
            }
            None => {
                return Err(diag(
                    cur.end,
                    format!("rule `{}` is not closed with `}}`", id.node),
                    None,
                ));
            }
        }
    }
    let clause = parse_clause(cur, &id.node)?;
    let close = cur.want(&id.node)?;
    if close.tok != Tok::RBrace {
        return Err(diag(
            close.span,
            "expected `}` (one clause per rule)".to_string(),
            None,
        ));
    }
    Ok(RuleDecl {
        id,
        severity,
        window,
        clause,
    })
}

/// The value word after a header key (`severity critical`, `window 2s`).
fn value_word(cur: &mut Cursor, id: &str, key: &str) -> Result<Spanned<String>, Diagnostic> {
    match cur.next() {
        Some(Token {
            tok: Tok::Word(w),
            span,
        }) => Ok(Spanned { node: w, span }),
        Some(t) => Err(diag(t.span, format!("`{key}` needs a value"), None)),
        None => Err(diag(
            cur.end,
            format!("rule `{id}` is not closed with `}}` (`{key}` needs a value)"),
            None,
        )),
    }
}

fn parse_clause(cur: &mut Cursor, id: &str) -> Result<Clause, Diagnostic> {
    let t = cur.want(id)?;
    let (kind, kind_span) = match &t.tok {
        Tok::RBrace => {
            return Err(diag(t.span, "rule body is empty".to_string(), None));
        }
        Tok::Word(w) => (w.clone(), t.span),
        _ => {
            return Err(diag(
                t.span,
                "expected a clause keyword".to_string(),
                Some("sequence | all-of | any-of | threshold".to_string()),
            ));
        }
    };
    match kind.as_str() {
        "sequence" => Ok(Clause::Sequence(parse_class_list(cur, id)?)),
        "all-of" => Ok(Clause::AllOf(parse_class_list(cur, id)?)),
        "any-of" | "match" => Ok(Clause::AnyOf(parse_class_list(cur, id)?)),
        "threshold" => Ok(Clause::Threshold(Box::new(parse_threshold(cur, id)?))),
        other => Err(diag(
            kind_span,
            format!("unknown body kind `{other}`"),
            Some("sequence | all-of | any-of | threshold".to_string()),
        )),
    }
}

fn parse_class_list(cur: &mut Cursor, id: &str) -> Result<Vec<ClassSpec>, Diagnostic> {
    let mut specs = Vec::new();
    loop {
        if specs.is_empty() {
            if let Some(Token {
                tok: Tok::RBrace,
                span,
            }) = cur.peek()
            {
                return Err(diag(*span, "no event classes listed".to_string(), None));
            }
        }
        let class = cur.want_word(id, "an event class name")?;
        let mut preds = Vec::new();
        if matches!(cur.peek(), Some(Token { tok: Tok::LParen, .. })) {
            cur.next();
            loop {
                preds.push(parse_predicate(cur, id)?);
                match cur.want(id)? {
                    Token { tok: Tok::Comma, .. } => continue,
                    Token { tok: Tok::RParen, .. } => break,
                    t => {
                        return Err(diag(
                            t.span,
                            "expected `,` or `)` after a predicate".to_string(),
                            None,
                        ));
                    }
                }
            }
        }
        specs.push(ClassSpec { class, preds });
        if matches!(cur.peek(), Some(Token { tok: Tok::Comma, .. })) {
            cur.next();
            continue;
        }
        return Ok(specs);
    }
}

fn parse_predicate(cur: &mut Cursor, id: &str) -> Result<PredicateAst, Diagnostic> {
    let field = cur.want_word(id, "a field name")?;
    let op = parse_op(cur, id)?;
    let value = match cur.want(id)? {
        Token {
            tok: Tok::Word(w),
            span,
        } => {
            let n = w.parse::<i64>().map_err(|_| {
                diag(
                    span,
                    format!("expected a number or quoted string, got `{w}`"),
                    Some("quote text values: caller == \"alice@lab\"".to_string()),
                )
            })?;
            Spanned {
                node: ValueAst::Int(n),
                span,
            }
        }
        Token {
            tok: Tok::Str(s),
            span,
        } => Spanned {
            node: ValueAst::Str(s),
            span,
        },
        t => {
            return Err(diag(
                t.span,
                "expected a number or quoted string".to_string(),
                None,
            ));
        }
    };
    Ok(PredicateAst { field, op, value })
}

fn parse_op(cur: &mut Cursor, id: &str) -> Result<Spanned<CmpOp>, Diagnostic> {
    let t = cur.want(id)?;
    let op = match &t.tok {
        Tok::Op("==") => Some(CmpOp::Eq),
        Tok::Op("!=") => Some(CmpOp::Ne),
        Tok::Op(">=") => Some(CmpOp::Ge),
        Tok::Op("<=") => Some(CmpOp::Le),
        Tok::Op(">") => Some(CmpOp::Gt),
        Tok::Op("<") => Some(CmpOp::Lt),
        Tok::Word(w) if w == "contains" => Some(CmpOp::Contains),
        _ => None,
    };
    op.map(|node| Spanned { node, span: t.span }).ok_or_else(|| {
        diag(
            t.span,
            "expected a comparison operator".to_string(),
            Some("== != >= <= > < contains".to_string()),
        )
    })
}

/// `threshold Class by field count >= N [distinct field >= M] within DUR
/// [emit "..."]`.
fn parse_threshold(cur: &mut Cursor, id: &str) -> Result<ThresholdClause, Diagnostic> {
    let class = cur.want_word(id, "an event class name")?;
    expect_keyword(cur, id, "by")?;
    let key_field = cur.want_word(id, "a field name")?;
    expect_keyword(cur, id, "count")?;
    expect_ge(cur, id)?;
    let count_threshold = parse_count(cur, id)?;
    let mut distinct = None;
    if cur.peek_word() == Some("distinct") {
        cur.next();
        let field = cur.want_word(id, "a field name")?;
        expect_ge(cur, id)?;
        let n = parse_count(cur, id)?;
        distinct = Some((field, n));
    }
    expect_keyword(cur, id, "within")?;
    let w = cur.want_word(id, "a duration")?;
    let within = parse_duration(&w.node)
        .map(|dur| Spanned { node: dur, span: w.span })
        .ok_or_else(|| {
            diag(
                w.span,
                format!("bad duration `{}`", w.node),
                Some("use e.g. 500ms, 2s".to_string()),
            )
        })?;
    let mut emit = None;
    if cur.peek_word() == Some("emit") {
        cur.next();
        match cur.want(id)? {
            Token {
                tok: Tok::Str(s),
                span,
            } => emit = Some(Spanned { node: s, span }),
            t => {
                return Err(diag(
                    t.span,
                    "`emit` needs a quoted template".to_string(),
                    Some("emit \"caller {key} crossed {count} in {window}s\"".to_string()),
                ));
            }
        }
    }
    Ok(ThresholdClause {
        class,
        key_field,
        count_threshold,
        distinct,
        within,
        emit,
    })
}

fn expect_keyword(cur: &mut Cursor, id: &str, kw: &str) -> Result<(), Diagnostic> {
    let t = cur.want(id)?;
    match &t.tok {
        Tok::Word(w) if w == kw => Ok(()),
        _ => Err(diag(
            t.span,
            format!("expected `{kw}`"),
            Some(
                "threshold <Class> by <field> count >= <N> [distinct <field> >= <M>] \
                 within <dur> [emit \"...\"]"
                    .to_string(),
            ),
        )),
    }
}

fn expect_ge(cur: &mut Cursor, id: &str) -> Result<(), Diagnostic> {
    let t = cur.want(id)?;
    match t.tok {
        Tok::Op(">=") => Ok(()),
        _ => Err(diag(
            t.span,
            "threshold comparisons use `>=`".to_string(),
            None,
        )),
    }
}

fn parse_count(cur: &mut Cursor, id: &str) -> Result<Spanned<u32>, Diagnostic> {
    let w = cur.want_word(id, "a number")?;
    let n = w
        .node
        .parse::<u32>()
        .map_err(|_| diag(w.span, format!("expected a number, got `{}`", w.node), None))?;
    Ok(Spanned { node: n, span: w.span })
}
