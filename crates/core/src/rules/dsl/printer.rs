//! Canonical printer for [`Program`]s.
//!
//! Prints a normal form: one rule per block, four-space indent, explicit
//! `severity` always, `window` only where a clause consults it. The
//! normal form is a fixed point — `parse(print(p))` equals `p` up to
//! spans and elided defaults, and `print(parse(print(p))) == print(p)`
//! exactly, which the property tests pin.

use super::ast::{ClassSpec, Clause, Program, RuleDecl, ThresholdClause, ValueAst};
use super::{duration_text, severity_name};

fn class_spec(out: &mut String, spec: &ClassSpec) {
    out.push_str(&spec.class.node);
    if spec.preds.is_empty() {
        return;
    }
    out.push('(');
    for (i, p) in spec.preds.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&p.field.node);
        out.push(' ');
        out.push_str(p.op.node.symbol());
        out.push(' ');
        match &p.value.node {
            ValueAst::Int(n) => out.push_str(&n.to_string()),
            ValueAst::Str(s) => {
                out.push('"');
                out.push_str(s);
                out.push('"');
            }
        }
    }
    out.push(')');
}

fn class_list(out: &mut String, specs: &[ClassSpec]) {
    for (i, spec) in specs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        class_spec(out, spec);
    }
}

fn threshold(out: &mut String, t: &ThresholdClause) {
    out.push_str("threshold ");
    out.push_str(&t.class.node);
    out.push_str(" by ");
    out.push_str(&t.key_field.node);
    out.push_str(&format!(" count >= {}", t.count_threshold.node));
    if let Some((field, n)) = &t.distinct {
        out.push_str(&format!(" distinct {} >= {}", field.node, n.node));
    }
    out.push_str(" within ");
    out.push_str(&duration_text(t.within.node));
    if let Some(emit) = &t.emit {
        out.push_str(" emit \"");
        out.push_str(&emit.node);
        out.push('"');
    }
}

fn rule(out: &mut String, r: &RuleDecl) {
    out.push_str("rule ");
    out.push_str(&r.id.node);
    out.push_str(" severity ");
    out.push_str(severity_name(
        r.severity
            .as_ref()
            .map_or(crate::alert::Severity::Critical, |s| s.node),
    ));
    // `window` only means something to sequence / all-of clauses; the
    // validator warns on it elsewhere, so the normal form elides it.
    if matches!(r.clause, Clause::Sequence(_) | Clause::AllOf(_)) {
        out.push_str(" window ");
        out.push_str(&duration_text(r.window.as_ref().map_or(
            scidive_netsim::time::SimDuration::from_secs(60),
            |w| w.node,
        )));
    }
    out.push_str(" {\n    ");
    match &r.clause {
        Clause::Sequence(specs) => {
            out.push_str("sequence ");
            class_list(out, specs);
        }
        Clause::AllOf(specs) => {
            out.push_str("all-of ");
            class_list(out, specs);
        }
        Clause::AnyOf(specs) => {
            out.push_str("any-of ");
            class_list(out, specs);
        }
        Clause::Threshold(t) => threshold(out, t),
    }
    out.push_str("\n}\n");
}

/// Prints the canonical form of `program`.
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    for (i, r) in program.rules.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        rule(&mut out, r);
    }
    out
}
