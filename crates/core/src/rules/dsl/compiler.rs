//! Lowering a validated [`Program`] onto the runtime rule types.
//!
//! Each clause compiles to the *same* struct its hand-written twin
//! uses — `sequence` to [`SequenceRule`], `all-of` to
//! [`CombinationRule`], `any-of` to [`PredicateRule`], `threshold` to
//! [`ThresholdRule`] — so a DSL rule and a Rust rule built with the
//! same parameters are indistinguishable at runtime: same alert bytes,
//! same derived [`crate::rules::RuleInterest`], same state signature
//! (which is what lets hot reload adopt state across a Rust→DSL swap).
//!
//! Compilation is infallible by construction: the validator has already
//! proved every resolution this module performs.

use super::ast::{ClassSpec, Clause, Program, RuleDecl, ValueAst};
use crate::alert::Severity;
use crate::event::EventClass;
use crate::rules::combo::{CombinationRule, SequenceRule};
use crate::rules::predicate::{ClassMatcher, FieldPredicate, PredValue, PredicateRule};
use crate::rules::threshold::{intern, ThresholdRule, ThresholdSpec};
use crate::rules::Rule;
use scidive_netsim::time::SimDuration;

/// Default header values, matching the historical spec format.
const DEFAULT_SEVERITY: Severity = Severity::Critical;
const DEFAULT_WINDOW: SimDuration = SimDuration::from_secs(60);

fn class_of(spec_name: &str) -> EventClass {
    EventClass::parse_name(spec_name).expect("validator resolved every class")
}

fn classes_of(specs: &[ClassSpec]) -> Vec<EventClass> {
    specs.iter().map(|s| class_of(&s.class.node)).collect()
}

fn matchers_of(specs: &[ClassSpec]) -> Vec<ClassMatcher> {
    specs
        .iter()
        .map(|s| ClassMatcher {
            class: class_of(&s.class.node),
            preds: s
                .preds
                .iter()
                .map(|p| FieldPredicate {
                    field: intern(&p.field.node),
                    op: p.op.node,
                    value: match &p.value.node {
                        ValueAst::Int(i) => PredValue::Int(*i),
                        ValueAst::Str(s) => PredValue::Str(s.clone()),
                    },
                })
                .collect(),
        })
        .collect()
}

/// The fold-plane spec a `threshold` rule lowers to. Tracker names and
/// the clause name derive from the rule id (`{id}-count`,
/// `{id}-distinct`), so a DSL rule declaring the built-in rapid-connect
/// shape compiles to a spec `==` to
/// [`crate::rules::builtin::rapid_spec`].
fn threshold_spec_of(rule: &RuleDecl) -> Option<ThresholdSpec> {
    let Clause::Threshold(t) = &rule.clause else {
        return None;
    };
    let id = rule.id.node.as_str();
    let default_template = match t.distinct {
        Some(_) => "threshold: {key} reached {count} events ({distinct} distinct) within {window}s",
        None => "threshold: {key} reached {count} events within {window}s",
    };
    Some(ThresholdSpec {
        clause: intern(id),
        count_tracker: intern(&format!("{id}-count")),
        distinct_tracker: intern(&format!("{id}-distinct")),
        class: class_of(&t.class.node),
        key_field: intern(&t.key_field.node),
        distinct_field: t.distinct.as_ref().map(|(f, _)| intern(&f.node)),
        window: t.within.node,
        count_threshold: t.count_threshold.node,
        distinct_threshold: t.distinct.as_ref().map_or(0, |(_, n)| n.node),
        severity: rule.severity.as_ref().map_or(DEFAULT_SEVERITY, |s| s.node),
        template: t
            .emit
            .as_ref()
            .map_or(default_template, |e| intern(&e.node)),
    })
}

fn compile_rule(rule: &RuleDecl) -> Box<dyn Rule> {
    let id = rule.id.node.clone();
    let severity = rule.severity.as_ref().map_or(DEFAULT_SEVERITY, |s| s.node);
    let window = rule.window.as_ref().map_or(DEFAULT_WINDOW, |w| w.node);
    let description = format!("operator-defined rule `{id}`");
    match &rule.clause {
        Clause::Sequence(specs) => Box::new(
            SequenceRule::new(id, description, classes_of(specs), window)
                .with_severity(severity),
        ),
        Clause::AllOf(specs) => Box::new(
            CombinationRule::new(id, description, classes_of(specs), window)
                .with_severity(severity),
        ),
        Clause::AnyOf(specs) => Box::new(PredicateRule::new(id, matchers_of(specs), severity)),
        Clause::Threshold(_) => Box::new(ThresholdRule::new(
            threshold_spec_of(rule).expect("clause is a threshold"),
        )),
    }
}

/// Compiles every rule of a **validated** program, in declaration
/// (= install) order.
pub fn compile_program(program: &Program) -> Vec<Box<dyn Rule>> {
    program.rules.iter().map(compile_rule).collect()
}

/// The [`ThresholdSpec`]s of a validated program's threshold clauses,
/// declaration order — what the fold plane needs to evaluate their
/// candidates globally under sharding.
pub fn threshold_specs(program: &Program) -> Vec<ThresholdSpec> {
    program.rules.iter().filter_map(threshold_spec_of).collect()
}
