//! Semantic validation of a parsed [`Program`].
//!
//! Everything the compiler assumes is proved here, so compilation is
//! infallible: class names resolve, field names exist on their class,
//! operators are typed against their field, threshold bounds fit the
//! runtime's fixed buffers, and emit templates only use known
//! placeholders. Violations are hard errors; stylistic hazards (an
//! explicit `window` header on a clause that never reads it) are
//! warnings, which the `.scid` CI gate treats as errors via
//! `--deny-warnings`.

use super::ast::{ClassSpec, Clause, Program, Spanned};
use super::Diagnostic;
use crate::event::{EventClass, EventKind, FieldValue};
use crate::rules::predicate::CmpOp;
use crate::rules::threshold::MAX_DISTINCT_THRESHOLD;
use std::collections::HashSet;

fn diag<T>(s: &Spanned<T>, message: String, hint: Option<String>) -> Diagnostic {
    Diagnostic {
        line: s.span.line,
        col: s.span.col,
        len: s.span.len,
        message,
        hint,
    }
}

fn class_list_hint() -> String {
    format!(
        "one of: {}",
        EventClass::ALL
            .iter()
            .map(|c| c.name())
            .collect::<Vec<_>>()
            .join(", ")
    )
}

fn resolve_class(name: &Spanned<String>) -> Result<EventClass, Diagnostic> {
    EventClass::parse_name(&name.node).ok_or_else(|| {
        diag(
            name,
            format!("unknown event class `{}`", name.node),
            Some(class_list_hint()),
        )
    })
}

fn resolve_field(class: EventClass, field: &Spanned<String>) -> Result<(), Diagnostic> {
    let names = EventKind::field_names(class);
    if names.contains(&field.node.as_str()) {
        return Ok(());
    }
    Err(diag(
        field,
        format!("unknown field `{}` for {}", field.node, class.name()),
        Some(if names.is_empty() {
            format!("{} has no matchable fields", class.name())
        } else {
            format!("fields of {}: {}", class.name(), names.join(", "))
        }),
    ))
}

/// A representative payload per class, used to type-check predicates
/// (which [`FieldValue`] shape does this field produce?). The samples
/// carry every optional payload populated so each declared field
/// extracts.
fn sample_kind(class: EventClass) -> EventKind {
    use std::net::Ipv4Addr;
    let flow = crate::event::FlowKey {
        src: Ipv4Addr::new(10, 0, 0, 1),
        dst: Ipv4Addr::new(10, 0, 0, 2),
        dst_port: 8000,
    };
    let d = scidive_netsim::time::SimDuration::from_millis(5);
    match class {
        EventClass::CallEstablished => EventKind::CallEstablished {
            caller: String::new(),
            callee: String::new(),
        },
        EventClass::CallTornDown => EventKind::CallTornDown {
            by_aor: String::new(),
            by_media_ip: Some(flow.src),
        },
        EventClass::CallRedirected => EventKind::CallRedirected {
            claimed_aor: String::new(),
            old_target: (flow.src, 8000),
            new_target: (flow.dst, 8002),
        },
        EventClass::OrphanRtpAfterBye => EventKind::OrphanRtpAfterBye { flow, gap: d },
        EventClass::OrphanRtpAfterRedirect => EventKind::OrphanRtpAfterRedirect { flow, gap: d },
        EventClass::RtpSeqViolation => EventKind::RtpSeqViolation { flow, delta: 0 },
        EventClass::RtpUnknownSource => EventKind::RtpUnknownSource { flow },
        EventClass::RtpFlowActive => EventKind::RtpFlowActive { flow },
        EventClass::MediaPortGarbage => EventKind::MediaPortGarbage {
            sink: (flow.dst, 8000),
            reason: String::new(),
        },
        EventClass::SipMalformed => EventKind::SipMalformed {
            violations: Vec::new(),
            src: flow.src,
        },
        EventClass::ImSourceMismatch => EventKind::ImSourceMismatch {
            claimed_aor: String::new(),
            src_ip: flow.src,
            expected_ip: flow.dst,
        },
        EventClass::ImObserved => EventKind::ImObserved {
            claimed_aor: String::new(),
            src_ip: flow.src,
            dst_ip: flow.dst,
            call_id: String::new(),
        },
        EventClass::RegisterFlood => EventKind::RegisterFlood {
            src: flow.src,
            count: 0,
        },
        EventClass::PasswordGuessing => EventKind::PasswordGuessing {
            src: flow.src,
            username: String::new(),
            distinct_responses: 0,
        },
        EventClass::AcctMismatch => EventKind::AcctMismatch {
            billed: String::new(),
            observed_caller: Some(String::new()),
            call_id: String::new(),
        },
        EventClass::RtpAfterRtcpBye => EventKind::RtpAfterRtcpBye {
            flow,
            ssrc: 0,
            gap: d,
        },
        EventClass::Ext0 | EventClass::Ext1 | EventClass::Ext2 | EventClass::Ext3 => {
            EventKind::Protocol {
                class,
                signal: "",
                detail: String::new(),
            }
        }
    }
}

/// What a field's value looks like, for operator typing.
#[derive(Clone, Copy, PartialEq, Eq)]
enum FieldShape {
    Int,
    Text,
    Ip,
}

fn field_shape(class: EventClass, field: &str) -> FieldShape {
    match sample_kind(class).field(field) {
        Some(FieldValue::Int(_)) => FieldShape::Int,
        Some(FieldValue::Str(_)) => FieldShape::Text,
        Some(FieldValue::Ip(_)) => FieldShape::Ip,
        None => unreachable!("resolve_field admitted `{field}` for {class:?}"),
    }
}

fn check_specs(
    specs: &[ClassSpec],
    preds_allowed: bool,
) -> Result<Vec<EventClass>, Diagnostic> {
    let mut classes = Vec::new();
    for spec in specs {
        let class = resolve_class(&spec.class)?;
        classes.push(class);
        if !preds_allowed && !spec.preds.is_empty() {
            return Err(diag(
                &spec.preds[0].field,
                "field predicates are only supported in any-of clauses".to_string(),
                Some("move the predicate into an `any-of` rule".to_string()),
            ));
        }
        for p in &spec.preds {
            resolve_field(class, &p.field)?;
            let shape = field_shape(class, &p.field.node);
            let is_int_value = matches!(p.value.node, super::ast::ValueAst::Int(_));
            match (shape, is_int_value) {
                (FieldShape::Int, false) => {
                    return Err(diag(
                        &p.value,
                        format!("field `{}` is a number; compare it to a number", p.field.node),
                        None,
                    ));
                }
                (FieldShape::Text | FieldShape::Ip, true) => {
                    return Err(diag(
                        &p.value,
                        format!("field `{}` is text; compare it to a quoted string", p.field.node),
                        None,
                    ));
                }
                _ => {}
            }
            match (p.op.node, shape) {
                (CmpOp::Contains, FieldShape::Int | FieldShape::Ip) => {
                    return Err(diag(
                        &p.op,
                        "`contains` needs a text field".to_string(),
                        None,
                    ));
                }
                (CmpOp::Ge | CmpOp::Le | CmpOp::Gt | CmpOp::Lt, FieldShape::Text) => {
                    return Err(diag(
                        &p.op,
                        format!(
                            "ordering comparison `{}` needs a numeric field",
                            p.op.node.symbol()
                        ),
                        None,
                    ));
                }
                (CmpOp::Ge | CmpOp::Le | CmpOp::Gt | CmpOp::Lt, FieldShape::Ip) => {
                    return Err(diag(
                        &p.op,
                        "only `==` and `!=` apply to an IP field".to_string(),
                        None,
                    ));
                }
                _ => {}
            }
        }
    }
    Ok(classes)
}

const TEMPLATE_PLACEHOLDERS: [&str; 4] = ["key", "count", "distinct", "window"];

fn check_template(emit: &Spanned<String>) -> Result<(), Diagnostic> {
    let mut rest = emit.node.as_str();
    while let Some(open) = rest.find('{') {
        let Some(close) = rest[open..].find('}') else {
            // No closing brace: rendered verbatim, nothing to check.
            break;
        };
        let name = &rest[open + 1..open + close];
        if !TEMPLATE_PLACEHOLDERS.contains(&name) {
            return Err(diag(
                emit,
                format!("unknown placeholder `{{{name}}}` in emit template"),
                Some("placeholders: {key}, {count}, {distinct}, {window}".to_string()),
            ));
        }
        rest = &rest[open + close + 1..];
    }
    Ok(())
}

/// Validates `program`. On success returns the (possibly empty) warning
/// list; the first hard error aborts validation.
pub fn validate(program: &Program) -> Result<Vec<Diagnostic>, Diagnostic> {
    let mut warnings = Vec::new();
    let mut seen: HashSet<&str> = HashSet::new();
    for rule in &program.rules {
        if !seen.insert(rule.id.node.as_str()) {
            return Err(diag(
                &rule.id,
                format!("duplicate rule id `{}`", rule.id.node),
                None,
            ));
        }
        match &rule.clause {
            Clause::Sequence(specs) | Clause::AllOf(specs) => {
                let classes = check_specs(specs, false)?;
                if matches!(rule.clause, Clause::AllOf(_)) && classes.len() > 64 {
                    return Err(diag(
                        &rule.id,
                        "all-of lists more than 64 classes".to_string(),
                        None,
                    ));
                }
            }
            Clause::AnyOf(specs) => {
                check_specs(specs, true)?;
                if let Some(w) = &rule.window {
                    warnings.push(diag(
                        w,
                        format!(
                            "rule `{}`: `window` has no effect on an any-of clause",
                            rule.id.node
                        ),
                        Some("any-of fires on the first match; drop the header".to_string()),
                    ));
                }
            }
            Clause::Threshold(t) => {
                let class = resolve_class(&t.class)?;
                resolve_field(class, &t.key_field)?;
                if field_shape(class, &t.key_field.node) == FieldShape::Int {
                    return Err(diag(
                        &t.key_field,
                        format!("threshold key field `{}` must be text", t.key_field.node),
                        Some("key the window by an identity, not a measurement".to_string()),
                    ));
                }
                if t.count_threshold.node == 0 {
                    return Err(diag(
                        &t.count_threshold,
                        "count threshold must be at least 1".to_string(),
                        None,
                    ));
                }
                if let Some((field, n)) = &t.distinct {
                    resolve_field(class, field)?;
                    if n.node > MAX_DISTINCT_THRESHOLD {
                        return Err(diag(
                            n,
                            format!(
                                "distinct threshold {} exceeds the maximum {}",
                                n.node, MAX_DISTINCT_THRESHOLD
                            ),
                            Some("the exact-mode probe buffer is fixed-size".to_string()),
                        ));
                    }
                    if n.node == 0 {
                        return Err(diag(
                            n,
                            "distinct threshold must be at least 1".to_string(),
                            None,
                        ));
                    }
                }
                if let Some(emit) = &t.emit {
                    check_template(emit)?;
                }
                if let Some(w) = &rule.window {
                    warnings.push(diag(
                        w,
                        format!(
                            "rule `{}`: `window` has no effect on a threshold clause",
                            rule.id.node
                        ),
                        Some("the sliding window comes from `within`".to_string()),
                    ));
                }
            }
        }
    }
    Ok(warnings)
}
