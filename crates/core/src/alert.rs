//! Alerts and alert sinks.

use crate::trail::SessionKey;
use scidive_netsim::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How severe an alert is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Informational.
    Info,
    /// Suspicious but possibly benign.
    Warning,
    /// An attack signature matched.
    Critical,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Info => "INFO",
            Severity::Warning => "WARN",
            Severity::Critical => "CRIT",
        };
        f.write_str(s)
    }
}

/// An alert raised by a rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// The rule that fired.
    pub rule: String,
    /// Severity.
    pub severity: Severity,
    /// When the triggering event was observed.
    pub time: SimTime,
    /// The session involved, if session-scoped.
    pub session: Option<SessionKey>,
    /// Human-readable description.
    pub message: String,
}

impl Alert {
    /// Creates an alert.
    pub fn new(
        rule: impl Into<String>,
        severity: Severity,
        time: SimTime,
        session: Option<SessionKey>,
        message: impl Into<String>,
    ) -> Alert {
        Alert {
            rule: rule.into(),
            severity,
            time,
            session,
            message: message.into(),
        }
    }
}

impl fmt::Display for Alert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} {}: {}", self.time, self.severity, self.rule, self.message)?;
        if let Some(s) = &self.session {
            write!(f, " (session {s})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Critical);
    }

    #[test]
    fn display_contains_parts() {
        let a = Alert::new(
            "bye-attack",
            Severity::Critical,
            SimTime::from_millis(7),
            Some(SessionKey::new("c1")),
            "orphan flow",
        );
        let s = a.to_string();
        assert!(s.contains("bye-attack"));
        assert!(s.contains("CRIT"));
        assert!(s.contains("c1"));
    }
}
