//! Detection metrics (paper §4.3): detection delay `D`, probability of
//! false alarm `P_f`, probability of missed alarm `P_m`.
//!
//! Harnesses register the ground truth (which attacks were injected,
//! when, and which rule should catch them); this module scores an alert
//! stream against it.

use crate::alert::{Alert, Severity};
use scidive_netsim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One injected attack the IDS is expected to catch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectedAttack {
    /// The rule expected to fire.
    pub expect_rule: String,
    /// When the attack was launched.
    pub injected_at: SimTime,
}

impl InjectedAttack {
    /// Creates a ground-truth entry.
    pub fn new(expect_rule: impl Into<String>, injected_at: SimTime) -> InjectedAttack {
        InjectedAttack {
            expect_rule: expect_rule.into(),
            injected_at,
        }
    }
}

/// The outcome for one injected attack.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectionOutcome {
    /// The ground truth.
    pub attack: InjectedAttack,
    /// First matching alert time, if any.
    pub detected_at: Option<SimTime>,
}

impl DetectionOutcome {
    /// Whether the attack was detected.
    pub fn detected(&self) -> bool {
        self.detected_at.is_some()
    }

    /// Detection delay `D`, if detected.
    pub fn delay(&self) -> Option<SimDuration> {
        self.detected_at
            .map(|t| t.saturating_since(self.attack.injected_at))
    }
}

/// Scored results for one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectionReport {
    /// Per-attack outcomes.
    pub outcomes: Vec<DetectionOutcome>,
    /// Critical alerts that matched no injected attack.
    pub false_alarms: Vec<Alert>,
}

impl DetectionReport {
    /// Scores `alerts` against `ground_truth`.
    ///
    /// An alert counts for an injection when its rule matches and it
    /// fires at or after the injection time. Warning-level alerts never
    /// count as false alarms (they are advisories).
    pub fn evaluate(alerts: &[Alert], ground_truth: &[InjectedAttack]) -> DetectionReport {
        let mut used = vec![false; alerts.len()];
        let outcomes = ground_truth
            .iter()
            .map(|attack| {
                let hit = alerts.iter().enumerate().find(|(i, a)| {
                    !used[*i] && a.rule == attack.expect_rule && a.time >= attack.injected_at
                });
                let detected_at = hit.map(|(i, a)| {
                    used[i] = true;
                    a.time
                });
                DetectionOutcome {
                    attack: attack.clone(),
                    detected_at,
                }
            })
            .collect();
        let false_alarms = alerts
            .iter()
            .enumerate()
            .filter(|(i, a)| !used[*i] && a.severity >= Severity::Critical)
            .map(|(_, a)| a.clone())
            .collect();
        DetectionReport {
            outcomes,
            false_alarms,
        }
    }

    /// Attacks detected.
    pub fn detected_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.detected()).count()
    }

    /// Attacks missed.
    pub fn missed_count(&self) -> usize {
        self.outcomes.len() - self.detected_count()
    }

    /// Mean detection delay over the detected attacks, in milliseconds.
    pub fn mean_delay_ms(&self) -> Option<f64> {
        let delays: Vec<f64> = self
            .outcomes
            .iter()
            .filter_map(|o| o.delay().map(|d| d.as_millis_f64()))
            .collect();
        if delays.is_empty() {
            None
        } else {
            Some(delays.iter().sum::<f64>() / delays.len() as f64)
        }
    }
}

/// Aggregates detection/miss/false-alarm counts over many seeded runs
/// into the rates `P_m` and `P_f` of §4.3.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RateAccumulator {
    /// Attacks injected.
    pub injected: u64,
    /// Attacks detected.
    pub detected: u64,
    /// Runs scored.
    pub runs: u64,
    /// Runs in which at least one false alarm fired.
    pub runs_with_false_alarm: u64,
    /// Total false alarms.
    pub false_alarms: u64,
    /// Sum of detection delays (ms) over detected attacks.
    pub delay_sum_ms: f64,
}

impl RateAccumulator {
    /// Folds in one run's report.
    pub fn add(&mut self, report: &DetectionReport) {
        self.runs += 1;
        self.injected += report.outcomes.len() as u64;
        self.detected += report.detected_count() as u64;
        self.false_alarms += report.false_alarms.len() as u64;
        if !report.false_alarms.is_empty() {
            self.runs_with_false_alarm += 1;
        }
        for o in &report.outcomes {
            if let Some(d) = o.delay() {
                self.delay_sum_ms += d.as_millis_f64();
            }
        }
    }

    /// Probability of missed alarm: misses / injections.
    pub fn p_missed(&self) -> f64 {
        if self.injected == 0 {
            0.0
        } else {
            (self.injected - self.detected) as f64 / self.injected as f64
        }
    }

    /// Probability of false alarm: fraction of runs with ≥1 false alarm.
    pub fn p_false(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.runs_with_false_alarm as f64 / self.runs as f64
        }
    }

    /// Mean detection delay in milliseconds.
    pub fn mean_delay_ms(&self) -> Option<f64> {
        if self.detected == 0 {
            None
        } else {
            Some(self.delay_sum_ms / self.detected as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trail::SessionKey;

    fn alert(rule: &str, t: u64, sev: Severity) -> Alert {
        Alert::new(
            rule,
            sev,
            SimTime::from_millis(t),
            Some(SessionKey::new("c1")),
            "m",
        )
    }

    #[test]
    fn detection_and_delay() {
        let alerts = vec![alert("bye-attack", 110, Severity::Critical)];
        let gt = vec![InjectedAttack::new("bye-attack", SimTime::from_millis(100))];
        let report = DetectionReport::evaluate(&alerts, &gt);
        assert_eq!(report.detected_count(), 1);
        assert_eq!(report.missed_count(), 0);
        assert!(report.false_alarms.is_empty());
        assert_eq!(report.mean_delay_ms(), Some(10.0));
    }

    #[test]
    fn miss_when_no_matching_rule() {
        let alerts = vec![alert("rtp-attack", 110, Severity::Critical)];
        let gt = vec![InjectedAttack::new("bye-attack", SimTime::from_millis(100))];
        let report = DetectionReport::evaluate(&alerts, &gt);
        assert_eq!(report.detected_count(), 0);
        // The unrelated critical alert is a false alarm.
        assert_eq!(report.false_alarms.len(), 1);
    }

    #[test]
    fn alert_before_injection_does_not_count() {
        let alerts = vec![alert("bye-attack", 50, Severity::Critical)];
        let gt = vec![InjectedAttack::new("bye-attack", SimTime::from_millis(100))];
        let report = DetectionReport::evaluate(&alerts, &gt);
        assert_eq!(report.detected_count(), 0);
        assert_eq!(report.false_alarms.len(), 1);
    }

    #[test]
    fn warnings_are_not_false_alarms() {
        let alerts = vec![alert("sip-format", 50, Severity::Warning)];
        let report = DetectionReport::evaluate(&alerts, &[]);
        assert!(report.false_alarms.is_empty());
    }

    #[test]
    fn one_alert_serves_one_injection() {
        let alerts = vec![alert("bye-attack", 110, Severity::Critical)];
        let gt = vec![
            InjectedAttack::new("bye-attack", SimTime::from_millis(100)),
            InjectedAttack::new("bye-attack", SimTime::from_millis(105)),
        ];
        let report = DetectionReport::evaluate(&alerts, &gt);
        assert_eq!(report.detected_count(), 1);
        assert_eq!(report.missed_count(), 1);
    }

    #[test]
    fn accumulator_rates() {
        let mut acc = RateAccumulator::default();
        // Run 1: detected with 10 ms delay.
        acc.add(&DetectionReport::evaluate(
            &[alert("bye-attack", 110, Severity::Critical)],
            &[InjectedAttack::new("bye-attack", SimTime::from_millis(100))],
        ));
        // Run 2: missed, plus a false alarm.
        acc.add(&DetectionReport::evaluate(
            &[alert("rtp-attack", 10, Severity::Critical)],
            &[InjectedAttack::new("bye-attack", SimTime::from_millis(100))],
        ));
        assert_eq!(acc.injected, 2);
        assert_eq!(acc.detected, 1);
        assert!((acc.p_missed() - 0.5).abs() < 1e-12);
        assert!((acc.p_false() - 0.5).abs() < 1e-12);
        assert_eq!(acc.mean_delay_ms(), Some(10.0));
    }

    #[test]
    fn empty_accumulator_rates() {
        let acc = RateAccumulator::default();
        assert_eq!(acc.p_missed(), 0.0);
        assert_eq!(acc.p_false(), 0.0);
        assert_eq!(acc.mean_delay_ms(), None);
    }
}
