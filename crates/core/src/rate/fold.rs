//! The cross-shard fold plane: global rate evaluation above the shards.
//!
//! The sharded pipeline routes frames by session hash, so a flood whose
//! sources (or a caller whose Call-IDs) hash across `N` shards is seen
//! only in `1/N` slices by any per-shard `RateHub` — per-shard threshold
//! evaluation undercounts it by up to `N×` and can miss it entirely.
//! The fold plane restores the single-vantage-point semantics SCIDIVE's
//! stateful rules assume: on a fixed capture-time cadence the dispatcher
//! collects each shard's [`RateDelta`] (plain-update twin trackers plus
//! candidate keys), folds the deltas into one [`GlobalRatePlane`] with
//! the cell-wise / epoch-aligned / register-max / OR merges, and
//! evaluates the threshold clauses against the **merged** trackers.
//!
//! Determinism is the design constraint everything here serves — the
//! merged alert stream must be a pure function of the capture,
//! independent of the shard count:
//!
//! * **Plain updates.** Delta twins use the non-conservative count-min
//!   update ([`crate::rate::CountMinSketch::observe_plain`]), which is
//!   partition-independent: summing per-shard grids cell-for-cell
//!   equals one grid fed the whole stream. HLL register unions and
//!   latch ORs are partition-independent by construction.
//! * **Commutative absorbs.** Saturating add, register max, and OR are
//!   commutative and associative, so the order shard deltas arrive in
//!   cannot change the merged state.
//! * **Canonical candidate order.** Candidates are evaluated sorted by
//!   `(clause, display, key)` — quantities identical at every shard
//!   count — never by arrival or admission order, which are not.
//! * **Capture-time cadence.** Folds happen at fixed capture-time
//!   boundaries (see `shard.rs`), so alert timestamps are boundary
//!   times, not functions of batch sizes or thread scheduling.

use crate::alert::Alert;
use crate::rate::{
    LatchSet, RateCandidate, RateConfig, RateDelta, RateStats, WindowedDistinct, WindowedSketch,
};
use crate::rules::threshold::ThresholdSpec;
use scidive_netsim::time::{SimDuration, SimTime};

/// Fold-plane knobs, part of [`crate::engine::ScidiveConfig`]. Only the
/// sharded pipeline consults them; a single engine evaluates rate
/// clauses locally regardless.
#[derive(Debug, Clone)]
pub struct FoldConfig {
    /// Whether the sharded pipeline runs the fold plane at all. Off
    /// restores the pre-fold per-shard-slice evaluation — kept as a
    /// switch so the detection-miss regression stays testable.
    pub enabled: bool,
    /// Capture-time fold cadence: shards are folded at every multiple
    /// of this interval (quantised from time zero), plus once at
    /// finish. Smaller intervals tighten detection latency; the merged
    /// alert stream stays identical either way, only its timestamps
    /// quantise differently.
    pub interval: SimDuration,
}

impl Default for FoldConfig {
    fn default() -> FoldConfig {
        FoldConfig {
            enabled: true,
            interval: SimDuration::from_secs(1),
        }
    }
}

/// Fold-plane telemetry counters, surfaced through
/// [`crate::observe::DispatchCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FoldStats {
    /// Fold barriers executed (including the finish fold).
    pub folds: u64,
    /// Shard deltas absorbed across all folds.
    pub deltas_absorbed: u64,
    /// Candidate keys received (pre-dedup) across all folds.
    pub candidates: u64,
    /// Tracker merges refused for shape/seed mismatch (a misconfigured
    /// shard; its delta is skipped, the fold proceeds).
    pub merge_rejected: u64,
    /// Alerts the global evaluation emitted.
    pub alerts: u64,
}

/// The dispatcher-resident global hub: merged trackers, the candidate
/// registry, and the global fired latches (see module docs).
#[derive(Debug)]
pub struct GlobalRatePlane {
    config: RateConfig,
    /// The threshold clauses this plane knows how to evaluate. Installed
    /// at construction from the ruleset's [`ThresholdSpec`]s and
    /// replaced on hot reload ([`GlobalRatePlane::set_clauses`]); a
    /// candidate whose clause has no spec here is dropped rather than
    /// guessed at.
    clauses: Vec<ThresholdSpec>,
    counters: Vec<(&'static str, WindowedSketch)>,
    distincts: Vec<(&'static str, WindowedDistinct)>,
    latches: Vec<(&'static str, LatchSet)>,
    candidates: Vec<RateCandidate>,
    stats: FoldStats,
    /// Global-estimate-vs-best-local-slice divergence, recorded per
    /// alert — the direct measure of how much a per-shard evaluation
    /// would have undercounted.
    divergence: RateStats,
}

impl GlobalRatePlane {
    /// Creates an empty plane knowing no clauses; trackers arrive with
    /// the first absorbed deltas (and inherit their shapes), latches are
    /// created lazily from `config` dimensions, and clauses are
    /// installed via [`GlobalRatePlane::set_clauses`].
    pub fn new(config: RateConfig) -> GlobalRatePlane {
        GlobalRatePlane {
            config,
            clauses: Vec::new(),
            counters: Vec::new(),
            distincts: Vec::new(),
            latches: Vec::new(),
            candidates: Vec::new(),
            stats: FoldStats::default(),
            divergence: RateStats::default(),
        }
    }

    /// Installs (or, on hot reload, replaces) the threshold clauses the
    /// global pass evaluates. Merged trackers, fired latches, and
    /// pending candidates are all preserved: a clause that survives the
    /// swap keeps its window history and its once-per-campaign latch; a
    /// removed clause's candidates simply stop matching any spec and
    /// evict on the next pass.
    pub fn set_clauses(&mut self, clauses: Vec<ThresholdSpec>) {
        self.clauses = clauses;
    }

    /// Folds one shard's delta into the plane. The first delta to carry
    /// a tracker name donates the tracker wholesale; later deltas merge
    /// into it. A tracker refusing to merge (shape or seed mismatch —
    /// a misconfigured shard) bumps `merge_rejected` and is skipped;
    /// the fold never wedges. Candidates dedup by `(clause, key)`,
    /// keeping the earliest first-sighting and the largest local
    /// estimate.
    pub fn absorb(&mut self, delta: RateDelta) {
        self.stats.deltas_absorbed += 1;
        for (name, theirs) in delta.counters {
            match self.counters.iter_mut().find(|(n, _)| *n == name) {
                Some((_, mine)) => {
                    if mine.try_merge(&theirs).is_err() {
                        self.stats.merge_rejected += 1;
                    }
                }
                None => self.counters.push((name, theirs)),
            }
        }
        for (name, theirs) in delta.distincts {
            match self.distincts.iter_mut().find(|(n, _)| *n == name) {
                Some((_, mine)) => {
                    if mine.try_merge(&theirs).is_err() {
                        self.stats.merge_rejected += 1;
                    }
                }
                None => self.distincts.push((name, theirs)),
            }
        }
        for c in delta.candidates {
            self.stats.candidates += 1;
            match self
                .candidates
                .iter_mut()
                .find(|e| e.clause == c.clause && e.key == c.key)
            {
                Some(e) => {
                    e.first_time = e.first_time.min(c.first_time);
                    e.local_estimate = e.local_estimate.max(c.local_estimate);
                }
                None => self.candidates.push(c),
            }
        }
    }

    fn latched(&self, name: &'static str, key: u64) -> bool {
        self.latches
            .iter()
            .find(|(n, _)| *n == name)
            .is_some_and(|(_, l)| l.get(key))
    }

    fn set_latch(&mut self, name: &'static str, key: u64) {
        if !self.latches.iter().any(|(n, _)| *n == name) {
            let seed = self.config.tracker_seed(name);
            self.latches
                .push((name, LatchSet::new(self.config.latch_bits, seed)));
        }
        self.latches
            .iter_mut()
            .find(|(n, _)| *n == name)
            .expect("just inserted")
            .1
            .put(key, true);
    }

    /// Runs the global threshold pass at a fold boundary: advances every
    /// tracker to `now`, evaluates each candidate's clause against the
    /// merged estimates in canonical `(clause, display, key)` order, and
    /// returns the alerts (timestamped `now`). A candidate that crosses
    /// latches globally — one alert per campaign, like the local latch —
    /// and candidates whose merged window has fully decayed are evicted.
    pub fn evaluate(&mut self, now: SimTime) -> Vec<Alert> {
        self.stats.folds += 1;
        for (_, ws) in &mut self.counters {
            ws.advance(now);
        }
        for (_, wd) in &mut self.distincts {
            wd.advance(now);
        }
        let mut candidates = std::mem::take(&mut self.candidates);
        candidates.sort_by(|a, b| {
            (a.clause, &a.display, a.key).cmp(&(b.clause, &b.display, b.key))
        });
        let mut alerts = Vec::new();
        for c in candidates {
            let Some(spec) = self.clauses.iter().find(|s| s.clause == c.clause).copied()
            else {
                // Unknown clause (a retired rule's candidate, or a
                // future rule's reaching an older plane): drop rather
                // than guess at semantics.
                continue;
            };
            let attempts = self
                .counters
                .iter()
                .find(|(n, _)| *n == spec.count_tracker)
                .map_or(0, |(_, ws)| ws.estimate(now, c.key));
            let distinct = self
                .distincts
                .iter()
                .find(|(n, _)| *n == spec.distinct_tracker)
                .map_or(0, |(_, wd)| wd.estimate(now, c.key));
            if spec.clause_met(attempts, distinct) && !self.latched(spec.clause, c.key) {
                self.set_latch(spec.clause, c.key);
                self.divergence.record_divergence(attempts, c.local_estimate);
                self.stats.alerts += 1;
                alerts.push(spec.alert_at(now, None, &c.display, attempts, distinct));
            }
            if attempts > 0 {
                // Still live in the merged window: keep the candidate so
                // a key admitted before its global crossing is
                // re-evaluated at later folds without re-admission.
                self.candidates.push(c);
            }
        }
        alerts
    }

    /// Fold-plane telemetry counters.
    pub fn fold_stats(&self) -> FoldStats {
        self.stats
    }

    /// Tracker footprint plus the per-alert global-vs-local divergence
    /// samples, in the same shape the per-shard hubs report.
    pub fn rate_stats(&self) -> RateStats {
        let mut s = self.divergence;
        for (_, ws) in &self.counters {
            s.trackers += 1;
            s.bytes += ws.bytes() as u64;
        }
        for (_, wd) in &self.distincts {
            s.trackers += 1;
            s.bytes += wd.bytes() as u64;
        }
        for (_, l) in &self.latches {
            s.trackers += 1;
            s.bytes += l.bytes() as u64;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::RateHub;
    use crate::rules::builtin::{rapid_spec, RAPID_ATTEMPTS, RAPID_WINDOW};

    /// Drives `calls` fan-out calls from one caller through `shards`
    /// aggregated hubs (round-robin, as a Call-ID router would) and
    /// folds their deltas into a fresh plane, mirroring exactly what
    /// [`crate::rules::threshold::ThresholdRule`] does in aggregated
    /// mode (clause-prefixed caller key, `{clause}-count` /
    /// `{clause}-distinct` trackers).
    fn folded_plane(shards: usize, calls: u32) -> (GlobalRatePlane, SimTime) {
        let spec = rapid_spec();
        let config = RateConfig::default();
        let hubs: Vec<RateHub> = (0..shards)
            .map(|_| RateHub::new_aggregated(config.clone(), false, shards))
            .collect();
        let caller_key = hubs[0].key(&[spec.clause.as_bytes(), b"sip:spammer@lab"]);
        let mut now = SimTime::ZERO;
        for i in 0..calls {
            now = SimTime::from_millis(u64::from(i) * 100);
            let hub = &hubs[i as usize % shards];
            let attempts = hub.observe_count(spec.count_tracker, RAPID_WINDOW, now, caller_key);
            let callee = hub.key(&[b"callee", format!("sip:v{i}@lab").as_bytes()]);
            hub.observe_distinct(spec.distinct_tracker, RAPID_WINDOW, now, caller_key, callee);
            let bar = RAPID_ATTEMPTS.div_ceil(shards as u32);
            if attempts >= bar {
                hub.push_candidate(spec.clause, caller_key, now, attempts, "sip:spammer@lab");
            }
        }
        let mut plane = GlobalRatePlane::new(config);
        plane.set_clauses(vec![spec]);
        for hub in &hubs {
            plane.absorb(hub.take_delta());
        }
        (plane, now)
    }

    /// The fold-plane invariant end to end: a campaign split over 1, 2,
    /// or 4 hubs produces the identical global alert.
    #[test]
    fn global_evaluation_is_shard_count_invariant() {
        let boundary = SimTime::from_secs(2);
        let mut streams = Vec::new();
        for shards in [1usize, 2, 4] {
            let (mut plane, _) = folded_plane(shards, 14);
            let alerts = plane.evaluate(boundary);
            assert_eq!(alerts.len(), 1, "{shards} shards");
            streams.push(format!("{:?}", alerts));
        }
        assert_eq!(streams[0], streams[1]);
        assert_eq!(streams[0], streams[2]);
    }

    /// Pre-fix behavior, pinned: 14 calls over 4 shards leave every
    /// per-shard slice under the threshold — no shard could have fired
    /// locally — yet the folded plane crosses.
    #[test]
    fn per_shard_slices_stay_sub_threshold_but_fold_crosses() {
        let (mut plane, _) = folded_plane(4, 14);
        // 14 calls round-robin over 4 shards: at most 4 per shard, well
        // under RAPID_ATTEMPTS = 12.
        assert!(14u32.div_ceil(4) < RAPID_ATTEMPTS);
        let alerts = plane.evaluate(SimTime::from_secs(2));
        assert_eq!(alerts.len(), 1);
        assert!(alerts[0].message.contains("sip:spammer@lab"));
        let d = plane.rate_stats();
        assert_eq!(d.divergence_samples, 1);
        assert!(d.divergence_max > 0, "local slice equalled the global count");
    }

    /// The latch fires a campaign once across folds, and candidates are
    /// evicted once the merged window decays to nothing.
    #[test]
    fn latch_once_then_evict_on_decay() {
        let (mut plane, _) = folded_plane(2, 14);
        assert_eq!(plane.evaluate(SimTime::from_secs(2)).len(), 1);
        assert_eq!(plane.evaluate(SimTime::from_secs(3)).len(), 0, "re-alerted");
        assert!(!plane.candidates.is_empty());
        // Far past the window: trackers decay, the candidate evicts.
        assert_eq!(plane.evaluate(SimTime::from_secs(500)).len(), 0);
        assert!(plane.candidates.is_empty());
        let s = plane.fold_stats();
        assert_eq!((s.folds, s.alerts, s.merge_rejected), (3, 1, 0));
    }

    /// A misconfigured shard's delta is skipped, counted, and the fold
    /// proceeds with everyone else's.
    #[test]
    fn mismatched_delta_is_rejected_not_fatal() {
        let (mut plane, _) = folded_plane(1, 14);
        let rogue = RateHub::new_aggregated(
            RateConfig {
                seed: 0xbad_5eed,
                ..RateConfig::default()
            },
            false,
            1,
        );
        let spec = rapid_spec();
        let k = rogue.key(&[spec.clause.as_bytes(), b"sip:spammer@lab"]);
        rogue.observe_count(spec.count_tracker, RAPID_WINDOW, SimTime::ZERO, k);
        rogue.observe_distinct(spec.distinct_tracker, RAPID_WINDOW, SimTime::ZERO, k, 9);
        plane.absorb(rogue.take_delta());
        assert_eq!(plane.fold_stats().merge_rejected, 2);
        // The healthy shard's campaign still crosses.
        assert_eq!(plane.evaluate(SimTime::from_secs(2)).len(), 1);
    }
}
