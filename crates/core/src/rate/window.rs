//! Sliding-window counting over a ring of count-min buckets.
//!
//! Virtual time is quantised into epochs of `⌈W/(B−1)⌉` microseconds
//! (`W` the window, `B` the ring size). The ring keeps the `B` most
//! recent epochs; since `(B−1)` full epochs already span at least `W`,
//! the live ring always covers the entire exact window no matter where
//! inside its epoch "now" falls — so the windowed estimate **never
//! undercounts** the exact sliding-window count. It may overcount by
//! events up to one epoch older than the window (quantisation
//! staleness) plus whatever the per-bucket sketches overcount by
//! (collisions).
//!
//! The retention rule is exactly: an event observed in epoch `e` is
//! counted by a query in epoch `e_now` iff `e_now − e < B`. The
//! property suite (`crates/core/tests/properties.rs`) pins a single-key
//! tracker — where the sketches are collision-free and therefore exact
//! — against a timestamp-queue oracle implementing that same rule, for
//! arbitrary interleavings of observe and advance.

use crate::rate::cms::CountMinSketch;
use crate::rate::RateMergeError;
use scidive_netsim::time::{SimDuration, SimTime};

const EMPTY_EPOCH: u64 = u64::MAX;

#[derive(Debug, Clone)]
struct Bucket {
    epoch: u64,
    sketch: CountMinSketch,
}

/// A sliding-window frequency estimator (see module docs).
///
/// # Examples
///
/// ```
/// use scidive_core::rate::WindowedSketch;
/// use scidive_netsim::time::{SimDuration, SimTime};
///
/// let mut w = WindowedSketch::new(SimDuration::from_secs(10), 8, 256, 4, 1);
/// assert_eq!(w.observe(SimTime::from_secs(1), 42), 1);
/// assert_eq!(w.observe(SimTime::from_secs(2), 42), 2);
/// // Far outside the window the old observations have rolled away.
/// assert_eq!(w.observe(SimTime::from_secs(60), 42), 1);
/// ```
#[derive(Debug, Clone)]
pub struct WindowedSketch {
    window: SimDuration,
    bucket_width_us: u64,
    high_epoch: u64,
    buckets: Vec<Bucket>,
}

impl WindowedSketch {
    /// Creates a windowed sketch over `window` with `buckets` ring
    /// slots (clamped to at least 2), each a `width × depth` count-min
    /// sketch seeded from `seed`.
    pub fn new(
        window: SimDuration,
        buckets: usize,
        width: usize,
        depth: usize,
        seed: u64,
    ) -> WindowedSketch {
        let buckets = buckets.max(2);
        let bucket_width_us = window
            .as_micros()
            .div_ceil(buckets as u64 - 1)
            .max(1);
        WindowedSketch {
            window,
            bucket_width_us,
            high_epoch: 0,
            buckets: (0..buckets)
                .map(|_| Bucket {
                    epoch: EMPTY_EPOCH,
                    sketch: CountMinSketch::new(width, depth, seed),
                })
                .collect(),
        }
    }

    /// The configured window.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// The epoch quantum: events may be retained up to this long past
    /// the window's edge.
    pub fn bucket_width(&self) -> SimDuration {
        SimDuration::from_micros(self.bucket_width_us)
    }

    fn epoch_of(&self, now: SimTime) -> u64 {
        now.as_micros() / self.bucket_width_us
    }

    fn live(&self, epoch: u64, high: u64) -> bool {
        epoch <= high && high - epoch < self.buckets.len() as u64
    }

    /// Rolls the ring forward to `now`'s epoch, clearing buckets that
    /// fell out of the live range. Time regressions are clamped to the
    /// high-water epoch, keeping the structure monotone.
    pub fn advance(&mut self, now: SimTime) {
        let e = self.epoch_of(now).max(self.high_epoch);
        if e == self.high_epoch && self.buckets[(e % self.buckets.len() as u64) as usize].epoch == e
        {
            return;
        }
        let len = self.buckets.len() as u64;
        for bucket in &mut self.buckets {
            if bucket.epoch != EMPTY_EPOCH && !(bucket.epoch <= e && e - bucket.epoch < len) {
                bucket.sketch.clear();
                bucket.epoch = EMPTY_EPOCH;
            }
        }
        self.high_epoch = e;
    }

    /// Records one occurrence of `key` at `now` and returns the new
    /// windowed estimate.
    pub fn observe(&mut self, now: SimTime, key: u64) -> u32 {
        self.advance(now);
        let e = self.high_epoch;
        let slot = (e % self.buckets.len() as u64) as usize;
        let bucket = &mut self.buckets[slot];
        if bucket.epoch != e {
            bucket.sketch.clear();
            bucket.epoch = e;
        }
        bucket.sketch.observe(key);
        self.estimate_at(e, key)
    }

    /// Records one occurrence of `key` at `now` with the plain
    /// (non-conservative) per-bucket update
    /// ([`CountMinSketch::observe_plain`]). Used by the fold-plane delta
    /// trackers, where partition independence matters more than the
    /// conservative update's tightness: summing per-shard deltas yields
    /// exactly the ring one tracker fed the whole stream would hold.
    pub fn observe_plain(&mut self, now: SimTime, key: u64) {
        self.advance(now);
        let e = self.high_epoch;
        let slot = (e % self.buckets.len() as u64) as usize;
        let bucket = &mut self.buckets[slot];
        if bucket.epoch != e {
            bucket.sketch.clear();
            bucket.epoch = e;
        }
        bucket.sketch.observe_plain(key);
    }

    /// The windowed estimate of `key` as of `now` (read-only: stale
    /// buckets are excluded without mutating the ring).
    pub fn estimate(&self, now: SimTime, key: u64) -> u32 {
        self.estimate_at(self.epoch_of(now).max(self.high_epoch), key)
    }

    fn estimate_at(&self, high: u64, key: u64) -> u32 {
        let mut sum = 0u32;
        for bucket in &self.buckets {
            if bucket.epoch != EMPTY_EPOCH && self.live(bucket.epoch, high) {
                sum = sum.saturating_add(bucket.sketch.estimate(key));
            }
        }
        sum
    }

    /// Folds another windowed sketch (same window, ring size, and
    /// per-bucket shape) into this one. Buckets align **by epoch**, not
    /// by ring position: each of the other side's live buckets folds
    /// into the slot its epoch owns under the merged clock, buckets
    /// whose epoch fell behind the merged high-water mark are zeroed —
    /// never folded — and a slot claimed by two different epochs keeps
    /// only the newer one. Rings whose clocks advanced asymmetrically by
    /// `≥ B` buckets therefore merge to exactly the fresher side's live
    /// window, with no stale counts bleeding through.
    ///
    /// # Errors
    ///
    /// Refuses (mutating nothing) if the window, ring size, bucket
    /// shape, or seed differ.
    pub fn try_merge(&mut self, other: &WindowedSketch) -> Result<(), RateMergeError> {
        if self.window != other.window || self.buckets.len() != other.buckets.len() {
            return Err(RateMergeError::ShapeMismatch {
                tracker: "windowed sketch",
            });
        }
        // All buckets of a ring share one shape and seed; checking the
        // first pair up front keeps the merge all-or-nothing.
        self.buckets[0].sketch.mergeable(&other.buckets[0].sketch)?;
        let high = self.high_epoch.max(other.high_epoch);
        let len = self.buckets.len() as u64;
        // Zero every bucket the merged clock has left behind.
        for mine in &mut self.buckets {
            if mine.epoch != EMPTY_EPOCH && !(mine.epoch <= high && high - mine.epoch < len) {
                mine.sketch.clear();
                mine.epoch = EMPTY_EPOCH;
            }
        }
        for theirs in &other.buckets {
            if theirs.epoch == EMPTY_EPOCH || !(theirs.epoch <= high && high - theirs.epoch < len)
            {
                continue;
            }
            let mine = &mut self.buckets[(theirs.epoch % len) as usize];
            if mine.epoch == theirs.epoch {
                mine.sketch.try_merge(&theirs.sketch)?;
            } else if mine.epoch == EMPTY_EPOCH || mine.epoch < theirs.epoch {
                mine.sketch.clone_from(&theirs.sketch);
                mine.epoch = theirs.epoch;
            }
            // mine.epoch > theirs.epoch: theirs is the staler claim on
            // this slot; dropping it keeps dead counts out of the window.
        }
        self.high_epoch = high;
        Ok(())
    }

    /// [`WindowedSketch::try_merge`], panicking on mismatch.
    ///
    /// # Panics
    ///
    /// Panics if the window, ring, bucket shape, or seed differ.
    pub fn merge(&mut self, other: &WindowedSketch) {
        self.try_merge(other).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Bytes pinned by the ring.
    pub fn bytes(&self) -> usize {
        self.buckets.iter().map(|b| b.sketch.bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch() -> WindowedSketch {
        WindowedSketch::new(SimDuration::from_secs(10), 8, 256, 4, 77)
    }

    #[test]
    fn bucket_width_covers_the_window() {
        let w = sketch();
        // ceil(10s / 7) and 7 full epochs span >= the window.
        assert_eq!(w.bucket_width().as_micros(), 1_428_572);
        assert!(w.bucket_width().as_micros() * 7 >= 10_000_000);
    }

    #[test]
    fn counts_within_window_and_forgets_after() {
        let mut w = sketch();
        for s in 0..5 {
            w.observe(SimTime::from_secs(s), 9);
        }
        assert_eq!(w.estimate(SimTime::from_secs(5), 9), 5);
        // All five fall out once the ring rolls well past the window.
        assert_eq!(w.estimate(SimTime::from_secs(40), 9), 0);
        assert_eq!(w.observe(SimTime::from_secs(40), 9), 1);
    }

    #[test]
    fn never_undercounts_the_exact_window() {
        let mut w = sketch();
        let window = SimDuration::from_secs(10);
        let mut times: Vec<SimTime> = Vec::new();
        // Irregular spacing crossing many epoch boundaries.
        for i in 0..100u64 {
            let t = SimTime::from_millis(i * 731);
            times.push(t);
            let est = w.observe(t, 5);
            let exact = times
                .iter()
                .filter(|&&x| t.saturating_since(x) <= window)
                .count() as u32;
            assert!(est >= exact, "undercounted at {t}: {est} < {exact}");
        }
    }

    #[test]
    fn staleness_is_bounded_by_one_bucket() {
        let mut w = sketch();
        let lookback = w.bucket_width() + w.window();
        let mut times: Vec<SimTime> = Vec::new();
        for i in 0..200u64 {
            let t = SimTime::from_millis(i * 317);
            times.push(t);
            let est = w.observe(t, 5);
            // Single key, wide sketch: only quantisation staleness can
            // inflate the count, and only by events within one extra
            // bucket width.
            let loose = times
                .iter()
                .filter(|&&x| t.saturating_since(x) <= lookback)
                .count() as u32;
            assert!(est <= loose, "stale beyond a bucket at {t}");
        }
    }

    #[test]
    fn time_regression_is_clamped() {
        let mut w = sketch();
        w.observe(SimTime::from_secs(5), 1);
        // An out-of-order early frame must not resurrect or shift state.
        assert_eq!(w.observe(SimTime::from_secs(1), 1), 2);
        assert_eq!(w.estimate(SimTime::from_secs(5), 1), 2);
    }

    #[test]
    fn merge_aligns_epochs() {
        let mut a = sketch();
        let mut b = sketch();
        a.observe(SimTime::from_secs(1), 7);
        b.observe(SimTime::from_secs(2), 7);
        b.observe(SimTime::from_secs(2), 8);
        a.merge(&b);
        assert_eq!(a.estimate(SimTime::from_secs(2), 7), 2);
        assert_eq!(a.estimate(SimTime::from_secs(2), 8), 1);
        // A merge with a far-future side drops this side's stale state.
        let mut c = sketch();
        c.observe(SimTime::from_secs(120), 9);
        a.merge(&c);
        assert_eq!(a.estimate(SimTime::from_secs(120), 7), 0);
        assert_eq!(a.estimate(SimTime::from_secs(120), 9), 1);
    }

    #[test]
    fn bytes_are_constant() {
        let mut w = sketch();
        let before = w.bytes();
        for i in 0..50_000u64 {
            w.observe(SimTime::from_millis(i), i);
        }
        assert_eq!(w.bytes(), before);
    }

    /// Two rings advanced asymmetrically by well over `B` buckets, then
    /// merged in both directions: the stale side's counts must vanish
    /// (zeroed, not folded into whatever epoch now owns their slots).
    #[test]
    fn asymmetric_clocks_merge_without_stale_counts() {
        // The ring has 8 buckets of ~1.43s; 200s is > 100 buckets ahead.
        let behind_then = |mut a: WindowedSketch, b: &WindowedSketch| {
            a.merge(b);
            a
        };
        let mut old = sketch();
        for s in 0..5 {
            old.observe(SimTime::from_secs(s), 7);
        }
        let mut new = sketch();
        new.observe(SimTime::from_secs(200), 9);

        // Stale side absorbs fresh side.
        let m = behind_then(old.clone(), &new);
        assert_eq!(m.estimate(SimTime::from_secs(200), 7), 0, "stale counts leaked");
        assert_eq!(m.estimate(SimTime::from_secs(200), 9), 1);

        // Fresh side absorbs stale side.
        let m = behind_then(new.clone(), &old);
        assert_eq!(m.estimate(SimTime::from_secs(200), 7), 0, "stale counts leaked");
        assert_eq!(m.estimate(SimTime::from_secs(200), 9), 1);
    }

    #[test]
    fn try_merge_rejects_mismatches_with_typed_errors() {
        use crate::rate::RateMergeError;
        let mut a = sketch();
        a.observe(SimTime::from_secs(1), 5);
        let wider = WindowedSketch::new(SimDuration::from_secs(20), 8, 256, 4, 77);
        assert_eq!(
            a.try_merge(&wider),
            Err(RateMergeError::ShapeMismatch {
                tracker: "windowed sketch"
            })
        );
        let reseeded = WindowedSketch::new(SimDuration::from_secs(10), 8, 256, 4, 78);
        assert_eq!(
            a.try_merge(&reseeded),
            Err(RateMergeError::SeedMismatch {
                tracker: "count-min sketch"
            })
        );
        assert_eq!(a.estimate(SimTime::from_secs(1), 5), 1);
    }

    /// Plain updates + merge across an arbitrary two-way split equal one
    /// tracker fed the whole stream — including observations that land
    /// on only one side of the split for several epochs.
    #[test]
    fn plain_split_merge_matches_whole_stream() {
        let mut whole = sketch();
        let mut a = sketch();
        let mut b = sketch();
        for i in 0..300u64 {
            let t = SimTime::from_millis(i * 211);
            let key = i % 13;
            whole.observe_plain(t, key);
            if key % 2 == 0 {
                a.observe_plain(t, key);
            } else {
                b.observe_plain(t, key);
            }
        }
        a.merge(&b);
        let now = SimTime::from_millis(300 * 211);
        for key in 0..13u64 {
            assert_eq!(
                a.estimate(now, key),
                whole.estimate(now, key),
                "split/merge diverged for key {key}"
            );
        }
    }
}
