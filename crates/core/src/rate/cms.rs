//! Count-min sketch with conservative update.
//!
//! A `depth × width` grid of `u32` counters. Each key hashes to one
//! counter per row; the frequency estimate is the minimum over its
//! counters, so collisions can only inflate the answer — the sketch
//! **never undercounts**. Conservative update raises each of the key's
//! counters only as far as `estimate + 1`, which keeps collision noise
//! well below the classical bound in practice while preserving the
//! never-undercount guarantee.

use crate::rate::{splitmix64, RateMergeError};

/// A count-min sketch (see module docs).
///
/// # Examples
///
/// ```
/// use scidive_core::rate::CountMinSketch;
///
/// let mut s = CountMinSketch::new(64, 4, 42);
/// assert_eq!(s.observe(7), 1);
/// assert_eq!(s.observe(7), 2);
/// assert_eq!(s.estimate(7), 2);
/// assert_eq!(s.estimate(8), 0);
/// ```
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    width: usize,
    depth: usize,
    seed: u64,
    row_seeds: Vec<u64>,
    counters: Vec<u32>,
}

impl CountMinSketch {
    /// Creates a sketch of `depth` rows of `width` counters (both
    /// clamped to at least 1), hashed with the given seed.
    pub fn new(width: usize, depth: usize, seed: u64) -> CountMinSketch {
        let width = width.max(1);
        let depth = depth.max(1);
        CountMinSketch {
            width,
            depth,
            seed,
            row_seeds: (0..depth as u64).map(|r| splitmix64(seed ^ r)).collect(),
            counters: vec![0; width * depth],
        }
    }

    /// Creates a sketch sized for the classical `(ε, δ)` guarantee:
    /// with `width = ⌈e/ε⌉` and `depth = ⌈ln(1/δ)⌉`, any estimate
    /// exceeds the true count by more than `ε·N` (N = total
    /// observations) with probability at most `δ`.
    pub fn with_error(epsilon: f64, delta: f64, seed: u64) -> CountMinSketch {
        let width = (std::f64::consts::E / epsilon).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil() as usize;
        CountMinSketch::new(width, depth, seed)
    }

    fn slot(&self, row: usize, key: u64) -> usize {
        (splitmix64(key ^ self.row_seeds[row]) % self.width as u64) as usize
    }

    /// Records one occurrence of `key` (conservative update) and
    /// returns the new estimate.
    pub fn observe(&mut self, key: u64) -> u32 {
        let next = self.estimate(key).saturating_add(1);
        for row in 0..self.depth {
            let idx = row * self.width + self.slot(row, key);
            if self.counters[idx] < next {
                self.counters[idx] = next;
            }
        }
        next
    }

    /// Records one occurrence of `key` with the *plain* (non-conservative)
    /// update: every one of the key's counters increments by exactly one.
    /// Looser than [`CountMinSketch::observe`] for a single sketch, but
    /// **partition-independent**: splitting a stream across sketches and
    /// summing them ([`CountMinSketch::try_merge`]) yields cell-for-cell
    /// the same grid as one sketch fed the whole stream — the property
    /// the cross-shard fold plane is built on, and one conservative
    /// update does not have.
    pub fn observe_plain(&mut self, key: u64) {
        for row in 0..self.depth {
            let idx = row * self.width + self.slot(row, key);
            self.counters[idx] = self.counters[idx].saturating_add(1);
        }
    }

    /// The estimated occurrence count of `key`: an upper bound on the
    /// true count.
    pub fn estimate(&self, key: u64) -> u32 {
        (0..self.depth)
            .map(|row| self.counters[row * self.width + self.slot(row, key)])
            .min()
            .unwrap_or(0)
    }

    /// Checks that `other` can merge into this sketch: same grid
    /// dimensions, same seed (otherwise the cells don't line up).
    pub fn mergeable(&self, other: &CountMinSketch) -> Result<(), RateMergeError> {
        if (self.width, self.depth) != (other.width, other.depth) {
            return Err(RateMergeError::ShapeMismatch {
                tracker: "count-min sketch",
            });
        }
        if self.seed != other.seed {
            return Err(RateMergeError::SeedMismatch {
                tracker: "count-min sketch",
            });
        }
        Ok(())
    }

    /// Folds another sketch (same dimensions and seed) into this one by
    /// element-wise saturating addition. The merged sketch still never
    /// undercounts the combined streams, though conservative update's
    /// extra tightness degrades to the plain count-min bound.
    ///
    /// # Errors
    ///
    /// Refuses (mutating nothing) if the dimensions or seed differ.
    pub fn try_merge(&mut self, other: &CountMinSketch) -> Result<(), RateMergeError> {
        self.mergeable(other)?;
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a = a.saturating_add(*b);
        }
        Ok(())
    }

    /// [`CountMinSketch::try_merge`], panicking on mismatch — for
    /// callers that construct both sides and a mismatch is a bug.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions or seed differ.
    pub fn merge(&mut self, other: &CountMinSketch) {
        self.try_merge(other).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Resets every counter to zero.
    pub fn clear(&mut self) {
        self.counters.fill(0);
    }

    /// Whether every counter is zero.
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|&c| c == 0)
    }

    /// Counters per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Bytes pinned by the counter grid.
    pub fn bytes(&self) -> usize {
        self.counters.len() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn with_error_sizes_classically() {
        let s = CountMinSketch::with_error(0.01, 0.01, 1);
        assert_eq!(s.width(), 272); // ceil(e / 0.01)
        assert_eq!(s.depth(), 5); // ceil(ln 100)
        assert_eq!(s.bytes(), 272 * 5 * 4);
    }

    #[test]
    fn never_undercounts_under_heavy_collision() {
        // A deliberately tiny sketch: every key collides.
        let mut s = CountMinSketch::new(4, 2, 99);
        let mut exact: HashMap<u64, u32> = HashMap::new();
        for i in 0..200u64 {
            let key = i % 23;
            *exact.entry(key).or_default() += 1;
            s.observe(key);
        }
        for (key, count) in exact {
            assert!(s.estimate(key) >= count, "undercounted key {key}");
        }
    }

    #[test]
    fn conservative_update_is_exact_without_collisions() {
        let mut s = CountMinSketch::new(4096, 4, 7);
        for _ in 0..100 {
            s.observe(1);
        }
        for _ in 0..3 {
            s.observe(2);
        }
        assert_eq!(s.estimate(1), 100);
        assert_eq!(s.estimate(2), 3);
        assert_eq!(s.estimate(3), 0);
    }

    #[test]
    fn merge_never_undercounts_combined_streams() {
        let mut a = CountMinSketch::new(256, 4, 5);
        let mut b = CountMinSketch::new(256, 4, 5);
        for _ in 0..10 {
            a.observe(42);
        }
        for _ in 0..7 {
            b.observe(42);
        }
        b.observe(43);
        a.merge(&b);
        assert!(a.estimate(42) >= 17);
        assert!(a.estimate(43) >= 1);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn merge_checks_shape() {
        let mut a = CountMinSketch::new(16, 2, 1);
        a.merge(&CountMinSketch::new(16, 3, 1));
    }

    #[test]
    fn try_merge_returns_typed_errors_without_mutating() {
        let mut a = CountMinSketch::new(16, 2, 1);
        a.observe(9);
        assert_eq!(
            a.try_merge(&CountMinSketch::new(32, 2, 1)),
            Err(RateMergeError::ShapeMismatch {
                tracker: "count-min sketch"
            })
        );
        assert_eq!(
            a.try_merge(&CountMinSketch::new(16, 2, 2)),
            Err(RateMergeError::SeedMismatch {
                tracker: "count-min sketch"
            })
        );
        assert_eq!(a.estimate(9), 1, "a failed merge must not mutate");
    }

    #[test]
    fn plain_update_is_partition_independent() {
        // One sketch fed the whole stream vs. the sum of two sketches fed
        // an arbitrary split: cell-for-cell identical grids, hence
        // identical estimates — the fold-plane invariant.
        let mut whole = CountMinSketch::new(32, 3, 11);
        let mut left = CountMinSketch::new(32, 3, 11);
        let mut right = CountMinSketch::new(32, 3, 11);
        for i in 0..500u64 {
            let key = splitmix64(i) % 40;
            whole.observe_plain(key);
            if i % 3 == 0 {
                left.observe_plain(key);
            } else {
                right.observe_plain(key);
            }
        }
        left.merge(&right);
        assert_eq!(whole.counters, left.counters);
    }

    #[test]
    fn clear_resets() {
        let mut s = CountMinSketch::new(16, 2, 1);
        s.observe(9);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.estimate(9), 0);
    }
}
