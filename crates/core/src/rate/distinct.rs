//! Windowed distinct-item estimation: HLL-style registers per key
//! slot, windowed by the same epoch ring as
//! [`crate::rate::WindowedSketch`].
//!
//! Keys partition into `slots` by hash; each slot owns `registers`
//! one-byte HLL registers per ring bucket. An observation writes the
//! item's rank into the current bucket's register; a query unions (by
//! register max) the live buckets of the key's slot and applies the
//! HyperLogLog estimator with the linear-counting small-range
//! correction. Two properties matter for the detections built on top:
//!
//! * **Small counts are exact** while the observed items occupy
//!   distinct registers — linear counting `m·ln(m/V)` rounds to exactly
//!   `n` for `n ≪ m`. Guess-threshold crossings (3 distinct digest
//!   responses against 1024 registers) live in this regime.
//! * **Errors only inflate.** Keys sharing a slot pool their items, and
//!   ring quantisation can retain items up to one epoch past the
//!   window; both push the estimate up, never down — so a threshold
//!   crossing is never missed, matching the count-min direction.

use crate::rate::{splitmix64, RateMergeError};
use scidive_netsim::time::{SimDuration, SimTime};

const EMPTY_EPOCH: u64 = u64::MAX;

/// A windowed per-key distinct estimator (see module docs).
///
/// # Examples
///
/// ```
/// use scidive_core::rate::WindowedDistinct;
/// use scidive_netsim::time::{SimDuration, SimTime};
///
/// let mut d = WindowedDistinct::new(SimDuration::from_secs(30), 6, 32, 1024, 1);
/// let now = SimTime::from_secs(1);
/// assert_eq!(d.observe(now, 7, 100), 1);
/// assert_eq!(d.observe(now, 7, 101), 2);
/// assert_eq!(d.observe(now, 7, 100), 2); // repeat item
/// ```
#[derive(Debug, Clone)]
pub struct WindowedDistinct {
    window: SimDuration,
    bucket_width_us: u64,
    slots: usize,
    registers: usize,
    reg_bits: u32,
    seed: u64,
    high_epoch: u64,
    /// Epoch owned by each ring bucket ([`EMPTY_EPOCH`] = unused).
    epochs: Vec<u64>,
    /// Registers laid out `[bucket][slot][register]`.
    regs: Vec<u8>,
}

impl WindowedDistinct {
    /// Creates an estimator over `window` with `buckets` ring slots
    /// (min 2), `slots` key partitions (min 1) and `registers` HLL
    /// registers per partition (rounded up to a power of two, min 16).
    pub fn new(
        window: SimDuration,
        buckets: usize,
        slots: usize,
        registers: usize,
        seed: u64,
    ) -> WindowedDistinct {
        let buckets = buckets.max(2);
        let slots = slots.max(1);
        let registers = registers.next_power_of_two().max(16);
        WindowedDistinct {
            window,
            bucket_width_us: window.as_micros().div_ceil(buckets as u64 - 1).max(1),
            slots,
            registers,
            reg_bits: registers.trailing_zeros(),
            seed,
            high_epoch: 0,
            epochs: vec![EMPTY_EPOCH; buckets],
            regs: vec![0; buckets * slots * registers],
        }
    }

    /// The configured window.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    fn epoch_of(&self, now: SimTime) -> u64 {
        now.as_micros() / self.bucket_width_us
    }

    fn live(&self, epoch: u64, high: u64) -> bool {
        epoch != EMPTY_EPOCH && epoch <= high && high - epoch < self.epochs.len() as u64
    }

    fn slot_of(&self, key: u64) -> usize {
        (splitmix64(key ^ self.seed) % self.slots as u64) as usize
    }

    fn region(&self, bucket: usize, slot: usize) -> usize {
        (bucket * self.slots + slot) * self.registers
    }

    /// Rolls the ring forward to `now`'s epoch, zeroing buckets that
    /// fell out of the live range (time regressions clamp to the
    /// high-water epoch).
    pub fn advance(&mut self, now: SimTime) {
        let e = self.epoch_of(now).max(self.high_epoch);
        if e == self.high_epoch {
            return;
        }
        let len = self.epochs.len() as u64;
        for b in 0..self.epochs.len() {
            let epoch = self.epochs[b];
            if epoch != EMPTY_EPOCH && !(epoch <= e && e - epoch < len) {
                let start = self.region(b, 0);
                self.regs[start..start + self.slots * self.registers].fill(0);
                self.epochs[b] = EMPTY_EPOCH;
            }
        }
        self.high_epoch = e;
    }

    /// Records `item` under `key` at `now` and returns the key's new
    /// windowed distinct estimate.
    pub fn observe(&mut self, now: SimTime, key: u64, item: u64) -> u32 {
        self.advance(now);
        let e = self.high_epoch;
        let bucket = (e % self.epochs.len() as u64) as usize;
        if self.epochs[bucket] != e {
            let start = self.region(bucket, 0);
            self.regs[start..start + self.slots * self.registers].fill(0);
            self.epochs[bucket] = e;
        }
        let slot = self.slot_of(key);
        let h = splitmix64(item.wrapping_add(splitmix64(self.seed ^ key)));
        let idx = (h & (self.registers as u64 - 1)) as usize;
        let w = h >> self.reg_bits;
        let rho = if w == 0 {
            (64 - self.reg_bits + 1) as u8
        } else {
            (w.trailing_zeros() + 1) as u8
        };
        let at = self.region(bucket, slot) + idx;
        if self.regs[at] < rho {
            self.regs[at] = rho;
        }
        self.estimate_at(e, key)
    }

    /// The key's windowed distinct estimate as of `now` (read-only).
    pub fn estimate(&self, now: SimTime, key: u64) -> u32 {
        self.estimate_at(self.epoch_of(now).max(self.high_epoch), key)
    }

    fn estimate_at(&self, high: u64, key: u64) -> u32 {
        let slot = self.slot_of(key);
        let m = self.registers;
        let mut zeros = 0usize;
        let mut denom = 0f64;
        for j in 0..m {
            let mut r = 0u8;
            for b in 0..self.epochs.len() {
                if self.live(self.epochs[b], high) {
                    r = r.max(self.regs[self.region(b, slot) + j]);
                }
            }
            if r == 0 {
                zeros += 1;
            }
            denom += (-(f64::from(r))).exp2();
        }
        let m_f = m as f64;
        if zeros > 0 {
            // Linear counting: exact for small cardinalities while
            // registers stay collision free.
            (m_f * (m_f / zeros as f64).ln()).round() as u32
        } else {
            let alpha = 0.7213 / (1.0 + 1.079 / m_f);
            (alpha * m_f * m_f / denom).round() as u32
        }
    }

    /// Folds another estimator (same shape and seed) into this one.
    /// Ring buckets align **by epoch**, not position: each of the other
    /// side's live buckets unions (by register max — HLL unions are
    /// lossless, so the merged estimate equals the estimate of the
    /// combined streams) into the slot its epoch owns under the merged
    /// clock; buckets behind the merged high-water mark are zeroed, and
    /// a slot claimed by two different epochs keeps only the newer one.
    ///
    /// # Errors
    ///
    /// Refuses (mutating nothing) if the window, shape, or seed differ.
    pub fn try_merge(&mut self, other: &WindowedDistinct) -> Result<(), RateMergeError> {
        if (self.window, self.slots, self.registers, self.epochs.len())
            != (other.window, other.slots, other.registers, other.epochs.len())
        {
            return Err(RateMergeError::ShapeMismatch {
                tracker: "distinct estimator",
            });
        }
        if self.seed != other.seed {
            return Err(RateMergeError::SeedMismatch {
                tracker: "distinct estimator",
            });
        }
        let high = self.high_epoch.max(other.high_epoch);
        let len = self.epochs.len() as u64;
        let span = self.slots * self.registers;
        // Zero every bucket the merged clock has left behind.
        for b in 0..self.epochs.len() {
            let epoch = self.epochs[b];
            if epoch != EMPTY_EPOCH && !(epoch <= high && high - epoch < len) {
                self.regs[b * span..(b + 1) * span].fill(0);
                self.epochs[b] = EMPTY_EPOCH;
            }
        }
        for ob in 0..other.epochs.len() {
            let epoch = other.epochs[ob];
            if !(epoch != EMPTY_EPOCH && epoch <= high && high - epoch < len) {
                continue;
            }
            let b = (epoch % len) as usize;
            let src = &other.regs[ob * span..(ob + 1) * span];
            let dst = &mut self.regs[b * span..(b + 1) * span];
            if self.epochs[b] == epoch {
                for (d, &s) in dst.iter_mut().zip(src) {
                    if *d < s {
                        *d = s;
                    }
                }
            } else if self.epochs[b] == EMPTY_EPOCH || self.epochs[b] < epoch {
                dst.copy_from_slice(src);
                self.epochs[b] = epoch;
            }
            // self.epochs[b] > epoch: theirs is the staler claim on this
            // slot; dropping it keeps dead registers out of the window.
        }
        self.high_epoch = high;
        Ok(())
    }

    /// [`WindowedDistinct::try_merge`], panicking on mismatch.
    ///
    /// # Panics
    ///
    /// Panics if the window, shape, or seed differ.
    pub fn merge(&mut self, other: &WindowedDistinct) {
        self.try_merge(other).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Bytes pinned by the register file and ring bookkeeping.
    pub fn bytes(&self) -> usize {
        self.regs.len() + self.epochs.len() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn estimator() -> WindowedDistinct {
        WindowedDistinct::new(SimDuration::from_secs(30), 6, 32, 1024, 3)
    }

    #[test]
    fn small_counts_are_exact() {
        let mut d = estimator();
        let now = SimTime::from_secs(1);
        let mut seen = HashSet::new();
        for item in 0..20u64 {
            seen.insert(item);
            let est = d.observe(now, 9, item);
            assert_eq!(est, seen.len() as u32, "inexact at n={}", seen.len());
            // Repeats never move the estimate.
            assert_eq!(d.observe(now, 9, item), est);
        }
    }

    #[test]
    fn keys_are_windowed_independently() {
        let mut d = estimator();
        let t0 = SimTime::from_secs(1);
        d.observe(t0, 1, 100);
        d.observe(t0, 1, 101);
        d.observe(t0, 2, 100);
        assert_eq!(d.estimate(t0, 1), 2);
        assert_eq!(d.estimate(t0, 2), 1);
        // Outside the window everything is forgotten.
        let later = SimTime::from_secs(120);
        assert_eq!(d.estimate(later, 1), 0);
        assert_eq!(d.observe(later, 1, 100), 1);
    }

    #[test]
    fn estimate_tracks_large_cardinalities_approximately() {
        let mut d = estimator();
        let now = SimTime::from_secs(1);
        let mut est = 0;
        for item in 0..5_000u64 {
            est = d.observe(now, 4, item);
        }
        let err = (f64::from(est) - 5_000.0).abs() / 5_000.0;
        assert!(err < 0.15, "estimate {est} off by {err:.2}");
    }

    #[test]
    fn merge_equals_union() {
        let mut a = estimator();
        let mut b = estimator();
        let now = SimTime::from_secs(2);
        for item in 0..6u64 {
            a.observe(now, 5, item);
        }
        for item in 4..10u64 {
            b.observe(now, 5, item);
        }
        a.merge(&b);
        assert_eq!(a.estimate(now, 5), 10);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn merge_checks_shape() {
        let mut a = estimator();
        a.merge(&WindowedDistinct::new(
            SimDuration::from_secs(30),
            6,
            32,
            512,
            3,
        ));
    }

    /// Two estimators advanced asymmetrically by well over `B` buckets,
    /// merged both directions: the stale side's registers must be
    /// zeroed, never unioned into the fresh window.
    #[test]
    fn asymmetric_clocks_merge_without_stale_registers() {
        let mut old = estimator();
        let t0 = SimTime::from_secs(1);
        for item in 0..5u64 {
            old.observe(t0, 7, item);
        }
        let mut fresh = estimator();
        // 6 buckets of 6s: 600s is ~100 buckets ahead of t0.
        let later = SimTime::from_secs(600);
        fresh.observe(later, 7, 99);

        let mut m = old.clone();
        m.merge(&fresh);
        assert_eq!(m.estimate(later, 7), 1, "stale registers leaked");

        let mut m = fresh.clone();
        m.merge(&old);
        assert_eq!(m.estimate(later, 7), 1, "stale registers leaked");
    }

    #[test]
    fn try_merge_rejects_mismatches_with_typed_errors() {
        use crate::rate::RateMergeError;
        let mut a = estimator();
        a.observe(SimTime::from_secs(1), 7, 1);
        assert_eq!(
            a.try_merge(&WindowedDistinct::new(SimDuration::from_secs(30), 6, 32, 512, 3)),
            Err(RateMergeError::ShapeMismatch {
                tracker: "distinct estimator"
            })
        );
        assert_eq!(
            a.try_merge(&WindowedDistinct::new(SimDuration::from_secs(30), 6, 32, 1024, 4)),
            Err(RateMergeError::SeedMismatch {
                tracker: "distinct estimator"
            })
        );
        assert_eq!(a.estimate(SimTime::from_secs(1), 7), 1);
    }

    #[test]
    fn bytes_are_constant() {
        let mut d = estimator();
        let before = d.bytes();
        for i in 0..20_000u64 {
            d.observe(SimTime::from_millis(i * 7), i % 100, i);
        }
        assert_eq!(d.bytes(), before);
    }
}
