//! The event vocabulary (paper §3.1).
//!
//! "The Event Generator maps footprints into a single event. ... It
//! helps performance by hiding some computationally expensive matching,
//! e.g., by triggering the ruleset at the moment of interest instead of
//! triggering it upon each incoming RTP Footprint."
//!
//! This module defines the *vocabulary* the rule engine matches on —
//! [`EventClass`], [`Event`], [`EventKind`], [`FlowKey`] and the
//! generator's [`EventGenConfig`]. The generation machinery itself (the
//! [`EventGenerator`], the [`IdentityPlane`], and the per-protocol
//! handlers) lives in [`crate::proto`], one module per protocol, and is
//! re-exported here so existing import paths keep working.

use crate::trail::SessionKey;
use scidive_netsim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

pub use crate::proto::{EventGenerator, IdentityPlane};

/// Identifies an RTP (or garbage) flow towards a media sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowKey {
    /// Claimed source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Destination port.
    pub dst_port: u16,
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}:{}", self.src, self.dst, self.dst_port)
    }
}

/// The class of an event, used by rules for matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EventClass {
    /// A call reached the established state.
    CallEstablished,
    /// A BYE was observed tearing a session down.
    CallTornDown,
    /// A re-INVITE moved a session's media target.
    CallRedirected,
    /// RTP from the teardown's claimed sender after the BYE.
    OrphanRtpAfterBye,
    /// RTP from the old endpoint after a re-INVITE claimed it moved.
    OrphanRtpAfterRedirect,
    /// Consecutive sequence numbers differ by more than the threshold.
    RtpSeqViolation,
    /// RTP towards a session sink from an address outside the session.
    RtpUnknownSource,
    /// Undecodable bytes aimed at a known media sink.
    MediaPortGarbage,
    /// A SIP message that is not correctly formatted.
    SipMalformed,
    /// An instant message whose source does not match its claimed sender.
    ImSourceMismatch,
    /// Any instant message observed on a non-relay leg (cooperative
    /// detection correlates these across detectors).
    ImObserved,
    /// Repeated SIP requests / 4xx churn beyond the flood threshold.
    RegisterFlood,
    /// Many distinct digest responses for one identity: brute force.
    PasswordGuessing,
    /// An accounting transaction with no matching SIP call setup.
    AcctMismatch,
    /// First packet of a media flow within a session.
    RtpFlowActive,
    /// RTP from an SSRC continuing after that SSRC's RTCP BYE.
    RtpAfterRtcpBye,
    /// Extension class 0, claimable by out-of-core protocol modules via
    /// [`EventKind::Protocol`].
    Ext0,
    /// Extension class 1 (see [`EventClass::Ext0`]).
    Ext1,
    /// Extension class 2 (see [`EventClass::Ext0`]).
    Ext2,
    /// Extension class 3 (see [`EventClass::Ext0`]).
    Ext3,
}

impl EventClass {
    /// Number of event classes. The enum is fieldless with default
    /// discriminants, so `class as usize` is a valid index in
    /// `0..COUNT` — the basis of the compiled rule dispatch table.
    pub const COUNT: usize = 20;

    /// All classes, for spec parsing and enumeration, in discriminant
    /// order (`ALL[i] as usize == i`).
    pub const ALL: [EventClass; 20] = [
        EventClass::CallEstablished,
        EventClass::CallTornDown,
        EventClass::CallRedirected,
        EventClass::OrphanRtpAfterBye,
        EventClass::OrphanRtpAfterRedirect,
        EventClass::RtpSeqViolation,
        EventClass::RtpUnknownSource,
        EventClass::MediaPortGarbage,
        EventClass::SipMalformed,
        EventClass::ImSourceMismatch,
        EventClass::ImObserved,
        EventClass::RegisterFlood,
        EventClass::PasswordGuessing,
        EventClass::AcctMismatch,
        EventClass::RtpFlowActive,
        EventClass::RtpAfterRtcpBye,
        EventClass::Ext0,
        EventClass::Ext1,
        EventClass::Ext2,
        EventClass::Ext3,
    ];

    /// The class's canonical name (its variant name).
    pub fn name(self) -> &'static str {
        match self {
            EventClass::CallEstablished => "CallEstablished",
            EventClass::CallTornDown => "CallTornDown",
            EventClass::CallRedirected => "CallRedirected",
            EventClass::OrphanRtpAfterBye => "OrphanRtpAfterBye",
            EventClass::OrphanRtpAfterRedirect => "OrphanRtpAfterRedirect",
            EventClass::RtpSeqViolation => "RtpSeqViolation",
            EventClass::RtpUnknownSource => "RtpUnknownSource",
            EventClass::MediaPortGarbage => "MediaPortGarbage",
            EventClass::SipMalformed => "SipMalformed",
            EventClass::ImSourceMismatch => "ImSourceMismatch",
            EventClass::ImObserved => "ImObserved",
            EventClass::RegisterFlood => "RegisterFlood",
            EventClass::PasswordGuessing => "PasswordGuessing",
            EventClass::AcctMismatch => "AcctMismatch",
            EventClass::RtpFlowActive => "RtpFlowActive",
            EventClass::RtpAfterRtcpBye => "RtpAfterRtcpBye",
            EventClass::Ext0 => "Ext0",
            EventClass::Ext1 => "Ext1",
            EventClass::Ext2 => "Ext2",
            EventClass::Ext3 => "Ext3",
        }
    }

    /// Parses a class by its canonical name (case-insensitive).
    pub fn parse_name(name: &str) -> Option<EventClass> {
        EventClass::ALL
            .into_iter()
            .find(|c| c.name().eq_ignore_ascii_case(name))
    }
}

/// A generated event: the unit the rule engine matches on.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// When the triggering footprint was observed.
    pub time: SimTime,
    /// The owning session, when the event is session-scoped.
    pub session: Option<SessionKey>,
    /// The event payload.
    pub kind: EventKind,
}

impl Event {
    /// The event's class.
    pub fn class(&self) -> EventClass {
        self.kind.class()
    }
}

/// Event payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// See [`EventClass::CallEstablished`].
    CallEstablished {
        /// Caller AOR.
        caller: String,
        /// Callee AOR.
        callee: String,
    },
    /// See [`EventClass::CallTornDown`].
    CallTornDown {
        /// Who the BYE claims sent it.
        by_aor: String,
        /// That side's media address, if negotiated.
        by_media_ip: Option<Ipv4Addr>,
    },
    /// See [`EventClass::CallRedirected`].
    CallRedirected {
        /// Who the re-INVITE claims moved.
        claimed_aor: String,
        /// The endpoint being abandoned.
        old_target: (Ipv4Addr, u16),
        /// The new media target.
        new_target: (Ipv4Addr, u16),
    },
    /// See [`EventClass::OrphanRtpAfterBye`].
    OrphanRtpAfterBye {
        /// The continuing flow.
        flow: FlowKey,
        /// Time since the BYE.
        gap: SimDuration,
    },
    /// See [`EventClass::OrphanRtpAfterRedirect`].
    OrphanRtpAfterRedirect {
        /// The continuing flow.
        flow: FlowKey,
        /// Time since the re-INVITE.
        gap: SimDuration,
    },
    /// See [`EventClass::RtpSeqViolation`].
    RtpSeqViolation {
        /// The offending flow.
        flow: FlowKey,
        /// The sequence delta observed.
        delta: i32,
    },
    /// See [`EventClass::RtpUnknownSource`].
    RtpUnknownSource {
        /// The offending flow.
        flow: FlowKey,
    },
    /// See [`EventClass::MediaPortGarbage`].
    MediaPortGarbage {
        /// The targeted sink.
        sink: (Ipv4Addr, u16),
        /// Why it did not decode.
        reason: String,
    },
    /// See [`EventClass::SipMalformed`].
    SipMalformed {
        /// The format violations found.
        violations: Vec<String>,
        /// Source of the message.
        src: Ipv4Addr,
    },
    /// See [`EventClass::ImSourceMismatch`].
    ImSourceMismatch {
        /// The identity the message claims.
        claimed_aor: String,
        /// Where it actually came from.
        src_ip: Ipv4Addr,
        /// Where that identity was last seen.
        expected_ip: Ipv4Addr,
    },
    /// See [`EventClass::ImObserved`].
    ImObserved {
        /// The identity the message claims.
        claimed_aor: String,
        /// Network source of the leg.
        src_ip: Ipv4Addr,
        /// Network destination of the leg.
        dst_ip: Ipv4Addr,
        /// The message's Call-ID (the cross-detector join key).
        call_id: String,
    },
    /// See [`EventClass::RegisterFlood`].
    RegisterFlood {
        /// The flooding source (unspecified in stateless mode).
        src: Ipv4Addr,
        /// Request/4xx alternations counted in the window.
        count: u32,
    },
    /// See [`EventClass::PasswordGuessing`].
    PasswordGuessing {
        /// The guessing source.
        src: Ipv4Addr,
        /// The identity under attack.
        username: String,
        /// Distinct digest responses tried.
        distinct_responses: u32,
    },
    /// See [`EventClass::AcctMismatch`].
    AcctMismatch {
        /// Who the billing system is charging.
        billed: String,
        /// Who the SIP trail says initiated the call, if anyone.
        observed_caller: Option<String>,
        /// The billed Call-ID.
        call_id: String,
    },
    /// See [`EventClass::RtpFlowActive`].
    RtpFlowActive {
        /// The new flow.
        flow: FlowKey,
    },
    /// See [`EventClass::RtpAfterRtcpBye`].
    RtpAfterRtcpBye {
        /// The continuing flow.
        flow: FlowKey,
        /// The SSRC that said goodbye.
        ssrc: u32,
        /// Time since the RTCP BYE.
        gap: SimDuration,
    },
    /// An event emitted by an extension protocol module, carried on one
    /// of the [`EventClass::Ext0`]..[`EventClass::Ext3`] classes so
    /// rules can subscribe to it through the compiled dispatch table
    /// without core knowing the protocol.
    Protocol {
        /// The extension class the module claimed.
        class: EventClass,
        /// A stable, machine-matchable signal name (rules match on
        /// this, not on the detail text).
        signal: &'static str,
        /// Human-readable detail for alert messages.
        detail: String,
    },
}

/// A field value extracted from an [`EventKind`] payload by name, for
/// operator-rule predicates ([`crate::rules::dsl`]). Borrowed where the
/// payload owns a string so extraction never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FieldValue<'a> {
    /// Numeric payload (counts, deltas, ports, millisecond gaps).
    Int(i64),
    /// Text payload (AORs, usernames, call IDs, detail strings).
    Str(&'a str),
    /// Address payload.
    Ip(Ipv4Addr),
}

impl EventKind {
    /// The matchable field names of a class, for spec validation. Every
    /// name here is extractable via [`EventKind::field`] on a payload of
    /// the class (optional payloads may still yield `None` at runtime).
    pub fn field_names(class: EventClass) -> &'static [&'static str] {
        const FLOW: [&str; 3] = ["flow.src", "flow.dst", "flow.dst_port"];
        match class {
            EventClass::CallEstablished => &["caller", "callee"],
            EventClass::CallTornDown => &["by_aor", "by_media_ip"],
            EventClass::CallRedirected => &["claimed_aor"],
            EventClass::OrphanRtpAfterBye | EventClass::OrphanRtpAfterRedirect => {
                &["flow.src", "flow.dst", "flow.dst_port", "gap_ms"]
            }
            EventClass::RtpSeqViolation => &["flow.src", "flow.dst", "flow.dst_port", "delta"],
            EventClass::RtpUnknownSource | EventClass::RtpFlowActive => &FLOW,
            EventClass::MediaPortGarbage => &["reason"],
            EventClass::SipMalformed => &["src", "violations"],
            EventClass::ImSourceMismatch => &["claimed_aor", "src_ip", "expected_ip"],
            EventClass::ImObserved => &["claimed_aor", "src_ip", "dst_ip", "call_id"],
            EventClass::RegisterFlood => &["src", "count"],
            EventClass::PasswordGuessing => &["src", "username", "distinct_responses"],
            EventClass::AcctMismatch => &["billed", "observed_caller", "call_id"],
            EventClass::RtpAfterRtcpBye => {
                &["flow.src", "flow.dst", "flow.dst_port", "ssrc", "gap_ms"]
            }
            EventClass::Ext0 | EventClass::Ext1 | EventClass::Ext2 | EventClass::Ext3 => {
                &["signal", "detail"]
            }
        }
    }

    /// Extracts a named field from this payload. Returns `None` when the
    /// name does not belong to this class, or when an optional payload
    /// (e.g. `CallTornDown.by_media_ip`) is absent — a predicate on an
    /// absent field simply does not match.
    pub fn field(&self, name: &str) -> Option<FieldValue<'_>> {
        fn flow(f: &FlowKey, name: &str) -> Option<FieldValue<'static>> {
            match name {
                "flow.src" => Some(FieldValue::Ip(f.src)),
                "flow.dst" => Some(FieldValue::Ip(f.dst)),
                "flow.dst_port" => Some(FieldValue::Int(i64::from(f.dst_port))),
                _ => None,
            }
        }
        fn gap_ms(g: &SimDuration) -> FieldValue<'static> {
            FieldValue::Int(g.as_micros() as i64 / 1000)
        }
        match (self, name) {
            (EventKind::CallEstablished { caller, .. }, "caller") => {
                Some(FieldValue::Str(caller))
            }
            (EventKind::CallEstablished { callee, .. }, "callee") => {
                Some(FieldValue::Str(callee))
            }
            (EventKind::CallTornDown { by_aor, .. }, "by_aor") => Some(FieldValue::Str(by_aor)),
            (EventKind::CallTornDown { by_media_ip, .. }, "by_media_ip") => {
                by_media_ip.map(FieldValue::Ip)
            }
            (EventKind::CallRedirected { claimed_aor, .. }, "claimed_aor") => {
                Some(FieldValue::Str(claimed_aor))
            }
            (EventKind::OrphanRtpAfterBye { gap, .. }, "gap_ms")
            | (EventKind::OrphanRtpAfterRedirect { gap, .. }, "gap_ms")
            | (EventKind::RtpAfterRtcpBye { gap, .. }, "gap_ms") => Some(gap_ms(gap)),
            (EventKind::OrphanRtpAfterBye { flow: f, .. }, _)
            | (EventKind::OrphanRtpAfterRedirect { flow: f, .. }, _)
            | (EventKind::RtpSeqViolation { flow: f, .. }, _)
            | (EventKind::RtpUnknownSource { flow: f }, _)
            | (EventKind::RtpFlowActive { flow: f }, _)
            | (EventKind::RtpAfterRtcpBye { flow: f, .. }, _)
                if name.starts_with("flow.") =>
            {
                flow(f, name)
            }
            (EventKind::RtpSeqViolation { delta, .. }, "delta") => {
                Some(FieldValue::Int(i64::from(*delta)))
            }
            (EventKind::MediaPortGarbage { reason, .. }, "reason") => {
                Some(FieldValue::Str(reason))
            }
            (EventKind::SipMalformed { src, .. }, "src") => Some(FieldValue::Ip(*src)),
            (EventKind::SipMalformed { violations, .. }, "violations") => {
                Some(FieldValue::Int(violations.len() as i64))
            }
            (EventKind::ImSourceMismatch { claimed_aor, .. }, "claimed_aor")
            | (EventKind::ImObserved { claimed_aor, .. }, "claimed_aor") => {
                Some(FieldValue::Str(claimed_aor))
            }
            (EventKind::ImSourceMismatch { src_ip, .. }, "src_ip")
            | (EventKind::ImObserved { src_ip, .. }, "src_ip") => Some(FieldValue::Ip(*src_ip)),
            (EventKind::ImSourceMismatch { expected_ip, .. }, "expected_ip") => {
                Some(FieldValue::Ip(*expected_ip))
            }
            (EventKind::ImObserved { dst_ip, .. }, "dst_ip") => Some(FieldValue::Ip(*dst_ip)),
            (EventKind::ImObserved { call_id, .. }, "call_id")
            | (EventKind::AcctMismatch { call_id, .. }, "call_id") => {
                Some(FieldValue::Str(call_id))
            }
            (EventKind::RegisterFlood { src, .. }, "src")
            | (EventKind::PasswordGuessing { src, .. }, "src") => Some(FieldValue::Ip(*src)),
            (EventKind::RegisterFlood { count, .. }, "count") => {
                Some(FieldValue::Int(i64::from(*count)))
            }
            (EventKind::PasswordGuessing { username, .. }, "username") => {
                Some(FieldValue::Str(username))
            }
            (EventKind::PasswordGuessing { distinct_responses, .. }, "distinct_responses") => {
                Some(FieldValue::Int(i64::from(*distinct_responses)))
            }
            (EventKind::AcctMismatch { billed, .. }, "billed") => Some(FieldValue::Str(billed)),
            (EventKind::AcctMismatch { observed_caller, .. }, "observed_caller") => {
                observed_caller.as_deref().map(FieldValue::Str)
            }
            (EventKind::RtpAfterRtcpBye { ssrc, .. }, "ssrc") => {
                Some(FieldValue::Int(i64::from(*ssrc)))
            }
            (EventKind::Protocol { signal, .. }, "signal") => Some(FieldValue::Str(signal)),
            (EventKind::Protocol { detail, .. }, "detail") => Some(FieldValue::Str(detail)),
            _ => None,
        }
    }

    /// The class of this payload.
    pub fn class(&self) -> EventClass {
        match self {
            EventKind::CallEstablished { .. } => EventClass::CallEstablished,
            EventKind::CallTornDown { .. } => EventClass::CallTornDown,
            EventKind::CallRedirected { .. } => EventClass::CallRedirected,
            EventKind::OrphanRtpAfterBye { .. } => EventClass::OrphanRtpAfterBye,
            EventKind::OrphanRtpAfterRedirect { .. } => EventClass::OrphanRtpAfterRedirect,
            EventKind::RtpSeqViolation { .. } => EventClass::RtpSeqViolation,
            EventKind::RtpUnknownSource { .. } => EventClass::RtpUnknownSource,
            EventKind::MediaPortGarbage { .. } => EventClass::MediaPortGarbage,
            EventKind::SipMalformed { .. } => EventClass::SipMalformed,
            EventKind::ImSourceMismatch { .. } => EventClass::ImSourceMismatch,
            EventKind::ImObserved { .. } => EventClass::ImObserved,
            EventKind::RegisterFlood { .. } => EventClass::RegisterFlood,
            EventKind::PasswordGuessing { .. } => EventClass::PasswordGuessing,
            EventKind::AcctMismatch { .. } => EventClass::AcctMismatch,
            EventKind::RtpFlowActive { .. } => EventClass::RtpFlowActive,
            EventKind::RtpAfterRtcpBye { .. } => EventClass::RtpAfterRtcpBye,
            EventKind::Protocol { class, .. } => *class,
        }
    }
}

/// Event-generator configuration.
#[derive(Debug, Clone)]
pub struct EventGenConfig {
    /// The monitoring window `m` of §4.3: how long after a BYE/re-INVITE
    /// orphan media still triggers an event.
    pub monitor_window: SimDuration,
    /// The §4.2.4 sequence-jump threshold ("difference greater than
    /// 100").
    pub seq_jump_threshold: i32,
    /// Sliding window for REGISTER-flood counting.
    pub flood_window: SimDuration,
    /// Request/4xx alternations within the window that mean a flood.
    pub flood_threshold: u32,
    /// Sliding window for password-guess counting.
    pub guess_window: SimDuration,
    /// Distinct digest responses within the window that mean guessing.
    pub guess_threshold: u32,
    /// Fastest plausible legitimate mobility: identity-to-IP changes
    /// quicker than this are suspicious (§4.2.2 "rate of user mobility").
    pub im_mobility_interval: SimDuration,
    /// Grace period after an RTCP BYE during which already-in-flight
    /// media is not treated as an anomaly. A source emits its RTCP BYE
    /// at the instant it stops, so frames sent just before are still on
    /// the wire — unlike the SIP BYE case, where well-behaved clients
    /// stop media a beat earlier (and where the paper's P_f model
    /// deliberately keeps the race).
    pub rtcp_bye_grace: SimDuration,
    /// Known relays (proxies, accounting) whose source addresses do not
    /// identify the originating user.
    pub infrastructure_ips: Vec<Ipv4Addr>,
    /// Stateful detection: keep per-source / per-identity state. When
    /// disabled, registration and IM tracking degrade to the global,
    /// session-unaware counting a stateless matcher would do (§3.3).
    pub stateful: bool,
    /// Cross-protocol detection: correlate SIP/RTP/accounting trails.
    /// When disabled, no orphan-flow or billing-mismatch events exist.
    pub cross_protocol: bool,
    /// Exact per-key rate state (timestamp queues) versus constant-memory
    /// sketches ([`crate::rate`]). Exact is the reference; sketch mode
    /// bounds identity-plane memory independent of the source population.
    pub exact_rate_state: bool,
    /// Dimensioning for the sketch structures (used for shadow
    /// divergence tracking even in exact mode).
    pub rate: crate::rate::RateConfig,
    /// Idle expiry for identity-plane bookkeeping (learned AOR→IP
    /// bindings and drained rate windows). Far above
    /// `im_mobility_interval`, so expiring an idle binding never turns a
    /// plausible re-registration into a mismatch.
    pub identity_timeout: SimDuration,
    /// Idle expiry for per-session dialog state in the
    /// [`crate::proto::SessionPlane`]. A session with no footprint for
    /// this long reads as absent on its next access (and is reclaimed by
    /// a quarter-timeout background sweep). Far above `monitor_window`,
    /// so expiry never races an armed orphan-media watch; a dialog
    /// genuinely idle this long has long since left every window the
    /// rules care about.
    pub session_timeout: SimDuration,
}

impl Default for EventGenConfig {
    fn default() -> EventGenConfig {
        EventGenConfig {
            monitor_window: SimDuration::from_millis(200),
            seq_jump_threshold: 100,
            flood_window: SimDuration::from_secs(10),
            flood_threshold: 10,
            guess_window: SimDuration::from_secs(30),
            guess_threshold: 3,
            im_mobility_interval: SimDuration::from_secs(60),
            rtcp_bye_grace: SimDuration::from_millis(5),
            infrastructure_ips: Vec::new(),
            stateful: true,
            cross_protocol: true,
            exact_rate_state: true,
            rate: crate::rate::RateConfig::default(),
            identity_timeout: SimDuration::from_secs(600),
            session_timeout: SimDuration::from_secs(600),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_discriminants_index_all() {
        for (i, class) in EventClass::ALL.into_iter().enumerate() {
            assert_eq!(class as usize, i);
            assert_eq!(EventClass::parse_name(class.name()), Some(class));
        }
        assert_eq!(EventClass::ALL.len(), EventClass::COUNT);
    }

    #[test]
    fn every_declared_field_extracts_from_a_sample_payload() {
        let samples: Vec<EventKind> = vec![
            EventKind::CallEstablished {
                caller: "a@x".into(),
                callee: "b@x".into(),
            },
            EventKind::CallTornDown {
                by_aor: "a@x".into(),
                by_media_ip: Some(Ipv4Addr::new(10, 0, 0, 1)),
            },
            EventKind::CallRedirected {
                claimed_aor: "a@x".into(),
                old_target: (Ipv4Addr::new(10, 0, 0, 1), 1),
                new_target: (Ipv4Addr::new(10, 0, 0, 2), 2),
            },
            EventKind::OrphanRtpAfterBye {
                flow: sample_flow(),
                gap: SimDuration::from_millis(7),
            },
            EventKind::OrphanRtpAfterRedirect {
                flow: sample_flow(),
                gap: SimDuration::from_millis(7),
            },
            EventKind::RtpSeqViolation {
                flow: sample_flow(),
                delta: 200,
            },
            EventKind::RtpUnknownSource { flow: sample_flow() },
            EventKind::MediaPortGarbage {
                sink: (Ipv4Addr::new(10, 0, 0, 2), 9000),
                reason: "short".into(),
            },
            EventKind::SipMalformed {
                violations: vec!["x".into()],
                src: Ipv4Addr::new(10, 0, 0, 9),
            },
            EventKind::ImSourceMismatch {
                claimed_aor: "a@x".into(),
                src_ip: Ipv4Addr::new(10, 0, 0, 9),
                expected_ip: Ipv4Addr::new(10, 0, 0, 1),
            },
            EventKind::ImObserved {
                claimed_aor: "a@x".into(),
                src_ip: Ipv4Addr::new(10, 0, 0, 1),
                dst_ip: Ipv4Addr::new(10, 0, 0, 2),
                call_id: "c1".into(),
            },
            EventKind::RegisterFlood {
                src: Ipv4Addr::new(10, 0, 0, 9),
                count: 11,
            },
            EventKind::PasswordGuessing {
                src: Ipv4Addr::new(10, 0, 0, 9),
                username: "bob".into(),
                distinct_responses: 4,
            },
            EventKind::AcctMismatch {
                billed: "a@x".into(),
                observed_caller: Some("b@x".into()),
                call_id: "c1".into(),
            },
            EventKind::RtpFlowActive { flow: sample_flow() },
            EventKind::RtpAfterRtcpBye {
                flow: sample_flow(),
                ssrc: 42,
                gap: SimDuration::from_millis(3),
            },
            EventKind::Protocol {
                class: EventClass::Ext0,
                signal: "sig",
                detail: "d".into(),
            },
        ];
        for kind in &samples {
            for name in EventKind::field_names(kind.class()) {
                assert!(
                    kind.field(name).is_some(),
                    "{:?} field {name} did not extract",
                    kind.class()
                );
            }
            assert_eq!(kind.field("no_such_field"), None);
        }
        // Absent optional payloads yield None rather than a dummy value.
        let torn = EventKind::CallTornDown {
            by_aor: "a@x".into(),
            by_media_ip: None,
        };
        assert_eq!(torn.field("by_media_ip"), None);
    }

    fn sample_flow() -> FlowKey {
        FlowKey {
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(10, 0, 0, 2),
            dst_port: 9000,
        }
    }

    #[test]
    fn protocol_kind_reports_its_claimed_class() {
        let kind = EventKind::Protocol {
            class: EventClass::Ext2,
            signal: "x",
            detail: String::new(),
        };
        assert_eq!(kind.class(), EventClass::Ext2);
    }
}
