//! Events and the Event Generator (paper §3.1).
//!
//! "The Event Generator maps footprints into a single event. ... It
//! helps performance by hiding some computationally expensive matching,
//! e.g., by triggering the ruleset at the moment of interest instead of
//! triggering it upon each incoming RTP Footprint."
//!
//! This is where SCIDIVE's two abstractions live:
//!
//! * **Stateful detection** — per-session dialog machines, registration
//!   challenge windows, per-flow sequence history, per-identity IM
//!   source history.
//! * **Cross-protocol detection** — SIP teardowns/redirects arm watches
//!   over the session's RTP trails; accounting transactions are checked
//!   against the SIP trail.

use crate::footprint::{Footprint, FootprintBody};
use crate::trail::{SessionKey, TrailKey, TrailStore};
use scidive_netsim::time::{SimDuration, SimTime};
use scidive_rtp::seq::seq_delta;
use scidive_sip::auth::DigestCredentials;
use scidive_sip::header::HeaderName;
use scidive_sip::method::Method;
use scidive_sip::msg::SipMessage;
use scidive_sip::sdp::SessionDescription;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::net::Ipv4Addr;

/// Identifies an RTP (or garbage) flow towards a media sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowKey {
    /// Claimed source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Destination port.
    pub dst_port: u16,
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}:{}", self.src, self.dst, self.dst_port)
    }
}

/// The class of an event, used by rules for matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EventClass {
    /// A call reached the established state.
    CallEstablished,
    /// A BYE was observed tearing a session down.
    CallTornDown,
    /// A re-INVITE moved a session's media target.
    CallRedirected,
    /// RTP from the teardown's claimed sender after the BYE.
    OrphanRtpAfterBye,
    /// RTP from the old endpoint after a re-INVITE claimed it moved.
    OrphanRtpAfterRedirect,
    /// Consecutive sequence numbers differ by more than the threshold.
    RtpSeqViolation,
    /// RTP towards a session sink from an address outside the session.
    RtpUnknownSource,
    /// Undecodable bytes aimed at a known media sink.
    MediaPortGarbage,
    /// A SIP message that is not correctly formatted.
    SipMalformed,
    /// An instant message whose source does not match its claimed sender.
    ImSourceMismatch,
    /// Any instant message observed on a non-relay leg (cooperative
    /// detection correlates these across detectors).
    ImObserved,
    /// Repeated SIP requests / 4xx churn beyond the flood threshold.
    RegisterFlood,
    /// Many distinct digest responses for one identity: brute force.
    PasswordGuessing,
    /// An accounting transaction with no matching SIP call setup.
    AcctMismatch,
    /// First packet of a media flow within a session.
    RtpFlowActive,
    /// RTP from an SSRC continuing after that SSRC's RTCP BYE.
    RtpAfterRtcpBye,
}

impl EventClass {
    /// Number of event classes. The enum is fieldless with default
    /// discriminants, so `class as usize` is a valid index in
    /// `0..COUNT` — the basis of the compiled rule dispatch table.
    pub const COUNT: usize = 16;

    /// All classes, for spec parsing and enumeration, in discriminant
    /// order (`ALL[i] as usize == i`).
    pub const ALL: [EventClass; 16] = [
        EventClass::CallEstablished,
        EventClass::CallTornDown,
        EventClass::CallRedirected,
        EventClass::OrphanRtpAfterBye,
        EventClass::OrphanRtpAfterRedirect,
        EventClass::RtpSeqViolation,
        EventClass::RtpUnknownSource,
        EventClass::MediaPortGarbage,
        EventClass::SipMalformed,
        EventClass::ImSourceMismatch,
        EventClass::ImObserved,
        EventClass::RegisterFlood,
        EventClass::PasswordGuessing,
        EventClass::AcctMismatch,
        EventClass::RtpFlowActive,
        EventClass::RtpAfterRtcpBye,
    ];

    /// The class's canonical name (its variant name).
    pub fn name(self) -> &'static str {
        match self {
            EventClass::CallEstablished => "CallEstablished",
            EventClass::CallTornDown => "CallTornDown",
            EventClass::CallRedirected => "CallRedirected",
            EventClass::OrphanRtpAfterBye => "OrphanRtpAfterBye",
            EventClass::OrphanRtpAfterRedirect => "OrphanRtpAfterRedirect",
            EventClass::RtpSeqViolation => "RtpSeqViolation",
            EventClass::RtpUnknownSource => "RtpUnknownSource",
            EventClass::MediaPortGarbage => "MediaPortGarbage",
            EventClass::SipMalformed => "SipMalformed",
            EventClass::ImSourceMismatch => "ImSourceMismatch",
            EventClass::ImObserved => "ImObserved",
            EventClass::RegisterFlood => "RegisterFlood",
            EventClass::PasswordGuessing => "PasswordGuessing",
            EventClass::AcctMismatch => "AcctMismatch",
            EventClass::RtpFlowActive => "RtpFlowActive",
            EventClass::RtpAfterRtcpBye => "RtpAfterRtcpBye",
        }
    }

    /// Parses a class by its canonical name (case-insensitive).
    pub fn parse_name(name: &str) -> Option<EventClass> {
        EventClass::ALL
            .into_iter()
            .find(|c| c.name().eq_ignore_ascii_case(name))
    }
}

/// A generated event: the unit the rule engine matches on.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// When the triggering footprint was observed.
    pub time: SimTime,
    /// The owning session, when the event is session-scoped.
    pub session: Option<SessionKey>,
    /// The event payload.
    pub kind: EventKind,
}

impl Event {
    /// The event's class.
    pub fn class(&self) -> EventClass {
        self.kind.class()
    }
}

/// Event payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// See [`EventClass::CallEstablished`].
    CallEstablished {
        /// Caller AOR.
        caller: String,
        /// Callee AOR.
        callee: String,
    },
    /// See [`EventClass::CallTornDown`].
    CallTornDown {
        /// Who the BYE claims sent it.
        by_aor: String,
        /// That side's media address, if negotiated.
        by_media_ip: Option<Ipv4Addr>,
    },
    /// See [`EventClass::CallRedirected`].
    CallRedirected {
        /// Who the re-INVITE claims moved.
        claimed_aor: String,
        /// The endpoint being abandoned.
        old_target: (Ipv4Addr, u16),
        /// The new media target.
        new_target: (Ipv4Addr, u16),
    },
    /// See [`EventClass::OrphanRtpAfterBye`].
    OrphanRtpAfterBye {
        /// The continuing flow.
        flow: FlowKey,
        /// Time since the BYE.
        gap: SimDuration,
    },
    /// See [`EventClass::OrphanRtpAfterRedirect`].
    OrphanRtpAfterRedirect {
        /// The continuing flow.
        flow: FlowKey,
        /// Time since the re-INVITE.
        gap: SimDuration,
    },
    /// See [`EventClass::RtpSeqViolation`].
    RtpSeqViolation {
        /// The offending flow.
        flow: FlowKey,
        /// The sequence delta observed.
        delta: i32,
    },
    /// See [`EventClass::RtpUnknownSource`].
    RtpUnknownSource {
        /// The offending flow.
        flow: FlowKey,
    },
    /// See [`EventClass::MediaPortGarbage`].
    MediaPortGarbage {
        /// The targeted sink.
        sink: (Ipv4Addr, u16),
        /// Why it did not decode.
        reason: String,
    },
    /// See [`EventClass::SipMalformed`].
    SipMalformed {
        /// The format violations found.
        violations: Vec<String>,
        /// Source of the message.
        src: Ipv4Addr,
    },
    /// See [`EventClass::ImSourceMismatch`].
    ImSourceMismatch {
        /// The identity the message claims.
        claimed_aor: String,
        /// Where it actually came from.
        src_ip: Ipv4Addr,
        /// Where that identity was last seen.
        expected_ip: Ipv4Addr,
    },
    /// See [`EventClass::ImObserved`].
    ImObserved {
        /// The identity the message claims.
        claimed_aor: String,
        /// Network source of the leg.
        src_ip: Ipv4Addr,
        /// Network destination of the leg.
        dst_ip: Ipv4Addr,
        /// The message's Call-ID (the cross-detector join key).
        call_id: String,
    },
    /// See [`EventClass::RegisterFlood`].
    RegisterFlood {
        /// The flooding source (unspecified in stateless mode).
        src: Ipv4Addr,
        /// Request/4xx alternations counted in the window.
        count: u32,
    },
    /// See [`EventClass::PasswordGuessing`].
    PasswordGuessing {
        /// The guessing source.
        src: Ipv4Addr,
        /// The identity under attack.
        username: String,
        /// Distinct digest responses tried.
        distinct_responses: u32,
    },
    /// See [`EventClass::AcctMismatch`].
    AcctMismatch {
        /// Who the billing system is charging.
        billed: String,
        /// Who the SIP trail says initiated the call, if anyone.
        observed_caller: Option<String>,
        /// The billed Call-ID.
        call_id: String,
    },
    /// See [`EventClass::RtpFlowActive`].
    RtpFlowActive {
        /// The new flow.
        flow: FlowKey,
    },
    /// See [`EventClass::RtpAfterRtcpBye`].
    RtpAfterRtcpBye {
        /// The continuing flow.
        flow: FlowKey,
        /// The SSRC that said goodbye.
        ssrc: u32,
        /// Time since the RTCP BYE.
        gap: SimDuration,
    },
}

impl EventKind {
    /// The class of this payload.
    pub fn class(&self) -> EventClass {
        match self {
            EventKind::CallEstablished { .. } => EventClass::CallEstablished,
            EventKind::CallTornDown { .. } => EventClass::CallTornDown,
            EventKind::CallRedirected { .. } => EventClass::CallRedirected,
            EventKind::OrphanRtpAfterBye { .. } => EventClass::OrphanRtpAfterBye,
            EventKind::OrphanRtpAfterRedirect { .. } => EventClass::OrphanRtpAfterRedirect,
            EventKind::RtpSeqViolation { .. } => EventClass::RtpSeqViolation,
            EventKind::RtpUnknownSource { .. } => EventClass::RtpUnknownSource,
            EventKind::MediaPortGarbage { .. } => EventClass::MediaPortGarbage,
            EventKind::SipMalformed { .. } => EventClass::SipMalformed,
            EventKind::ImSourceMismatch { .. } => EventClass::ImSourceMismatch,
            EventKind::ImObserved { .. } => EventClass::ImObserved,
            EventKind::RegisterFlood { .. } => EventClass::RegisterFlood,
            EventKind::PasswordGuessing { .. } => EventClass::PasswordGuessing,
            EventKind::AcctMismatch { .. } => EventClass::AcctMismatch,
            EventKind::RtpFlowActive { .. } => EventClass::RtpFlowActive,
            EventKind::RtpAfterRtcpBye { .. } => EventClass::RtpAfterRtcpBye,
        }
    }
}

/// Event-generator configuration.
#[derive(Debug, Clone)]
pub struct EventGenConfig {
    /// The monitoring window `m` of §4.3: how long after a BYE/re-INVITE
    /// orphan media still triggers an event.
    pub monitor_window: SimDuration,
    /// The §4.2.4 sequence-jump threshold ("difference greater than
    /// 100").
    pub seq_jump_threshold: i32,
    /// Sliding window for REGISTER-flood counting.
    pub flood_window: SimDuration,
    /// Request/4xx alternations within the window that mean a flood.
    pub flood_threshold: u32,
    /// Sliding window for password-guess counting.
    pub guess_window: SimDuration,
    /// Distinct digest responses within the window that mean guessing.
    pub guess_threshold: u32,
    /// Fastest plausible legitimate mobility: identity-to-IP changes
    /// quicker than this are suspicious (§4.2.2 "rate of user mobility").
    pub im_mobility_interval: SimDuration,
    /// Grace period after an RTCP BYE during which already-in-flight
    /// media is not treated as an anomaly. A source emits its RTCP BYE
    /// at the instant it stops, so frames sent just before are still on
    /// the wire — unlike the SIP BYE case, where well-behaved clients
    /// stop media a beat earlier (and where the paper's P_f model
    /// deliberately keeps the race).
    pub rtcp_bye_grace: SimDuration,
    /// Known relays (proxies, accounting) whose source addresses do not
    /// identify the originating user.
    pub infrastructure_ips: Vec<Ipv4Addr>,
    /// Stateful detection: keep per-source / per-identity state. When
    /// disabled, registration and IM tracking degrade to the global,
    /// session-unaware counting a stateless matcher would do (§3.3).
    pub stateful: bool,
    /// Cross-protocol detection: correlate SIP/RTP/accounting trails.
    /// When disabled, no orphan-flow or billing-mismatch events exist.
    pub cross_protocol: bool,
}

impl Default for EventGenConfig {
    fn default() -> EventGenConfig {
        EventGenConfig {
            monitor_window: SimDuration::from_millis(200),
            seq_jump_threshold: 100,
            flood_window: SimDuration::from_secs(10),
            flood_threshold: 10,
            guess_window: SimDuration::from_secs(30),
            guess_threshold: 3,
            im_mobility_interval: SimDuration::from_secs(60),
            rtcp_bye_grace: SimDuration::from_millis(5),
            infrastructure_ips: Vec::new(),
            stateful: true,
            cross_protocol: true,
        }
    }
}

#[derive(Debug, Clone)]
struct Teardown {
    at: SimTime,
    by_media_ip: Option<Ipv4Addr>,
}

#[derive(Debug, Clone)]
struct Redirect {
    at: SimTime,
    old_target: (Ipv4Addr, u16),
    /// SSRCs the abandoned endpoint was using (new flows after genuine
    /// mobility use fresh SSRCs and must not alarm).
    old_ssrcs: HashSet<u32>,
    /// The sink the victim still listens on.
    victim_sink: Option<(Ipv4Addr, u16)>,
}

#[derive(Debug, Default)]
struct SessionState {
    caller_aor: Option<String>,
    callee_aor: Option<String>,
    caller_media: Option<(Ipv4Addr, u16)>,
    callee_media: Option<(Ipv4Addr, u16)>,
    established: bool,
    torn_down: Option<Teardown>,
    redirected: Option<Redirect>,
    orphan_bye_emitted: bool,
    orphan_redirect_emitted: bool,
    acct_checked: bool,
    unknown_src_flows: HashSet<FlowKey>,
    active_flows: HashSet<FlowKey>,
    garbage_emitted: u32,
    /// SSRC → (goodbye time, already alarmed).
    rtcp_byes: HashMap<u32, (SimTime, bool)>,
}

#[derive(Debug, Default)]
struct RegWindow {
    requests: VecDeque<SimTime>,
    errors: VecDeque<SimTime>,
    flood_emitted: bool,
}

#[derive(Debug, Default)]
struct GuessWindow {
    responses: VecDeque<(SimTime, String)>,
    emitted: bool,
}

/// The identity plane: the cross-session detection state keyed by IP
/// address or user identity rather than by session — registration /
/// 4xx churn windows (§3.3 flood DoS), digest-response windows (§3.3
/// password guessing), and the AOR → IP bindings behind the fake-IM
/// check (§4.2.2).
///
/// In the single-engine pipeline it lives inside the
/// [`EventGenerator`]. The sharded pipeline ([`crate::shard`]) lifts it
/// into the dispatcher — it is the one stateful component that must see
/// every SIP frame regardless of session — and runs the per-shard
/// generators with the plane disabled
/// ([`EventGenerator::data_plane`]), injecting the plane's events into
/// the owning shard's stream instead.
#[derive(Debug)]
pub struct IdentityPlane {
    config: EventGenConfig,
    reg_windows: HashMap<Ipv4Addr, RegWindow>,
    guess_windows: HashMap<(Ipv4Addr, String), GuessWindow>,
    /// identity AOR → (ip, last_change).
    aor_ips: HashMap<String, (Ipv4Addr, SimTime)>,
    events_emitted: u64,
}

/// The Event Generator.
#[derive(Debug)]
pub struct EventGenerator {
    config: EventGenConfig,
    sessions: HashMap<SessionKey, SessionState>,
    /// (flow, ssrc) → last sequence number.
    seq_history: HashMap<(FlowKey, u32), u16>,
    /// flow → ssrcs seen (for redirect snapshots).
    flow_ssrcs: HashMap<FlowKey, HashSet<u32>>,
    /// The embedded identity plane; `None` in data-plane (shard) mode,
    /// where the dispatcher owns the single shared plane.
    identity: Option<IdentityPlane>,
    events_emitted: u64,
}

/// The wildcard source used for stateless (global) flood tracking.
const GLOBAL_SRC: Ipv4Addr = Ipv4Addr::UNSPECIFIED;

impl EventGenerator {
    /// Creates a generator with an embedded identity plane (the normal,
    /// single-engine configuration).
    pub fn new(config: EventGenConfig) -> EventGenerator {
        let identity = Some(IdentityPlane::new(config.clone()));
        EventGenerator {
            config,
            sessions: HashMap::new(),
            seq_history: HashMap::new(),
            flow_ssrcs: HashMap::new(),
            identity,
            events_emitted: 0,
        }
    }

    /// Creates a session-plane-only generator: identity-plane detection
    /// (floods, password guessing, IM source checks) is disabled because
    /// some external [`IdentityPlane`] owns that state. Used by the
    /// shards of [`crate::shard::ShardedScidive`].
    pub fn data_plane(config: EventGenConfig) -> EventGenerator {
        EventGenerator {
            config,
            sessions: HashMap::new(),
            seq_history: HashMap::new(),
            flow_ssrcs: HashMap::new(),
            identity: None,
            events_emitted: 0,
        }
    }

    /// Events produced so far.
    pub fn events_emitted(&self) -> u64 {
        self.events_emitted
    }

    /// Sessions currently tracked.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Processes one footprint in the context of its trail.
    pub fn on_footprint(
        &mut self,
        fp: &Footprint,
        key: &TrailKey,
        store: &TrailStore,
    ) -> Vec<Event> {
        let mut out = Vec::new();
        match &fp.body {
            FootprintBody::Sip(msg) => self.on_sip(fp, key, msg, &mut out),
            FootprintBody::SipMalformed { reason, .. } => {
                self.emit(
                    &mut out,
                    fp.meta.time,
                    Some(key.session.clone()),
                    EventKind::SipMalformed {
                        violations: vec![reason.clone()],
                        src: fp.meta.src,
                    },
                );
            }
            FootprintBody::Rtp { header, .. } => {
                self.on_rtp(fp, key, header.ssrc, header.seq, &mut out)
            }
            FootprintBody::Rtcp(rtcp) => {
                if self.config.cross_protocol {
                    if let scidive_rtp::rtcp::RtcpPacket::Bye { ssrcs } = rtcp {
                        let time = fp.meta.time;
                        let state = self.sessions.entry(key.session.clone()).or_default();
                        for ssrc in ssrcs {
                            state.rtcp_byes.entry(*ssrc).or_insert((time, false));
                        }
                    }
                }
            }
            FootprintBody::Acct(acct) => {
                if acct.start && self.config.cross_protocol {
                    self.on_acct_start(fp, key, &acct.caller, &acct.call_id, &mut out);
                }
            }
            FootprintBody::UdpOther { .. } | FootprintBody::UdpCorrupt { .. } => {
                self.on_garbage(fp, key, store, &mut out)
            }
            FootprintBody::Icmp { .. } => {}
        }
        // Identity-plane checks run after the session-plane handlers, so
        // a footprint's session events always precede its identity
        // events. The sharded dispatcher relies on exactly this order
        // when it injects plane events behind a shard's own output.
        if let Some(plane) = self.identity.as_mut() {
            let extra = plane.on_footprint(fp);
            self.events_emitted += extra.len() as u64;
            out.extend(extra);
        }
        out
    }

    fn emit(
        &mut self,
        out: &mut Vec<Event>,
        time: SimTime,
        session: Option<SessionKey>,
        kind: EventKind,
    ) {
        self.events_emitted += 1;
        out.push(Event {
            time,
            session,
            kind,
        });
    }

    // ------------------------------------------------------------------
    // SIP
    // ------------------------------------------------------------------

    fn on_sip(
        &mut self,
        fp: &Footprint,
        key: &TrailKey,
        msg: &SipMessage,
        out: &mut Vec<Event>,
    ) {
        let time = fp.meta.time;
        let session = key.session.clone();

        // Format discipline (billing-fraud condition 1).
        let violations = msg.format_violations();
        if !violations.is_empty() {
            self.emit(
                out,
                time,
                Some(session.clone()),
                EventKind::SipMalformed {
                    violations,
                    src: fp.meta.src,
                },
            );
        }

        match msg.method() {
            Some(Method::Invite) => self.on_sip_invite(fp, &session, msg, out),
            Some(Method::Bye) => self.on_sip_bye(fp, &session, msg, out),
            // REGISTER and MESSAGE are pure identity-plane traffic,
            // handled by [`IdentityPlane::on_footprint`].
            Some(_) => {}
            None => self.on_sip_response(fp, &session, msg, out),
        }
    }

    fn on_sip_invite(
        &mut self,
        fp: &Footprint,
        session: &SessionKey,
        msg: &SipMessage,
        out: &mut Vec<Event>,
    ) {
        let time = fp.meta.time;
        let (Ok(from), Ok(to)) = (msg.from_(), msg.to()) else {
            return;
        };
        let sdp = parse_sdp(msg);
        let state = self.sessions.entry(session.clone()).or_default();
        if state.caller_aor.is_none() {
            // New session: the INVITE defines the caller.
            state.caller_aor = Some(from.uri.aor());
            state.callee_aor = Some(to.uri.aor());
            if let Some(target) = sdp.as_ref().and_then(SessionDescription::rtp_target) {
                state.caller_media = Some(target);
            }
            return;
        }
        if !state.established {
            return; // retransmission / proxy copy of the initial INVITE
        }
        // Re-INVITE on an established session.
        let claimed_aor = from.uri.aor();
        let Some(new_target) = sdp.as_ref().and_then(SessionDescription::rtp_target) else {
            return;
        };
        let claimant_is_callee = Some(&claimed_aor) == state.callee_aor.as_ref();
        let old_target = if claimant_is_callee {
            state.callee_media
        } else {
            state.caller_media
        };
        let Some(old_target) = old_target else {
            return;
        };
        if old_target == new_target {
            return; // session refresh, nothing moved
        }
        let victim_sink = if claimant_is_callee {
            state.caller_media
        } else {
            state.callee_media
        };
        // Snapshot the abandoned endpoint's flow SSRCs: genuine movers
        // stop these; forged re-INVITEs leave them running.
        let old_ssrcs = victim_sink
            .map(|(dst, dst_port)| FlowKey {
                src: old_target.0,
                dst,
                dst_port,
            })
            .and_then(|flow| self.flow_ssrcs.get(&flow).cloned())
            .unwrap_or_default();
        let state = self.sessions.get_mut(session).expect("present");
        state.redirected = Some(Redirect {
            at: time,
            old_target,
            old_ssrcs,
            victim_sink,
        });
        state.orphan_redirect_emitted = false;
        if claimant_is_callee {
            state.callee_media = Some(new_target);
        } else {
            state.caller_media = Some(new_target);
        }
        self.emit(
            out,
            time,
            Some(session.clone()),
            EventKind::CallRedirected {
                claimed_aor,
                old_target,
                new_target,
            },
        );
    }

    fn on_sip_bye(
        &mut self,
        fp: &Footprint,
        session: &SessionKey,
        msg: &SipMessage,
        out: &mut Vec<Event>,
    ) {
        let time = fp.meta.time;
        let Ok(from) = msg.from_() else {
            return;
        };
        let by_aor = from.uri.aor();
        let Some(state) = self.sessions.get_mut(session) else {
            return;
        };
        if state.torn_down.is_some() {
            return; // proxy copy of the same BYE
        }
        let by_media_ip = if Some(&by_aor) == state.callee_aor.as_ref() {
            state.callee_media.map(|(ip, _)| ip)
        } else {
            state.caller_media.map(|(ip, _)| ip)
        };
        state.torn_down = Some(Teardown { at: time, by_media_ip });
        self.emit(
            out,
            time,
            Some(session.clone()),
            EventKind::CallTornDown { by_aor, by_media_ip },
        );
    }

    fn on_sip_response(
        &mut self,
        fp: &Footprint,
        session: &SessionKey,
        msg: &SipMessage,
        out: &mut Vec<Event>,
    ) {
        let time = fp.meta.time;
        let Some(status) = msg.status() else {
            return;
        };
        if !status.is_success() {
            // 4xx churn feeds the identity plane's flood window, not the
            // session plane.
            return;
        }
        let Ok(cseq) = msg.cseq() else {
            return;
        };
        if cseq.method != Method::Invite {
            return;
        }
        // 2xx to an INVITE: learn the answering side's media and mark
        // established.
        let sdp = parse_sdp(msg);
        let answerer_is_callee = msg
            .from_()
            .map(|f| {
                let state = self.sessions.get(session);
                state
                    .and_then(|s| s.caller_aor.as_ref().map(|c| *c == f.uri.aor()))
                    .unwrap_or(true)
            })
            .unwrap_or(true);
        let Some(state) = self.sessions.get_mut(session) else {
            return;
        };
        if let Some(target) = sdp.as_ref().and_then(SessionDescription::rtp_target) {
            if answerer_is_callee {
                if state.callee_media.is_none() || !state.established {
                    state.callee_media = Some(target);
                }
            } else if state.caller_media.is_none() || !state.established {
                state.caller_media = Some(target);
            }
        }
        if !state.established {
            state.established = true;
            let caller = state.caller_aor.clone().unwrap_or_default();
            let callee = state.callee_aor.clone().unwrap_or_default();
            self.emit(
                out,
                time,
                Some(session.clone()),
                EventKind::CallEstablished { caller, callee },
            );
        }
    }

    // ------------------------------------------------------------------
    // RTP / media
    // ------------------------------------------------------------------

    fn on_rtp(
        &mut self,
        fp: &Footprint,
        key: &TrailKey,
        ssrc: u32,
        seq: u16,
        out: &mut Vec<Event>,
    ) {
        let time = fp.meta.time;
        let flow = FlowKey {
            src: fp.meta.src,
            dst: fp.meta.dst,
            dst_port: fp.meta.dst_port,
        };
        // Sequence discipline (§4.2.4): per flow+SSRC.
        if let Some(&last) = self.seq_history.get(&(flow, ssrc)) {
            let delta = seq_delta(last, seq);
            if delta.abs() > self.config.seq_jump_threshold {
                self.emit(
                    out,
                    time,
                    Some(key.session.clone()),
                    EventKind::RtpSeqViolation { flow, delta },
                );
            }
        }
        self.seq_history.insert((flow, ssrc), seq);
        self.flow_ssrcs.entry(flow).or_default().insert(ssrc);

        if !self.config.cross_protocol {
            return;
        }
        let monitor_window = self.config.monitor_window;
        let Some(state) = self.sessions.get_mut(&key.session) else {
            return;
        };
        // First sighting of this flow in the session.
        if state.active_flows.insert(flow) {
            self.events_emitted += 1;
            out.push(Event {
                time,
                session: Some(key.session.clone()),
                kind: EventKind::RtpFlowActive { flow },
            });
        }
        let state = self.sessions.get_mut(&key.session).expect("present");
        // Source legitimacy: media for this session should come from the
        // negotiated endpoints.
        let legit_ips: Vec<Ipv4Addr> = state
            .caller_media
            .iter()
            .chain(state.callee_media.iter())
            .map(|(ip, _)| *ip)
            .chain(
                state
                    .redirected
                    .iter()
                    .map(|r| r.old_target.0),
            )
            .collect();
        if !legit_ips.is_empty()
            && !legit_ips.contains(&flow.src)
            && state.unknown_src_flows.insert(flow)
        {
            self.events_emitted += 1;
            out.push(Event {
                time,
                session: Some(key.session.clone()),
                kind: EventKind::RtpUnknownSource { flow },
            });
        }
        // Orphan after BYE (§4.2.1): the claimed terminator keeps
        // transmitting.
        let state = self.sessions.get_mut(&key.session).expect("present");
        let bye_orphan = match &state.torn_down {
            Some(t) if !state.orphan_bye_emitted && t.by_media_ip == Some(flow.src) => {
                let gap = time.saturating_since(t.at);
                (gap <= monitor_window).then_some(gap)
            }
            _ => None,
        };
        if let Some(gap) = bye_orphan {
            state.orphan_bye_emitted = true;
            self.events_emitted += 1;
            out.push(Event {
                time,
                session: Some(key.session.clone()),
                kind: EventKind::OrphanRtpAfterBye { flow, gap },
            });
        }
        // Orphan after redirect (§4.2.3): the endpoint that claimed to
        // move keeps transmitting with its old SSRCs.
        let state = self.sessions.get_mut(&key.session).expect("present");
        let redirect_orphan = match &state.redirected {
            Some(r) if !state.orphan_redirect_emitted => {
                let gap = time.saturating_since(r.at);
                let from_old_endpoint = r.old_target.0 == flow.src;
                let to_victim = r
                    .victim_sink
                    .map(|(ip, port)| ip == flow.dst && port == flow.dst_port)
                    .unwrap_or(true);
                let old_stream = r.old_ssrcs.is_empty() || r.old_ssrcs.contains(&ssrc);
                (from_old_endpoint && to_victim && old_stream && gap <= monitor_window)
                    .then_some(gap)
            }
            _ => None,
        };
        if let Some(gap) = redirect_orphan {
            state.orphan_redirect_emitted = true;
            self.events_emitted += 1;
            out.push(Event {
                time,
                session: Some(key.session.clone()),
                kind: EventKind::OrphanRtpAfterRedirect { flow, gap },
            });
        }
        // Media continuing after its own RTCP goodbye (forged RTCP BYE,
        // or a confused sender): §3.1's SIP→RTP→RTCP event chain.
        let state = self.sessions.get_mut(&key.session).expect("present");
        let grace = self.config.rtcp_bye_grace;
        let rtcp_orphan = match state.rtcp_byes.get(&ssrc) {
            Some(&(at, false)) => {
                let gap = time.saturating_since(at);
                (gap > grace && gap <= monitor_window).then_some(gap)
            }
            _ => None,
        };
        if let Some(gap) = rtcp_orphan {
            state.rtcp_byes.insert(ssrc, (time, true));
            self.events_emitted += 1;
            out.push(Event {
                time,
                session: Some(key.session.clone()),
                kind: EventKind::RtpAfterRtcpBye { flow, ssrc, gap },
            });
        }
    }

    fn on_garbage(
        &mut self,
        fp: &Footprint,
        key: &TrailKey,
        store: &TrailStore,
        out: &mut Vec<Event>,
    ) {
        if !self.config.cross_protocol {
            return;
        }
        // Garbage counts only when aimed at a sink some SDP announced.
        if store
            .session_for_media(fp.meta.dst, fp.meta.dst_port)
            .is_none()
        {
            return;
        }
        let reason = match &fp.body {
            FootprintBody::UdpCorrupt { reason } => reason.clone(),
            _ => "undecodable media".to_string(),
        };
        let state = self.sessions.entry(key.session.clone()).or_default();
        // Rate-limit to one event per 10 packets to bound event volume.
        if state.garbage_emitted.is_multiple_of(10) {
            state.garbage_emitted += 1;
            self.events_emitted += 1;
            out.push(Event {
                time: fp.meta.time,
                session: Some(key.session.clone()),
                kind: EventKind::MediaPortGarbage {
                    sink: (fp.meta.dst, fp.meta.dst_port),
                    reason,
                },
            });
        } else {
            state.garbage_emitted += 1;
        }
    }

    // ------------------------------------------------------------------
    // Accounting (§3.2)
    // ------------------------------------------------------------------

    fn on_acct_start(
        &mut self,
        fp: &Footprint,
        key: &TrailKey,
        billed: &str,
        call_id: &str,
        out: &mut Vec<Event>,
    ) {
        let observed_caller = self
            .sessions
            .get(&key.session)
            .and_then(|s| s.caller_aor.clone());
        let mismatch = observed_caller.as_deref() != Some(billed);
        if let Some(state) = self.sessions.get_mut(&key.session) {
            if state.acct_checked {
                return;
            }
            state.acct_checked = true;
        }
        if mismatch {
            self.emit(
                out,
                fp.meta.time,
                Some(key.session.clone()),
                EventKind::AcctMismatch {
                    billed: billed.to_string(),
                    observed_caller,
                    call_id: call_id.to_string(),
                },
            );
        }
    }
}

impl IdentityPlane {
    /// Creates an empty identity plane.
    pub fn new(config: EventGenConfig) -> IdentityPlane {
        IdentityPlane {
            config,
            reg_windows: HashMap::new(),
            guess_windows: HashMap::new(),
            aor_ips: HashMap::new(),
            events_emitted: 0,
        }
    }

    /// Events produced so far by this plane.
    pub fn events_emitted(&self) -> u64 {
        self.events_emitted
    }

    /// Identities currently bound to an address.
    pub fn identity_count(&self) -> usize {
        self.aor_ips.len()
    }

    /// Processes one footprint; only SIP footprints carry identity-plane
    /// signal (REGISTER churn, digest credentials, MESSAGE sources, 4xx
    /// error responses), everything else returns no events.
    pub fn on_footprint(&mut self, fp: &Footprint) -> Vec<Event> {
        let mut out = Vec::new();
        if let FootprintBody::Sip(msg) = &fp.body {
            self.on_sip(fp, msg, &mut out);
        }
        out
    }

    fn emit(&mut self, out: &mut Vec<Event>, time: SimTime, kind: EventKind) {
        self.events_emitted += 1;
        // Identity-plane events are never session-scoped: floods, digest
        // windows and IM histories are keyed by address or AOR.
        out.push(Event {
            time,
            session: None,
            kind,
        });
    }

    fn on_sip(&mut self, fp: &Footprint, msg: &SipMessage, out: &mut Vec<Event>) {
        let time = fp.meta.time;
        // Identity → IP learning from originating (non-relay) legs.
        let from_relay = self.config.infrastructure_ips.contains(&fp.meta.src);
        match msg.method() {
            Some(Method::Register) => {
                if !from_relay {
                    if let Ok(from) = msg.from_() {
                        self.learn_identity(&from.uri.aor(), fp.meta.src, time);
                    }
                }
                self.track_register_request(fp.meta.src, time, out);
                self.track_auth_response(fp.meta.src, msg, time, out);
            }
            Some(Method::Message) => {
                if !from_relay {
                    self.on_im(fp, msg, out);
                }
            }
            Some(_) => {}
            None => {
                // Registration churn: 4xx responses feed the flood
                // window keyed by the challenged client (the response's
                // destination).
                if msg.status().is_some_and(|s| s.is_client_error()) {
                    self.track_error_response(fp.meta.dst, time, out);
                }
            }
        }
    }

    fn on_im(&mut self, fp: &Footprint, msg: &SipMessage, out: &mut Vec<Event>) {
        let time = fp.meta.time;
        let Ok(from) = msg.from_() else {
            return;
        };
        let claimed = from.uri.aor();
        let src = fp.meta.src;
        if let Ok(call_id) = msg.call_id() {
            self.emit(
                out,
                time,
                EventKind::ImObserved {
                    claimed_aor: claimed.clone(),
                    src_ip: src,
                    dst_ip: fp.meta.dst,
                    call_id: call_id.to_string(),
                },
            );
        }
        if !self.config.stateful {
            // Stateless approximation: only the last IP, no mobility
            // allowance — any change alarms.
            match self.aor_ips.get(&claimed) {
                Some(&(known, _)) if known != src => {
                    self.emit(
                        out,
                        time,
                        EventKind::ImSourceMismatch {
                            claimed_aor: claimed,
                            src_ip: src,
                            expected_ip: known,
                        },
                    );
                }
                _ => {
                    self.aor_ips.insert(claimed, (src, time));
                }
            }
            return;
        }
        match self.aor_ips.get(&claimed) {
            None => {
                self.learn_identity(&claimed, src, time);
            }
            Some(&(known, _)) if known == src => {
                self.aor_ips.insert(claimed, (src, time));
            }
            Some(&(known, last_change)) => {
                let elapsed = time.saturating_since(last_change);
                if elapsed >= self.config.im_mobility_interval {
                    // Plausible mobility: accept and re-learn.
                    self.learn_identity(&claimed, src, time);
                } else {
                    self.emit(
                        out,
                        time,
                        EventKind::ImSourceMismatch {
                            claimed_aor: claimed,
                            src_ip: src,
                            expected_ip: known,
                        },
                    );
                }
            }
        }
    }

    fn learn_identity(&mut self, aor: &str, ip: Ipv4Addr, time: SimTime) {
        match self.aor_ips.get(aor) {
            Some(&(known, _)) if known == ip => {
                self.aor_ips.insert(aor.to_string(), (ip, time));
            }
            _ => {
                self.aor_ips.insert(aor.to_string(), (ip, time));
            }
        }
    }

    // ------------------------------------------------------------------
    // Registration flood / password guessing (§3.3)
    // ------------------------------------------------------------------

    fn flood_key(&self, src: Ipv4Addr) -> Ipv4Addr {
        if self.config.stateful {
            src
        } else {
            GLOBAL_SRC
        }
    }

    fn track_register_request(&mut self, src: Ipv4Addr, time: SimTime, out: &mut Vec<Event>) {
        let key = self.flood_key(src);
        let window = self.config.flood_window;
        let w = self.reg_windows.entry(key).or_default();
        w.requests.push_back(time);
        prune(&mut w.requests, time, window);
        self.check_flood(key, time, out);
    }

    fn track_error_response(&mut self, dst: Ipv4Addr, time: SimTime, out: &mut Vec<Event>) {
        let key = self.flood_key(dst);
        let window = self.config.flood_window;
        let w = self.reg_windows.entry(key).or_default();
        w.errors.push_back(time);
        prune(&mut w.errors, time, window);
        self.check_flood(key, time, out);
    }

    fn check_flood(&mut self, key: Ipv4Addr, time: SimTime, out: &mut Vec<Event>) {
        let threshold = self.config.flood_threshold;
        let Some(w) = self.reg_windows.get_mut(&key) else {
            return;
        };
        // "Continuous, alternating SIP requests and 4XX error messages":
        // the alternation count is the lesser of the two.
        let stateful = self.config.stateful;
        let count = if stateful {
            (w.requests.len().min(w.errors.len())) as u32
        } else {
            // A stateless matcher can only count 4xx sightings.
            w.errors.len() as u32
        };
        if count >= threshold && !w.flood_emitted {
            w.flood_emitted = true;
            self.emit(out, time, EventKind::RegisterFlood { src: key, count });
        } else if count < threshold / 2 {
            w.flood_emitted = false;
        }
    }

    fn track_auth_response(
        &mut self,
        src: Ipv4Addr,
        msg: &SipMessage,
        time: SimTime,
        out: &mut Vec<Event>,
    ) {
        let Some(creds) = msg
            .headers
            .get(&HeaderName::Authorization)
            .and_then(|v| DigestCredentials::parse(v).ok())
        else {
            return;
        };
        let key = if self.config.stateful {
            (src, creds.username.clone())
        } else {
            (GLOBAL_SRC, String::new())
        };
        let window = self.config.guess_window;
        let threshold = self.config.guess_threshold;
        let w = self.guess_windows.entry(key).or_default();
        w.responses.push_back((time, creds.response.clone()));
        while let Some(&(t, _)) = w.responses.front() {
            if time.saturating_since(t) > window {
                w.responses.pop_front();
            } else {
                break;
            }
        }
        let distinct: HashSet<&str> =
            w.responses.iter().map(|(_, r)| r.as_str()).collect();
        let distinct_responses = distinct.len() as u32;
        if distinct_responses >= threshold && !w.emitted {
            w.emitted = true;
            let username = creds.username;
            self.emit(
                out,
                time,
                EventKind::PasswordGuessing {
                    src,
                    username,
                    distinct_responses,
                },
            );
        }
    }
}

fn parse_sdp(msg: &SipMessage) -> Option<SessionDescription> {
    if msg.content_type()? != "application/sdp" {
        return None;
    }
    std::str::from_utf8(&msg.body).ok()?.parse().ok()
}

fn prune(q: &mut VecDeque<SimTime>, now: SimTime, window: SimDuration) {
    while let Some(&t) = q.front() {
        if now.saturating_since(t) > window {
            q.pop_front();
        } else {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::footprint::PacketMeta;
    use crate::trail::{TrailStore, TrailStoreConfig};
    use scidive_rtp::packet::RtpHeader;
    use scidive_sip::header::{CSeq, NameAddr, Via};
    use scidive_sip::msg::{response_to, RequestBuilder};
    use scidive_sip::status::StatusCode;

    const A_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
    const B_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 3);
    const ATTACKER: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 66);

    struct Harness {
        store: TrailStore,
        gen: EventGenerator,
        now: u64,
    }

    impl Harness {
        fn new(config: EventGenConfig) -> Harness {
            Harness {
                store: TrailStore::new(TrailStoreConfig::default()),
                gen: EventGenerator::new(config),
                now: 0,
            }
        }

        fn feed(&mut self, fp: Footprint) -> Vec<Event> {
            let (fp, key) = self.store.insert(fp);
            self.gen.on_footprint(&fp, &key, &self.store)
        }

        fn feed_sip(&mut self, src: Ipv4Addr, dst: Ipv4Addr, msg: &SipMessage) -> Vec<Event> {
            self.now += 1;
            self.feed(Footprint {
                meta: PacketMeta {
                    time: SimTime::from_millis(self.now),
                    src,
                    src_port: 5060,
                    dst,
                    dst_port: 5060,
                },
                body: FootprintBody::Sip(Box::new(msg.clone())),
            })
        }

        fn feed_rtp(&mut self, src: Ipv4Addr, dst: Ipv4Addr, port: u16, ssrc: u32, seq: u16) -> Vec<Event> {
            self.now += 1;
            self.feed(Footprint {
                meta: PacketMeta {
                    time: SimTime::from_millis(self.now),
                    src,
                    src_port: 9000,
                    dst,
                    dst_port: port,
                },
                body: FootprintBody::Rtp {
                    header: RtpHeader::new(0, seq, 0, ssrc),
                    payload_len: 160,
                },
            })
        }

        /// Plays a full A→B call setup, returning the events.
        fn establish_call(&mut self) -> Vec<Event> {
            let inv = invite("c1");
            let mut evs = self.feed_sip(A_IP, B_IP, &inv);
            let ok = ok_with_sdp(&inv);
            evs.extend(self.feed_sip(B_IP, A_IP, &ok));
            evs
        }
    }

    fn invite(call_id: &str) -> SipMessage {
        let sdp = SessionDescription::audio_offer("alice", A_IP, 8000);
        let mut b = RequestBuilder::new(Method::Invite, "sip:bob@lab".parse().unwrap());
        b.from(NameAddr::new("sip:alice@lab".parse().unwrap()).with_tag("ta"))
            .to(NameAddr::new("sip:bob@lab".parse().unwrap()))
            .call_id(call_id)
            .cseq(CSeq::new(1, Method::Invite))
            .via(Via::udp("10.0.0.2:5060", "z9hG4bK-1"))
            .contact(NameAddr::new("sip:alice@10.0.0.2:5060".parse().unwrap()))
            .body("application/sdp", sdp.to_string());
        b.build()
    }

    fn ok_with_sdp(inv: &SipMessage) -> SipMessage {
        let mut ok = response_to(inv, StatusCode::OK, Some("tb"));
        let sdp = SessionDescription::audio_offer("bob", B_IP, 9000);
        ok.headers.set(HeaderName::ContentType, "application/sdp");
        ok.body = sdp.to_string().into_bytes().into();
        ok
    }

    fn bye_claiming_bob(call_id: &str) -> SipMessage {
        let mut b = RequestBuilder::new(Method::Bye, "sip:alice@10.0.0.2:5060".parse().unwrap());
        b.from(NameAddr::new("sip:bob@lab".parse().unwrap()).with_tag("tb"))
            .to(NameAddr::new("sip:alice@lab".parse().unwrap()).with_tag("ta"))
            .call_id(call_id)
            .cseq(CSeq::new(100, Method::Bye))
            .via(Via::udp("10.0.0.3:5060", "z9hG4bK-forged"));
        b.build()
    }

    #[test]
    fn call_setup_produces_established_event() {
        let mut h = Harness::new(EventGenConfig::default());
        let evs = h.establish_call();
        assert!(evs
            .iter()
            .any(|e| e.class() == EventClass::CallEstablished));
    }

    #[test]
    fn bye_then_rtp_is_orphan() {
        let mut h = Harness::new(EventGenConfig::default());
        h.establish_call();
        let evs = h.feed_sip(B_IP, A_IP, &bye_claiming_bob("c1"));
        assert!(evs.iter().any(|e| e.class() == EventClass::CallTornDown));
        // RTP from B to A's sink right after the BYE.
        let evs = h.feed_rtp(B_IP, A_IP, 8000, 7, 100);
        assert!(
            evs.iter().any(|e| e.class() == EventClass::OrphanRtpAfterBye),
            "{evs:?}"
        );
        // Only the first orphan packet produces the event.
        let evs = h.feed_rtp(B_IP, A_IP, 8000, 7, 101);
        assert!(!evs.iter().any(|e| e.class() == EventClass::OrphanRtpAfterBye));
    }

    #[test]
    fn rtp_outside_monitor_window_is_not_orphan() {
        let mut h = Harness::new(EventGenConfig {
            monitor_window: SimDuration::from_millis(50),
            ..EventGenConfig::default()
        });
        h.establish_call();
        h.feed_sip(B_IP, A_IP, &bye_claiming_bob("c1"));
        h.now += 100; // beyond m
        let evs = h.feed_rtp(B_IP, A_IP, 8000, 7, 100);
        assert!(!evs.iter().any(|e| e.class() == EventClass::OrphanRtpAfterBye));
    }

    #[test]
    fn rtp_from_caller_after_callee_bye_is_fine() {
        let mut h = Harness::new(EventGenConfig::default());
        h.establish_call();
        h.feed_sip(B_IP, A_IP, &bye_claiming_bob("c1"));
        // A→B packets (src A) are not from the claimed terminator.
        let evs = h.feed_rtp(A_IP, B_IP, 9000, 9, 50);
        assert!(!evs.iter().any(|e| e.class() == EventClass::OrphanRtpAfterBye));
    }

    #[test]
    fn cross_protocol_off_kills_orphan_events() {
        let mut h = Harness::new(EventGenConfig {
            cross_protocol: false,
            ..EventGenConfig::default()
        });
        h.establish_call();
        h.feed_sip(B_IP, A_IP, &bye_claiming_bob("c1"));
        let evs = h.feed_rtp(B_IP, A_IP, 8000, 7, 100);
        assert!(!evs.iter().any(|e| e.class() == EventClass::OrphanRtpAfterBye));
    }

    #[test]
    fn forged_reinvite_with_continuing_old_stream_is_orphan() {
        let mut h = Harness::new(EventGenConfig::default());
        h.establish_call();
        // B's legit stream to A is running with ssrc 7.
        h.feed_rtp(B_IP, A_IP, 8000, 7, 10);
        h.feed_rtp(B_IP, A_IP, 8000, 7, 11);
        // Forged re-INVITE: "bob moved to the attacker".
        let sdp = SessionDescription::audio_offer("bob", ATTACKER, 7000);
        let mut b = RequestBuilder::new(Method::Invite, "sip:alice@10.0.0.2:5060".parse().unwrap());
        b.from(NameAddr::new("sip:bob@lab".parse().unwrap()).with_tag("tb"))
            .to(NameAddr::new("sip:alice@lab".parse().unwrap()).with_tag("ta"))
            .call_id("c1")
            .cseq(CSeq::new(101, Method::Invite))
            .via(Via::udp("10.0.0.3:5060", "z9hG4bK-forged-r"))
            .body("application/sdp", sdp.to_string());
        let evs = h.feed_sip(B_IP, A_IP, &b.build());
        assert!(evs.iter().any(|e| e.class() == EventClass::CallRedirected));
        // B's old stream continues: orphan.
        let evs = h.feed_rtp(B_IP, A_IP, 8000, 7, 12);
        assert!(
            evs.iter()
                .any(|e| e.class() == EventClass::OrphanRtpAfterRedirect),
            "{evs:?}"
        );
    }

    #[test]
    fn genuine_migration_with_fresh_ssrc_is_clean() {
        let mut h = Harness::new(EventGenConfig::default());
        h.establish_call();
        h.feed_rtp(B_IP, A_IP, 8000, 7, 10);
        // Genuine re-INVITE from B: new port on B, old stream stops.
        let sdp = SessionDescription::audio_offer("bob", B_IP, 9100);
        let mut b = RequestBuilder::new(Method::Invite, "sip:alice@10.0.0.2:5060".parse().unwrap());
        b.from(NameAddr::new("sip:bob@lab".parse().unwrap()).with_tag("tb"))
            .to(NameAddr::new("sip:alice@lab".parse().unwrap()).with_tag("ta"))
            .call_id("c1")
            .cseq(CSeq::new(2, Method::Invite))
            .via(Via::udp("10.0.0.3:5060", "z9hG4bK-mig"))
            .body("application/sdp", sdp.to_string());
        h.feed_sip(B_IP, A_IP, &b.build());
        // New stream from B with a fresh SSRC: not an orphan.
        let evs = h.feed_rtp(B_IP, A_IP, 8000, 99, 500);
        assert!(
            !evs.iter()
                .any(|e| e.class() == EventClass::OrphanRtpAfterRedirect),
            "{evs:?}"
        );
    }

    #[test]
    fn seq_jump_emits_violation() {
        let mut h = Harness::new(EventGenConfig::default());
        h.establish_call();
        h.feed_rtp(B_IP, A_IP, 8000, 7, 100);
        let evs = h.feed_rtp(B_IP, A_IP, 8000, 7, 101);
        assert!(!evs.iter().any(|e| e.class() == EventClass::RtpSeqViolation));
        let evs = h.feed_rtp(B_IP, A_IP, 8000, 7, 5000);
        assert!(evs.iter().any(
            |e| matches!(&e.kind, EventKind::RtpSeqViolation { delta, .. } if *delta == 4899)
        ));
    }

    #[test]
    fn small_loss_does_not_violate_seq() {
        let mut h = Harness::new(EventGenConfig::default());
        h.establish_call();
        h.feed_rtp(B_IP, A_IP, 8000, 7, 100);
        let evs = h.feed_rtp(B_IP, A_IP, 8000, 7, 150); // 50 lost
        assert!(!evs.iter().any(|e| e.class() == EventClass::RtpSeqViolation));
    }

    #[test]
    fn unknown_source_rtp_flagged_once() {
        let mut h = Harness::new(EventGenConfig::default());
        h.establish_call();
        let evs = h.feed_rtp(ATTACKER, A_IP, 8000, 55, 40_000);
        assert!(evs.iter().any(|e| e.class() == EventClass::RtpUnknownSource));
        let evs = h.feed_rtp(ATTACKER, A_IP, 8000, 55, 40_001);
        assert!(!evs.iter().any(|e| e.class() == EventClass::RtpUnknownSource));
    }

    #[test]
    fn garbage_to_media_sink_emits() {
        let mut h = Harness::new(EventGenConfig::default());
        h.establish_call();
        h.now += 1;
        let evs = h.feed(Footprint {
            meta: PacketMeta {
                time: SimTime::from_millis(h.now),
                src: ATTACKER,
                src_port: 4444,
                dst: A_IP,
                dst_port: 8000,
            },
            body: FootprintBody::UdpOther { payload_len: 172 },
        });
        assert!(evs.iter().any(|e| e.class() == EventClass::MediaPortGarbage));
    }

    #[test]
    fn malformed_sip_event_from_violations() {
        let mut h = Harness::new(EventGenConfig::default());
        // An INVITE missing Max-Forwards (the fraud craft).
        let mut b = RequestBuilder::new(Method::Invite, "sip:bob@lab".parse().unwrap());
        b.from(NameAddr::new("sip:mallory@lab".parse().unwrap()).with_tag("tm"))
            .to(NameAddr::new("sip:bob@lab".parse().unwrap()))
            .call_id("fraud-1")
            .cseq(CSeq::new(1, Method::Invite))
            .via(Via::udp("10.0.0.66:5060", "z9hG4bK-f"))
            .without(&HeaderName::MaxForwards);
        let evs = h.feed_sip(ATTACKER, Ipv4Addr::new(10, 0, 0, 1), &b.build());
        assert!(evs.iter().any(|e| e.class() == EventClass::SipMalformed));
    }

    #[test]
    fn acct_mismatch_when_billed_party_never_called() {
        let mut h = Harness::new(EventGenConfig::default());
        // mallory calls bob (SIP observed)...
        let sdp = SessionDescription::audio_offer("mallory", ATTACKER, 7200);
        let mut b = RequestBuilder::new(Method::Invite, "sip:bob@lab".parse().unwrap());
        b.from(NameAddr::new("sip:mallory@lab".parse().unwrap()).with_tag("tm"))
            .to(NameAddr::new("sip:bob@lab".parse().unwrap()))
            .call_id("fraud-1")
            .cseq(CSeq::new(1, Method::Invite))
            .via(Via::udp("10.0.0.66:5060", "z9hG4bK-f"))
            .body("application/sdp", sdp.to_string());
        h.feed_sip(ATTACKER, Ipv4Addr::new(10, 0, 0, 1), &b.build());
        // ...but the accounting system bills alice.
        h.now += 1;
        let evs = h.feed(Footprint {
            meta: PacketMeta {
                time: SimTime::from_millis(h.now),
                src: Ipv4Addr::new(10, 0, 0, 1),
                src_port: 2427,
                dst: Ipv4Addr::new(10, 0, 0, 4),
                dst_port: 2427,
            },
            body: FootprintBody::Acct("ACCT START alice@lab bob@lab fraud-1".parse().unwrap()),
        });
        assert!(evs.iter().any(|e| matches!(
            &e.kind,
            EventKind::AcctMismatch { billed, observed_caller: Some(c), .. }
                if billed == "alice@lab" && c == "mallory@lab"
        )));
    }

    #[test]
    fn honest_billing_produces_no_mismatch() {
        let mut h = Harness::new(EventGenConfig::default());
        h.establish_call();
        h.now += 1;
        let evs = h.feed(Footprint {
            meta: PacketMeta {
                time: SimTime::from_millis(h.now),
                src: Ipv4Addr::new(10, 0, 0, 1),
                src_port: 2427,
                dst: Ipv4Addr::new(10, 0, 0, 4),
                dst_port: 2427,
            },
            body: FootprintBody::Acct("ACCT START alice@lab bob@lab c1".parse().unwrap()),
        });
        assert!(!evs.iter().any(|e| e.class() == EventClass::AcctMismatch));
    }

    fn register(src_user: &str, n: u32) -> SipMessage {
        let aor: scidive_sip::uri::SipUri = format!("sip:{src_user}@lab").parse().unwrap();
        let mut b = RequestBuilder::new(Method::Register, "sip:lab".parse().unwrap());
        b.from(NameAddr::new(aor.clone()).with_tag("t"))
            .to(NameAddr::new(aor))
            .call_id(format!("reg-{src_user}-{n}"))
            .cseq(CSeq::new(n, Method::Register))
            .via(Via::udp("10.0.0.9:5060", format!("z9hG4bK-{n}")));
        b.build()
    }

    #[test]
    fn register_flood_detected_per_source() {
        let mut h = Harness::new(EventGenConfig {
            flood_threshold: 5,
            ..EventGenConfig::default()
        });
        let proxy = Ipv4Addr::new(10, 0, 0, 1);
        let mut flood_events = 0;
        for n in 1..=6u32 {
            let req = register("mallory", n);
            flood_events += h
                .feed_sip(ATTACKER, proxy, &req)
                .iter()
                .filter(|e| e.class() == EventClass::RegisterFlood)
                .count();
            let mut resp = response_to(&req, StatusCode::UNAUTHORIZED, None);
            resp.headers.set(
                HeaderName::WwwAuthenticate,
                "Digest realm=\"lab\", nonce=\"n1\"",
            );
            // 401 travels proxy → attacker.
            flood_events += h
                .feed_sip(proxy, ATTACKER, &resp)
                .iter()
                .filter(|e| e.class() == EventClass::RegisterFlood)
                .count();
        }
        assert_eq!(flood_events, 1, "flood event fires exactly once");
    }

    #[test]
    fn benign_auth_cycle_not_flood() {
        let mut h = Harness::new(EventGenConfig {
            flood_threshold: 5,
            ..EventGenConfig::default()
        });
        let proxy = Ipv4Addr::new(10, 0, 0, 1);
        // Six different clients each do one challenge cycle.
        let mut events = 0;
        for i in 0..6u8 {
            let client = Ipv4Addr::new(10, 0, 1, i + 1);
            let req = register(&format!("user{i}"), 1);
            events += h.feed_sip(client, proxy, &req).len();
            let resp = response_to(&req, StatusCode::UNAUTHORIZED, None);
            events += h
                .feed_sip(proxy, client, &resp)
                .iter()
                .filter(|e| e.class() == EventClass::RegisterFlood)
                .count();
        }
        assert_eq!(events, 0, "stateful tracking keeps sources apart");
    }

    #[test]
    fn stateless_mode_floods_on_benign_churn() {
        let mut h = Harness::new(EventGenConfig {
            flood_threshold: 5,
            stateful: false,
            ..EventGenConfig::default()
        });
        let proxy = Ipv4Addr::new(10, 0, 0, 1);
        let mut flood = 0;
        for i in 0..6u8 {
            let client = Ipv4Addr::new(10, 0, 1, i + 1);
            let req = register(&format!("user{i}"), 1);
            h.feed_sip(client, proxy, &req);
            let resp = response_to(&req, StatusCode::UNAUTHORIZED, None);
            flood += h
                .feed_sip(proxy, client, &resp)
                .iter()
                .filter(|e| e.class() == EventClass::RegisterFlood)
                .count();
        }
        assert_eq!(flood, 1, "global 4xx counting false-alarms");
    }

    #[test]
    fn password_guessing_detected_by_distinct_responses() {
        let mut h = Harness::new(EventGenConfig {
            guess_threshold: 3,
            ..EventGenConfig::default()
        });
        let proxy = Ipv4Addr::new(10, 0, 0, 1);
        let mut hits = 0;
        for n in 1..=4u32 {
            let mut req = register("alice", n);
            req.headers.set(
                HeaderName::Authorization,
                format!(
                    "Digest username=\"alice\", realm=\"lab\", nonce=\"n1\", uri=\"sip:lab\", response=\"{:032x}\"",
                    n
                ),
            );
            hits += h
                .feed_sip(ATTACKER, proxy, &req)
                .iter()
                .filter(|e| e.class() == EventClass::PasswordGuessing)
                .count();
        }
        assert_eq!(hits, 1);
    }

    #[test]
    fn single_retry_auth_is_not_guessing() {
        let mut h = Harness::new(EventGenConfig {
            guess_threshold: 3,
            ..EventGenConfig::default()
        });
        let proxy = Ipv4Addr::new(10, 0, 0, 1);
        let mut req = register("alice", 2);
        req.headers.set(
            HeaderName::Authorization,
            "Digest username=\"alice\", realm=\"lab\", nonce=\"n1\", uri=\"sip:lab\", response=\"aaaa\"",
        );
        let evs = h.feed_sip(A_IP, proxy, &req);
        assert!(!evs.iter().any(|e| e.class() == EventClass::PasswordGuessing));
    }

    fn message_from(aor: &str, src_tag: &str) -> SipMessage {
        let from: scidive_sip::uri::SipUri = format!("sip:{aor}").parse().unwrap();
        let mut b = RequestBuilder::new(Method::Message, "sip:alice@lab".parse().unwrap());
        b.from(NameAddr::new(from).with_tag(src_tag))
            .to(NameAddr::new("sip:alice@lab".parse().unwrap()))
            .call_id(format!("im-{src_tag}"))
            .cseq(CSeq::new(1, Method::Message))
            .via(Via::udp("10.0.0.3:5060", format!("z9hG4bK-{src_tag}")))
            .body("text/plain", "hi");
        b.build()
    }

    #[test]
    fn fake_im_mismatch_detected() {
        let mut h = Harness::new(EventGenConfig::default());
        // bob's identity is learned from his REGISTER.
        h.feed_sip(B_IP, Ipv4Addr::new(10, 0, 0, 1), &register("bob", 1));
        // Fake message claiming bob, from the attacker's address.
        let evs = h.feed_sip(ATTACKER, A_IP, &message_from("bob@lab", "x1"));
        assert!(evs.iter().any(|e| matches!(
            &e.kind,
            EventKind::ImSourceMismatch { claimed_aor, src_ip, expected_ip }
                if claimed_aor == "bob@lab" && *src_ip == ATTACKER && *expected_ip == B_IP
        )));
    }

    #[test]
    fn legit_im_from_known_ip_is_clean() {
        let mut h = Harness::new(EventGenConfig::default());
        h.feed_sip(B_IP, Ipv4Addr::new(10, 0, 0, 1), &register("bob", 1));
        let evs = h.feed_sip(B_IP, A_IP, &message_from("bob@lab", "x2"));
        assert!(!evs.iter().any(|e| e.class() == EventClass::ImSourceMismatch));
    }

    #[test]
    fn mobility_after_interval_is_allowed() {
        let mut h = Harness::new(EventGenConfig {
            im_mobility_interval: SimDuration::from_millis(100),
            ..EventGenConfig::default()
        });
        h.feed_sip(B_IP, Ipv4Addr::new(10, 0, 0, 1), &register("bob", 1));
        h.now += 200; // bob has had time to move
        let new_home = Ipv4Addr::new(10, 0, 0, 30);
        let evs = h.feed_sip(new_home, A_IP, &message_from("bob@lab", "x3"));
        assert!(!evs.iter().any(|e| e.class() == EventClass::ImSourceMismatch));
        // And the new address is now the expected one.
        let evs = h.feed_sip(ATTACKER, A_IP, &message_from("bob@lab", "x4"));
        assert!(evs.iter().any(|e| matches!(
            &e.kind,
            EventKind::ImSourceMismatch { expected_ip, .. } if *expected_ip == new_home
        )));
    }

    #[test]
    fn spoofed_fake_im_evades_endpoint_rule() {
        // The paper's concession: an attacker who spoofs the IP too is
        // indistinguishable at the endpoint.
        let mut h = Harness::new(EventGenConfig::default());
        h.feed_sip(B_IP, Ipv4Addr::new(10, 0, 0, 1), &register("bob", 1));
        let evs = h.feed_sip(B_IP, A_IP, &message_from("bob@lab", "x5"));
        assert!(!evs.iter().any(|e| e.class() == EventClass::ImSourceMismatch));
    }

    #[test]
    fn relayed_im_is_not_checked_against_relay_ip() {
        let proxy = Ipv4Addr::new(10, 0, 0, 1);
        let mut h = Harness::new(EventGenConfig {
            infrastructure_ips: vec![proxy],
            ..EventGenConfig::default()
        });
        h.feed_sip(B_IP, proxy, &register("bob", 1));
        // The proxy-relayed copy (src = proxy) is skipped entirely.
        let evs = h.feed_sip(proxy, A_IP, &message_from("bob@lab", "x6"));
        assert!(!evs.iter().any(|e| e.class() == EventClass::ImSourceMismatch));
    }
}
