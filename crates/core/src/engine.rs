//! The assembled SCIDIVE engine: Distiller → Trails → Event Generator →
//! Ruleset, plus a simulator node for live endpoint deployment.

use crate::alert::Alert;
use crate::distill::{Distiller, DistillerConfig, DistillStats};
use crate::event::{Event, EventGenConfig, EventGenerator};
use crate::footprint::Footprint;
use crate::observe::{
    merge_rule_evals, DispatchCounters, EngineObservation, EngineObserver, ObserveConfig,
    ObservedHistograms, PipelineObservation, RuleEval, StateGauges,
};
use crate::proto::ProtocolSet;
use crate::rate::{FoldConfig, RateConfig, RateDelta, RateHub};
use crate::rules::{
    AlertSink, CompiledRuleset, Program, Rule, RuleCtx, RuleToggles, RulesetBlueprint, SpecError,
};
use crate::trail::{TrailStats, TrailStore, TrailStoreConfig};
use scidive_netsim::node::{Node, NodeCtx};
use scidive_netsim::packet::IpPacket;
use scidive_netsim::time::SimTime;
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::path::PathBuf;

/// Where an engine's ruleset comes from.
///
/// The built-in rules are always governed by [`ScidiveConfig::rules`];
/// the DSL variants *append* an operator program (see
/// [`crate::rules::dsl`]) behind them, exactly like
/// [`Scidive::add_rules_from_spec`] would, but resolved at build time so
/// the sharded pipeline can compile the same program on every worker.
#[derive(Debug, Clone, Default)]
pub enum RulesetSource {
    /// Only the toggled built-in rules.
    #[default]
    Builtin,
    /// Built-ins plus an operator DSL program given inline.
    Dsl(String),
    /// Built-ins plus an operator DSL program loaded from a file
    /// (conventionally `*.scid`).
    DslFile(PathBuf),
}

impl RulesetSource {
    /// Resolves the source into a validated [`Program`] (`None` for
    /// [`RulesetSource::Builtin`]).
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if the file cannot be read or the
    /// program does not compile.
    pub fn program(&self) -> Result<Option<Program>, SpecError> {
        match self {
            RulesetSource::Builtin => Ok(None),
            RulesetSource::Dsl(text) => Ok(Some(Program::parse(text)?)),
            RulesetSource::DslFile(path) => {
                let text = std::fs::read_to_string(path).map_err(|e| SpecError {
                    line: 0,
                    message: format!("cannot read {}: {e}", path.display()),
                })?;
                Ok(Some(Program::parse(&text)?))
            }
        }
    }
}

/// Full engine configuration.
#[derive(Debug, Clone)]
pub struct ScidiveConfig {
    /// Distiller settings.
    pub distiller: DistillerConfig,
    /// Trail retention settings.
    pub trails: TrailStoreConfig,
    /// Event-generation settings (incl. the stateful / cross-protocol
    /// ablation switches).
    pub events: EventGenConfig,
    /// Which built-in rules to install.
    pub rules: RuleToggles,
    /// Observability settings (histograms on, trace off by default).
    pub observe: ObserveConfig,
    /// Cap on undrained events retained for cooperative exchange
    /// (see [`Scidive::drain_events`]). `0` disables the cap.
    pub event_log_cap: usize,
    /// Run the ruleset as a full scan (every rule sees every event)
    /// instead of the compiled event-class dispatch table. The reference
    /// mode for equivalence testing; slower, never needed in production.
    pub full_scan_rules: bool,
    /// The protocol-module registry every pipeline stage dispatches
    /// through (classification, attribution, event generation). Built
    /// via [`crate::proto::ProtocolSetBuilder`]; the default covers
    /// SIP / RTP / RTCP / accounting plus the fallback.
    pub protocols: ProtocolSet,
    /// Exact per-key rate state (the reference) versus constant-memory
    /// sketches for the flood-style detections. Copied into
    /// [`ScidiveConfig::events`] at build time; see [`crate::rate`].
    pub exact_rate_state: bool,
    /// Sketch dimensioning for the rate trackers (also copied into the
    /// event config).
    pub rate: RateConfig,
    /// Cross-shard rate aggregation (the fold plane). Consulted only by
    /// [`crate::shard::ShardedScidive`]; a single engine evaluates rate
    /// clauses locally either way.
    pub fold: FoldConfig,
    /// Where the ruleset comes from: the toggled built-ins alone, or
    /// built-ins plus an operator DSL program (inline or from a file).
    pub ruleset: RulesetSource,
}

impl Default for ScidiveConfig {
    fn default() -> ScidiveConfig {
        ScidiveConfig {
            distiller: DistillerConfig::default(),
            trails: TrailStoreConfig::default(),
            events: EventGenConfig::default(),
            rules: RuleToggles::default(),
            observe: ObserveConfig::default(),
            event_log_cap: 100_000,
            full_scan_rules: false,
            protocols: ProtocolSet::default(),
            exact_rate_state: true,
            rate: RateConfig::default(),
            fold: FoldConfig::default(),
            ruleset: RulesetSource::default(),
        }
    }
}

impl ScidiveConfig {
    /// The event-generator config with the engine-level rate switches
    /// folded in (both planes must agree on mode and dimensioning).
    pub(crate) fn event_config(&self) -> EventGenConfig {
        let mut events = self.events.clone();
        events.exact_rate_state = self.exact_rate_state;
        events.rate = self.rate.clone();
        events
    }

    /// Resolves [`ScidiveConfig::ruleset`] into a generation-0
    /// [`RulesetBlueprint`] — the sharded pipeline ships this to every
    /// worker so they all lower the identical ruleset.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if the configured DSL program does not
    /// compile (or its file cannot be read).
    pub fn blueprint(&self) -> Result<RulesetBlueprint, SpecError> {
        Ok(RulesetBlueprint {
            toggles: self.rules.clone(),
            program: self.ruleset.program()?,
            generation: 0,
        })
    }
}

/// Pipeline counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineStats {
    /// Frames offered to the engine.
    pub frames: u64,
    /// Footprints distilled.
    pub footprints: u64,
    /// Events generated.
    pub events: u64,
    /// Alerts raised.
    pub alerts: u64,
}

impl std::ops::Add for PipelineStats {
    type Output = PipelineStats;
    fn add(self, rhs: PipelineStats) -> PipelineStats {
        PipelineStats {
            frames: self.frames + rhs.frames,
            footprints: self.footprints + rhs.footprints,
            events: self.events + rhs.events,
            alerts: self.alerts + rhs.alerts,
        }
    }
}

/// A footprint that already passed distillation, plus any events an
/// upstream [`crate::event::IdentityPlane`] generated for it. The unit a
/// [`crate::shard::ShardedScidive`] dispatcher hands to its shards.
#[derive(Debug)]
pub struct DistilledFootprint {
    /// The distilled footprint.
    pub footprint: Footprint,
    /// Identity-plane events to append behind the footprint's own
    /// session-plane events.
    pub injected_events: Vec<Event>,
}

/// The SCIDIVE intrusion detection engine.
///
/// # Examples
///
/// ```
/// use scidive_core::engine::{Scidive, ScidiveConfig};
/// use scidive_netsim::packet::IpPacket;
/// use scidive_netsim::time::SimTime;
/// use std::net::Ipv4Addr;
///
/// let mut ids = Scidive::new(ScidiveConfig::default());
/// let frame = IpPacket::udp(
///     Ipv4Addr::new(10, 0, 0, 1), 5060,
///     Ipv4Addr::new(10, 0, 0, 2), 5060,
///     b"OPTIONS sip:b@lab SIP/2.0\r\nCall-ID: x\r\n\r\n".as_ref(),
/// );
/// let alerts = ids.on_frame(SimTime::ZERO, &frame);
/// // A lone OPTIONS only trips the format rule (missing headers).
/// assert!(alerts.iter().all(|a| a.rule == "sip-format"));
/// ```
pub struct Scidive {
    distiller: Distiller,
    trails: TrailStore,
    events: EventGenerator,
    rules: CompiledRuleset,
    alerts: Vec<Alert>,
    stats: PipelineStats,
    observer: EngineObserver,
    /// Undrained events, kept for cooperative exchange (paper §6:
    /// detectors "exchange event objects"). Bounded by
    /// `event_log_cap`; drained by [`Scidive::drain_events`].
    event_log: Vec<crate::event::Event>,
    event_log_cap: usize,
    /// Shared rate trackers for the ruleset (see [`crate::rate::RateHub`]).
    rates: RateHub,
    /// Generation of the installed ruleset (bumped by hot swaps).
    ruleset_generation: u64,
    /// Final eval counters of rulesets retired by hot swaps, folded
    /// into every observation so invocation totals stay monotonic.
    retired_evals: Vec<RuleEval>,
}

impl Scidive {
    /// Builds the engine with its configured ruleset, compiled into the
    /// event-class dispatch table (or full-scan when
    /// [`ScidiveConfig::full_scan_rules`] is set).
    ///
    /// # Panics
    ///
    /// Panics if [`ScidiveConfig::ruleset`] names a DSL program that
    /// does not compile; use [`Scidive::try_new`] to handle that case.
    pub fn new(config: ScidiveConfig) -> Scidive {
        Scidive::try_new(config).expect("configured ruleset compiles")
    }

    /// [`Scidive::new`], surfacing ruleset compile errors instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// Returns the [`SpecError`] if the configured DSL program does not
    /// compile (or its file cannot be read).
    pub fn try_new(config: ScidiveConfig) -> Result<Scidive, SpecError> {
        let blueprint = config.blueprint()?;
        Ok(Scidive::assemble(config, &blueprint, false, 1))
    }

    /// Builds a shard engine: identical to [`Scidive::new`] except the
    /// event generator runs without an identity plane, because the
    /// sharded dispatcher owns the one shared plane and injects its
    /// events via [`Scidive::on_distilled`].
    pub fn data_plane(config: ScidiveConfig) -> Scidive {
        Scidive::data_plane_with_shards(config, 1)
    }

    /// [`Scidive::data_plane`] for one shard of a `shards`-way pipeline.
    /// When the fold plane is enabled the rate hub runs in aggregated
    /// mode ([`crate::rate::RateHub::new_aggregated`]): rate rules
    /// observe and forward candidates, and the dispatcher's
    /// [`crate::rate::GlobalRatePlane`] owns threshold evaluation.
    ///
    /// # Panics
    ///
    /// Panics if the configured DSL program does not compile.
    pub fn data_plane_with_shards(config: ScidiveConfig, shards: usize) -> Scidive {
        let blueprint = config.blueprint().expect("configured ruleset compiles");
        Scidive::assemble(config, &blueprint, true, shards)
    }

    /// A shard engine lowering an explicit blueprint — the entry point
    /// the sharded workers use, both at boot and (indirectly, via
    /// [`Scidive::swap_ruleset`]) at swap barriers, so a swapped-in
    /// ruleset and a boot ruleset built from the same blueprint are the
    /// same object graph.
    pub fn data_plane_from_blueprint(
        config: ScidiveConfig,
        blueprint: &RulesetBlueprint,
        shards: usize,
    ) -> Scidive {
        Scidive::assemble(config, blueprint, true, shards)
    }

    fn assemble(
        config: ScidiveConfig,
        blueprint: &RulesetBlueprint,
        data_plane: bool,
        shards: usize,
    ) -> Scidive {
        let rules = blueprint.build(config.full_scan_rules, config.trails.idle_timeout);
        let events_cfg = config.event_config();
        let rates = if data_plane && config.fold.enabled {
            RateHub::new_aggregated(config.rate.clone(), config.exact_rate_state, shards)
        } else {
            RateHub::new(config.rate.clone(), config.exact_rate_state)
        };
        let events = if data_plane {
            EventGenerator::data_plane_with_protocols(events_cfg, &config.protocols)
        } else {
            EventGenerator::with_protocols(events_cfg, &config.protocols)
        };
        Scidive {
            distiller: Distiller::with_protocols(config.distiller, config.protocols.clone()),
            trails: TrailStore::with_protocols(config.trails, config.protocols.clone()),
            events,
            rules,
            alerts: Vec::new(),
            stats: PipelineStats::default(),
            observer: EngineObserver::new(&config.observe),
            event_log: Vec::new(),
            event_log_cap: config.event_log_cap,
            rates,
            ruleset_generation: blueprint.generation,
            retired_evals: Vec::new(),
        }
    }

    /// Atomically replaces the installed ruleset with the blueprint's,
    /// adopting the per-session state of every rule that survived the
    /// swap unchanged ([`CompiledRuleset::adopt_state`]): partial
    /// sequences, fired-once latches and exact threshold windows carry
    /// over; changed or new rules start fresh. The old ruleset's eval
    /// counters are retired into this engine's observation so per-rule
    /// invocation totals stay monotonic across swaps.
    ///
    /// For a single engine the "barrier" is trivial — the swap happens
    /// between two frames. The sharded pipeline reaches this through a
    /// FIFO barrier token so every shard swaps at the same frame
    /// boundary; see [`crate::shard::ShardedScidive::swap_ruleset`].
    ///
    /// Returns the number of rules whose state carried over.
    pub fn swap_ruleset(&mut self, blueprint: &RulesetBlueprint) -> usize {
        let mut fresh = blueprint.build(self.rules.is_full_scan(), self.rules.state_timeout());
        let old = std::mem::replace(&mut self.rules, CompiledRuleset::new(Vec::new(), false));
        let (adopted, retired) = fresh.adopt_state(old);
        self.rules = fresh;
        merge_rule_evals(&mut self.retired_evals, &retired);
        self.ruleset_generation = blueprint.generation;
        adopted
    }

    /// Swaps out this engine's accumulated fold-plane delta
    /// ([`crate::rate::RateHub::take_delta`]) — the shard side of a fold
    /// barrier. Empty unless the hub runs in aggregated mode.
    pub fn take_rate_delta(&mut self) -> RateDelta {
        self.rates.take_delta()
    }

    /// Adds a custom rule alongside the built-ins. The rule is indexed
    /// by its [`crate::rules::Rule::interests`] and inherits the
    /// trail-store idle timeout for its per-session state.
    pub fn add_rule(&mut self, rule: Box<dyn Rule>) {
        self.rules.push(rule);
    }

    /// Parses an operator rule specification (see
    /// [`crate::rules::parse_ruleset`]) and installs the rules.
    ///
    /// # Errors
    ///
    /// Returns the parse error, installing nothing, if the spec is
    /// invalid.
    pub fn add_rules_from_spec(&mut self, spec: &str) -> Result<usize, crate::rules::SpecError> {
        let rules = crate::rules::parse_ruleset(spec)?;
        let n = rules.len();
        for rule in rules {
            self.rules.push(rule);
        }
        Ok(n)
    }

    /// Feeds one frame; returns the alerts it raised (also retained).
    pub fn on_frame(&mut self, time: SimTime, pkt: &IpPacket) -> Vec<Alert> {
        self.stats.frames += 1;
        let mut new_alerts = Vec::new();
        if let Some(fp) = self.distiller.distill(time, pkt) {
            self.process_footprint(time, fp, Vec::new(), &mut new_alerts);
        }
        self.stats.alerts += new_alerts.len() as u64;
        self.alerts.extend(new_alerts.iter().cloned());
        new_alerts
    }

    /// Feeds one frame's already-distilled footprint (the shard-side
    /// entry point: the dispatcher runs the distiller and the identity
    /// plane, shards run everything downstream). Counts one frame
    /// whether or not it carried a footprint — `None` marks frames that
    /// produced nothing (fragments in flight), so per-shard frame
    /// counters still sum to the number of frames the dispatcher saw.
    pub fn on_distilled(
        &mut self,
        time: SimTime,
        footprint: Option<DistilledFootprint>,
    ) -> Vec<Alert> {
        self.stats.frames += 1;
        let mut new_alerts = Vec::new();
        if let Some(dfp) = footprint {
            self.process_footprint(time, dfp.footprint, dfp.injected_events, &mut new_alerts);
        }
        self.stats.alerts += new_alerts.len() as u64;
        self.alerts.extend(new_alerts.iter().cloned());
        new_alerts
    }

    /// Runs one footprint through trails → events → rules. `injected`
    /// events (from an external identity plane) are appended after the
    /// footprint's own events, matching the embedded-plane event order.
    fn process_footprint(
        &mut self,
        time: SimTime,
        fp: Footprint,
        injected: Vec<Event>,
        new_alerts: &mut Vec<Alert>,
    ) {
        self.stats.footprints += 1;
        let (fp, key) = self.trails.insert(fp);
        let mut events = self.events.on_footprint(&fp, &key, &self.trails);
        events.extend(injected);
        self.stats.events += events.len() as u64;
        let alerts_before = new_alerts.len();
        let timer = self.observer.match_timer();
        {
            // One context and one sink for the whole batch: the inner
            // loop does no allocation or rebuild work per (event, rule).
            let ctx = RuleCtx {
                now: time,
                trails: &self.trails,
                rates: &self.rates,
            };
            let mut sink = AlertSink::new(new_alerts);
            for ev in &events {
                self.rules.dispatch(ev, &ctx, &mut sink);
            }
        }
        self.observer.record_match(timer);
        if new_alerts.len() > alerts_before {
            // The detection delay is sim-time from the triggering
            // trail's birth to the alert — the paper's end-to-end
            // latency notion.
            let delay = self
                .trails
                .trail(&key)
                .map(|t| time.saturating_since(t.created()));
            for alert in &new_alerts[alerts_before..] {
                self.observer.record_alert(alert.severity, delay);
            }
        }
        if self.observer.trace_enabled() {
            self.observer.push_trace(
                time,
                key.session.to_string(),
                format!("{:?}", key.proto),
                events.len() as u32,
                (new_alerts.len() - alerts_before) as u32,
            );
        }
        if self.event_log_cap == 0 || self.event_log.len() < self.event_log_cap {
            self.event_log.extend(events);
        }
    }

    /// Replays a capture (time, packet) in order.
    pub fn process_capture<'a, I>(&mut self, frames: I) -> usize
    where
        I: IntoIterator<Item = (SimTime, &'a IpPacket)>,
    {
        let before = self.alerts.len();
        for (time, pkt) in frames {
            self.on_frame(time, pkt);
        }
        self.alerts.len() - before
    }

    /// All alerts raised so far.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Drains the events generated since the last drain — the "event
    /// objects" a cooperative deployment exchanges between detectors
    /// (bounded at [`ScidiveConfig::event_log_cap`] between drains).
    pub fn drain_events(&mut self) -> Vec<crate::event::Event> {
        std::mem::take(&mut self.event_log)
    }

    /// Pipeline counters.
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }

    /// Distiller counters.
    pub fn distill_stats(&self) -> DistillStats {
        self.distiller.stats()
    }

    /// Trail-store counters.
    pub fn trail_stats(&self) -> TrailStats {
        self.trails.stats()
    }

    /// Read access to the trails (for harness inspection).
    pub fn trails(&self) -> &TrailStore {
        &self.trails
    }

    /// Alert counts by severity so far.
    pub fn severity_counts(&self) -> crate::observe::SeverityCounts {
        self.observer.severity()
    }

    /// Current sizes and lifecycle counters of this engine's stateful
    /// stores — the gauges that must plateau under sustained load.
    pub fn gauges(&self) -> StateGauges {
        let index = self.trails.media_index();
        let lifecycle = index.lifecycle_stats();
        let rule_state = self.rules.state_stats();
        let mut rate = self.rates.stats();
        rate.absorb(self.events.rate_stats());
        StateGauges {
            trails: self.trails.trail_count() as u64,
            retained_footprints: self.trails.footprint_count() as u64,
            media_index: index.len() as u64,
            interner: index.interner_len() as u64,
            synthetic_keys: index.synthetic_key_count() as u64,
            rule_state: rule_state.sessions,
            session_plane: self.events.session_count() as u64,
            expired_trails: self.trails.stats().expired_trails,
            media_expired: lifecycle.media_expired,
            synthetic_expired: lifecycle.synthetic_expired,
            interner_expired: lifecycle.interner_expired,
            rule_state_expired: rule_state.expired,
            session_plane_expired: self.events.sessions_expired(),
            router_media_index: 0,
            router_interner: 0,
            router_synthetic_keys: 0,
            rate_trackers: rate.trackers,
            rate_bytes: rate.bytes,
            rate_divergence_samples: rate.divergence_samples,
            rate_divergence_sum: rate.divergence_sum,
            rate_divergence_max: rate.divergence_max,
            // The fold plane is dispatcher state; a lone engine (or one
            // shard worker) reports none.
            fold_rate_trackers: 0,
            fold_rate_bytes: 0,
            fold_divergence_samples: 0,
            fold_divergence_sum: 0,
            fold_divergence_max: 0,
            ruleset_generation: self.ruleset_generation,
        }
    }

    /// Generation of the installed ruleset (0 until the first hot swap).
    pub fn ruleset_generation(&self) -> u64 {
        self.ruleset_generation
    }

    /// This engine's contribution to an observation: counters, gauges,
    /// histograms and trace. One shard's slice in a sharded deployment.
    pub fn engine_observation(&self) -> EngineObservation {
        // Evals retired by ruleset swaps are folded back in so a rule
        // that survived N swaps reports its lifetime invocation count.
        let mut evals = self.retired_evals.clone();
        merge_rule_evals(&mut evals, &self.rules.rule_evals());
        self.observer.observation(self.stats, self.gauges(), evals)
    }

    /// A full pipeline observation for this standalone engine. The
    /// dispatch section is structurally zero (no dispatcher is
    /// involved when frames come in via [`Scidive::on_frame`]).
    pub fn observation(&self) -> PipelineObservation {
        let eo = self.engine_observation();
        PipelineObservation {
            pipeline: eo.stats,
            severity: eo.severity,
            distill: self.distiller.stats(),
            dispatch: DispatchCounters::default(),
            gauges: eo.gauges,
            hist: ObservedHistograms {
                rule_eval_us: eo.rule_eval_us,
                detection_delay_ms: eo.detection_delay_ms,
                ..ObservedHistograms::default()
            },
            rule_evals: eo.rule_evals,
            trace: eo.trace,
        }
    }
}

impl std::fmt::Debug for Scidive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scidive")
            .field("stats", &self.stats)
            .field("rules", &self.rules.len())
            .field("alerts", &self.alerts.len())
            .finish()
    }
}

/// A simulator node wrapping the engine: attach it promiscuously to the
/// hub to reproduce the paper's endpoint IDS (Fig. 3/4).
#[derive(Debug)]
pub struct IdsNode {
    ids: Scidive,
}

impl IdsNode {
    /// Creates the node.
    pub fn new(config: ScidiveConfig) -> IdsNode {
        IdsNode {
            ids: Scidive::new(config),
        }
    }

    /// The wrapped engine.
    pub fn ids(&self) -> &Scidive {
        &self.ids
    }

    /// Mutable access (e.g. to add rules before the run).
    pub fn ids_mut(&mut self) -> &mut Scidive {
        &mut self.ids
    }
}

impl Node for IdsNode {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, pkt: IpPacket) {
        self.ids.on_frame(ctx.now(), &pkt);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn sip_frame(payload: &str) -> IpPacket {
        IpPacket::udp(
            Ipv4Addr::new(10, 0, 0, 2),
            5060,
            Ipv4Addr::new(10, 0, 0, 1),
            5060,
            payload.as_bytes().to_vec(),
        )
    }

    #[test]
    fn pipeline_counts_flow_through() {
        let mut ids = Scidive::new(ScidiveConfig::default());
        ids.on_frame(
            SimTime::ZERO,
            &sip_frame("OPTIONS sip:b@lab SIP/2.0\r\nCall-ID: x\r\n\r\n"),
        );
        let stats = ids.stats();
        assert_eq!(stats.frames, 1);
        assert_eq!(stats.footprints, 1);
        assert!(stats.events >= 1); // format violations
        assert_eq!(stats.alerts as usize, ids.alerts().len());
    }

    #[test]
    fn capture_replay_matches_streaming() {
        let frames: Vec<(SimTime, IpPacket)> = (0..10)
            .map(|i| {
                (
                    SimTime::from_millis(i),
                    sip_frame("OPTIONS sip:b@lab SIP/2.0\r\nCall-ID: x\r\n\r\n"),
                )
            })
            .collect();
        let mut streaming = Scidive::new(ScidiveConfig::default());
        for (t, f) in &frames {
            streaming.on_frame(*t, f);
        }
        let mut replay = Scidive::new(ScidiveConfig::default());
        replay.process_capture(frames.iter().map(|(t, f)| (*t, f)));
        assert_eq!(streaming.alerts(), replay.alerts());
    }

    #[test]
    fn benign_well_formed_traffic_raises_nothing() {
        let mut ids = Scidive::new(ScidiveConfig::default());
        let raw = "OPTIONS sip:b@lab SIP/2.0\r\nVia: SIP/2.0/UDP 10.0.0.2:5060;branch=z9hG4bK1\r\nFrom: <sip:a@lab>;tag=1\r\nTo: <sip:b@lab>\r\nCall-ID: x\r\nCSeq: 1 OPTIONS\r\nMax-Forwards: 70\r\n\r\n";
        let alerts = ids.on_frame(SimTime::ZERO, &sip_frame(raw));
        assert!(alerts.is_empty(), "{alerts:?}");
    }
}
