//! Cooperative detection between multiple SCIDIVE instances (paper §6).
//!
//! "We can use a similar idea by deploying SCIDIVE-enabled IDS on both
//! end-points of the VoIP system. In such an installation, the two IDSs
//! could exchange event objects and portions of trails to enhance the
//! overall detection accuracy and efficiency."
//!
//! Each endpoint detector sees its own host's traffic (inbound frames
//! addressed to it, plus the frames its host actually transmitted —
//! host-based knowledge a wire sniffer does not have). The cluster
//! periodically collects each detector's event objects and runs
//! cross-detector rules. The flagship win is the attack the paper
//! concedes at §4.2.2: a fake instant message with a *spoofed* source
//! IP is indistinguishable at the victim's endpoint — but the
//! impersonated user's own detector knows its host never sent the
//! message, and the exchange exposes the forgery.

use crate::alert::{Alert, Severity};
use crate::engine::{Scidive, ScidiveConfig};
use crate::event::{Event, EventKind};
use scidive_netsim::packet::IpPacket;
use scidive_netsim::time::{SimDuration, SimTime};
use scidive_netsim::trace::Trace;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// One endpoint's detector in the cluster.
pub struct EndpointDetector {
    /// Detector name (usually the host it protects).
    pub name: String,
    /// The protected host's address.
    pub monitored_ip: Ipv4Addr,
    /// The node name of the protected host in the simulator trace (used
    /// to recognise frames the host *actually* transmitted — host-based
    /// knowledge).
    pub host_node: String,
    /// The wrapped engine.
    pub ids: Scidive,
}

impl EndpointDetector {
    /// Creates a detector for one endpoint.
    pub fn new(
        name: impl Into<String>,
        monitored_ip: Ipv4Addr,
        host_node: impl Into<String>,
        config: ScidiveConfig,
    ) -> EndpointDetector {
        EndpointDetector {
            name: name.into(),
            monitored_ip,
            host_node: host_node.into(),
            ids: Scidive::new(config),
        }
    }

    /// Whether this detector's endpoint view includes a frame: inbound
    /// to the host, or genuinely transmitted by the host.
    fn sees(&self, dst: Ipv4Addr, sender_node: &str) -> bool {
        dst == self.monitored_ip || sender_node == self.host_node
    }
}

/// An event tagged with the detector that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct TaggedEvent {
    /// Producing detector's name.
    pub detector: String,
    /// The event object.
    pub event: Event,
}

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct CooperativeConfig {
    /// Which detector is "home" for each identity (AOR → detector
    /// name): the detector whose host-based view is authoritative for
    /// what that identity actually sent.
    pub identity_home: HashMap<String, String>,
    /// How long after a delivery to wait for the matching send before
    /// declaring it forged.
    pub exchange_window: SimDuration,
}

impl Default for CooperativeConfig {
    fn default() -> CooperativeConfig {
        CooperativeConfig {
            identity_home: HashMap::new(),
            exchange_window: SimDuration::from_secs(2),
        }
    }
}

impl CooperativeConfig {
    /// Registers the home detector of an identity (builder-style).
    pub fn with_home(
        mut self,
        aor: impl Into<String>,
        detector: impl Into<String>,
    ) -> CooperativeConfig {
        self.identity_home.insert(aor.into(), detector.into());
        self
    }
}

/// A cluster of endpoint detectors with an event-exchange correlator.
pub struct CooperativeCluster {
    config: CooperativeConfig,
    detectors: Vec<EndpointDetector>,
    exchanged: Vec<TaggedEvent>,
    cooperative_alerts: Vec<Alert>,
}

impl CooperativeCluster {
    /// Creates a cluster.
    pub fn new(config: CooperativeConfig, detectors: Vec<EndpointDetector>) -> CooperativeCluster {
        CooperativeCluster {
            config,
            detectors,
            exchanged: Vec::new(),
            cooperative_alerts: Vec::new(),
        }
    }

    /// The detectors (for per-endpoint alert inspection).
    pub fn detectors(&self) -> &[EndpointDetector] {
        &self.detectors
    }

    /// All events exchanged so far.
    pub fn exchanged_events(&self) -> &[TaggedEvent] {
        &self.exchanged
    }

    /// Alerts produced by cross-detector correlation (the per-endpoint
    /// engines' own alerts live on each [`EndpointDetector::ids`]).
    pub fn cooperative_alerts(&self) -> &[Alert] {
        &self.cooperative_alerts
    }

    /// Feeds a whole simulator trace: each frame is routed to the
    /// detectors whose endpoint view includes it, then detectors
    /// exchange events and the correlator runs.
    pub fn process_trace(&mut self, trace: &Trace) -> Vec<Alert> {
        for rec in trace.records() {
            self.offer(rec.time, &rec.packet, &rec.from_name);
        }
        self.exchange_and_correlate()
    }

    /// Offers one frame (with the name of the node that actually sent
    /// it) to every detector whose view includes it.
    pub fn offer(&mut self, time: SimTime, pkt: &IpPacket, sender_node: &str) {
        for det in &mut self.detectors {
            if det.sees(pkt.dst, sender_node) {
                det.ids.on_frame(time, pkt);
            }
        }
    }

    /// Runs the exchange round: drains every detector's event objects,
    /// then applies the cross-detector rules. Returns new cooperative
    /// alerts.
    pub fn exchange_and_correlate(&mut self) -> Vec<Alert> {
        for det in &mut self.detectors {
            let name = det.name.clone();
            self.exchanged.extend(
                det.ids
                    .drain_events()
                    .into_iter()
                    .map(|event| TaggedEvent {
                        detector: name.clone(),
                        event,
                    }),
            );
        }
        let new = self.correlate_forged_im();
        self.cooperative_alerts.extend(new.iter().cloned());
        new
    }

    /// Cross-detector rule: a message delivered somewhere claiming
    /// identity X, with no matching send observed by X's home detector
    /// within the exchange window, is forged — even if the source IP
    /// was spoofed perfectly.
    fn correlate_forged_im(&mut self) -> Vec<Alert> {
        let mut alerts = Vec::new();
        let already: Vec<crate::trail::SessionKey> = self
            .cooperative_alerts
            .iter()
            .filter(|a| a.rule == "coop-forged-im")
            .filter_map(|a| a.session.clone())
            .collect();
        for delivered in &self.exchanged {
            let EventKind::ImObserved {
                claimed_aor,
                dst_ip,
                call_id,
                ..
            } = &delivered.event.kind
            else {
                continue;
            };
            // Only deliveries seen at the *recipient's* detector count
            // (the home detector also logs genuine outbound sends).
            let recipient_det = self
                .detectors
                .iter()
                .find(|d| d.name == delivered.detector)
                .map(|d| d.monitored_ip);
            if recipient_det != Some(*dst_ip) {
                continue;
            }
            let Some(home) = self.config.identity_home.get(claimed_aor) else {
                continue; // nobody is authoritative for this identity
            };
            if home == &delivered.detector {
                continue; // a host cannot forge to itself this way
            }
            if already.iter().any(|s| s.as_str() == call_id.as_str()) {
                continue;
            }
            // Does the home detector have a matching send?
            let confirmed_send = self.exchanged.iter().any(|te| {
                te.detector == *home
                    && matches!(
                        &te.event.kind,
                        EventKind::ImObserved { call_id: c, claimed_aor: a, .. }
                            if c == call_id && a == claimed_aor
                    )
            });
            // Window: only judge once the exchange window has passed
            // (events are exchanged in batches; lateness is bounded by
            // the window).
            if !confirmed_send {
                alerts.push(Alert::new(
                    "coop-forged-im",
                    Severity::Critical,
                    delivered.event.time,
                    Some(crate::trail::SessionKey::new(call_id.clone())),
                    format!(
                        "message claiming {claimed_aor} delivered at {} but {}'s detector \
                         observed no matching send (call-id {call_id})",
                        delivered.detector, home
                    ),
                ));
            }
        }
        alerts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scidive_sip::header::{CSeq, NameAddr, Via};
    use scidive_sip::method::Method;
    use scidive_sip::msg::RequestBuilder;

    const A_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
    const B_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 3);

    fn message_from_bob(call_id: &str) -> IpPacket {
        let mut b = RequestBuilder::new(Method::Message, "sip:alice@lab".parse().unwrap());
        b.from(NameAddr::new("sip:bob@lab".parse().unwrap()).with_tag("t"))
            .to(NameAddr::new("sip:alice@lab".parse().unwrap()))
            .call_id(call_id)
            .cseq(CSeq::new(1, Method::Message))
            .via(Via::udp("10.0.0.3:5060", format!("z9hG4bK-{call_id}")))
            .body("text/plain", "hello");
        // Spoofed at the IP layer: claims B's address.
        IpPacket::udp(B_IP, 5060, A_IP, 5060, b.build().to_bytes())
    }

    fn cluster() -> CooperativeCluster {
        let config = CooperativeConfig::default()
            .with_home("alice@lab", "ids-a")
            .with_home("bob@lab", "ids-b");
        CooperativeCluster::new(
            config,
            vec![
                EndpointDetector::new("ids-a", A_IP, "ua-a", ScidiveConfig::default()),
                EndpointDetector::new("ids-b", B_IP, "ua-b", ScidiveConfig::default()),
            ],
        )
    }

    #[test]
    fn spoofed_im_is_caught_cooperatively() {
        let mut cluster = cluster();
        // The attacker node transmits the spoofed frame; B's host did not
        // send it, so only A's detector sees the delivery.
        cluster.offer(SimTime::from_millis(10), &message_from_bob("im-1"), "attacker");
        let alerts = cluster.exchange_and_correlate();
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        assert_eq!(alerts[0].rule, "coop-forged-im");
        assert!(alerts[0].message.contains("bob"));
    }

    #[test]
    fn genuine_im_is_confirmed_by_home_detector() {
        let mut cluster = cluster();
        // B's host genuinely transmits the message: B's detector logs the
        // send, A's logs the delivery — they match.
        cluster.offer(SimTime::from_millis(10), &message_from_bob("im-2"), "ua-b");
        let alerts = cluster.exchange_and_correlate();
        assert!(alerts.is_empty(), "{alerts:?}");
    }

    #[test]
    fn forged_im_alert_fires_once_per_message() {
        let mut cluster = cluster();
        cluster.offer(SimTime::from_millis(10), &message_from_bob("im-3"), "attacker");
        assert_eq!(cluster.exchange_and_correlate().len(), 1);
        assert!(cluster.exchange_and_correlate().is_empty());
        assert_eq!(cluster.cooperative_alerts().len(), 1);
    }

    #[test]
    fn unknown_identity_is_not_judged() {
        let mut cluster = cluster();
        let mut b = RequestBuilder::new(Method::Message, "sip:alice@lab".parse().unwrap());
        b.from(NameAddr::new("sip:stranger@elsewhere".parse().unwrap()).with_tag("t"))
            .to(NameAddr::new("sip:alice@lab".parse().unwrap()))
            .call_id("im-4")
            .cseq(CSeq::new(1, Method::Message))
            .via(Via::udp("9.9.9.9:5060", "z9hG4bK-x"));
        let pkt = IpPacket::udp(Ipv4Addr::new(9, 9, 9, 9), 5060, A_IP, 5060, b.build().to_bytes());
        cluster.offer(SimTime::from_millis(10), &pkt, "outsider");
        assert!(cluster.exchange_and_correlate().is_empty());
    }

    #[test]
    fn per_endpoint_views_are_disjoint_where_expected() {
        let mut cluster = cluster();
        // A frame between A and B is seen by both; a frame from the
        // attacker to A is seen only by A's detector.
        cluster.offer(SimTime::from_millis(1), &message_from_bob("im-5"), "ua-b");
        cluster.offer(SimTime::from_millis(2), &message_from_bob("im-6"), "attacker");
        cluster.exchange_and_correlate();
        let a_events = cluster
            .exchanged_events()
            .iter()
            .filter(|te| te.detector == "ids-a")
            .count();
        let b_events = cluster
            .exchanged_events()
            .iter()
            .filter(|te| te.detector == "ids-b")
            .count();
        assert!(a_events >= 2, "A sees both deliveries");
        assert!(b_events >= 1 && b_events < a_events, "B sees only its own send");
    }
}
