//! Sharded parallel deployment of the engine.
//!
//! [`ShardedScidive`] runs `N` independent [`Scidive`] workers and a
//! dispatcher that routes every frame to a shard by a stable hash of its
//! resolved session key ([`crate::routing::SessionRouter`]). Because all
//! of SCIDIVE's session-plane state — trails, dialog machines, per-flow
//! sequence history, rule partial matches — is keyed by session, and the
//! one piece of cross-session state (the [`IdentityPlane`]) is lifted
//! into the dispatcher, the merged output is **byte-identical** to a
//! single engine processing the same capture, for any shard count and
//! any worker-thread timing:
//!
//! * every footprint of a session lands on the same shard, so each
//!   shard's trail store and event generator see exactly the session
//!   slice a single engine would maintain for those sessions;
//! * identity-plane detection (REGISTER floods, password guessing, IM
//!   source checks) runs in the dispatcher in dispatch order, and its
//!   events are injected behind the owning footprint, preserving the
//!   single-engine event order (session events first, identity events
//!   after);
//! * workers tag each alert with the dispatch sequence number of the
//!   frame that raised it and its index within that frame's batch; the
//!   merge stage sorts by that tag, which is exactly single-engine alert
//!   order.
//!
//! Frames whose session cannot be attributed (media to unannounced
//! sinks, undecodable SIP) resolve to synthetic per-flow sessions and
//! are routed to a designated **overflow shard** — counted, never
//! silently dropped. Queues are bounded: a full shard queue blocks the
//! dispatcher (backpressure, recorded in
//! [`ShardStats::enqueue_blocked`]) instead of shedding frames, so
//! [`DispatchStats::dropped`] is structurally zero.
//!
//! Dispatch is **batched**: each shard accumulates frames into a small
//! buffer that ships as one channel send when full, when the capture
//! clock moves a linger window past the buffer's oldest frame, or at
//! `finish()`. Batching only amortizes the per-send channel cost; it
//! changes neither the shard a frame lands on, the per-shard frame
//! order, nor the `(seq, idx)` merge — the equivalence tests run with
//! batching enabled.
//!
//! One caveat bounds the equivalence claim: a media flow observed
//! *before* the SDP that names its sink resolves to a synthetic session
//! first and to the real session after the announcement. A single
//! engine carries the flow's sequence history across that transition;
//! with shards the two halves may land on different workers. Captures
//! where media follows signalling — every testbed scenario, and any
//! well-formed call — are unaffected.

use crate::alert::Alert;
use crate::distill::{DistillStats, Distiller};
use crate::engine::{DistilledFootprint, PipelineStats, Scidive, ScidiveConfig};
use crate::event::IdentityPlane;
use crate::routing::SessionRouter;
use crossbeam_channel::{bounded, Sender, TrySendError};
use parking_lot::Mutex;
use scidive_netsim::packet::IpPacket;
use scidive_netsim::time::{SimDuration, SimTime};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Frames accumulated per shard before one channel send. Chosen so the
/// per-send cost (channel synchronization + wakeup) amortizes well while
/// a batch still fits comfortably in cache.
const DEFAULT_BATCH: usize = 32;

/// Capture-time bound on how long a buffered frame may wait for its
/// batch to fill. In online deployments capture time tracks wall time,
/// so this is also the added detection latency ceiling.
const DEFAULT_LINGER: SimDuration = SimDuration::from_millis(100);

/// One dispatched frame: the distiller ran in the dispatcher, so shards
/// receive footprints, not packets. `fp` is `None` for frames that
/// produced no footprint (fragments awaiting reassembly) — still sent so
/// per-shard frame counters sum to the dispatcher's.
#[derive(Debug)]
struct ShardFrame {
    /// Dispatch sequence number, the global merge key.
    seq: u64,
    time: SimTime,
    fp: Option<DistilledFootprint>,
}

/// An alert tagged with its merge position: dispatch sequence number of
/// the raising frame, then index within that frame's alert batch.
type TaggedAlert = (u64, u32, Alert);

/// Counters for one shard of a [`ShardedScidive`].
#[derive(Debug, Clone, Copy)]
pub struct ShardStats {
    /// Which shard (0 is also the overflow shard).
    pub shard: usize,
    /// The shard engine's own pipeline counters.
    pub pipeline: PipelineStats,
    /// Frames the dispatcher routed here.
    pub dispatched: u64,
    /// Times the dispatcher found this shard's queue full and had to
    /// block (backpressure; nothing is dropped).
    pub enqueue_blocked: u64,
}

/// Dispatcher-side counters of a [`ShardedScidive`].
#[derive(Debug, Clone, Copy, Default)]
pub struct DispatchStats {
    /// Frames submitted.
    pub frames: u64,
    /// Frames that produced no footprint (e.g. fragments still
    /// reassembling); accounted to the overflow shard.
    pub empty_frames: u64,
    /// Footprints whose session was synthetic (unattributable) and went
    /// to the overflow shard.
    pub overflow_frames: u64,
    /// Frames dropped. Structurally zero — a full queue blocks the
    /// dispatcher instead — kept as an explicit invariant counter.
    pub dropped: u64,
}

/// The merged result of a sharded run.
#[derive(Debug)]
pub struct ShardedReport {
    /// All alerts, in single-engine order.
    pub alerts: Vec<Alert>,
    /// Sum of the per-shard pipeline counters; equals a single engine's
    /// [`PipelineStats`] over the same capture.
    pub stats: PipelineStats,
    /// Per-shard breakdown.
    pub shards: Vec<ShardStats>,
    /// Dispatcher counters.
    pub dispatch: DispatchStats,
}

/// A sharded SCIDIVE: dispatcher + `N` worker engines + deterministic
/// merge.
///
/// # Examples
///
/// ```
/// use scidive_core::engine::ScidiveConfig;
/// use scidive_core::shard::ShardedScidive;
/// use scidive_netsim::packet::IpPacket;
/// use scidive_netsim::time::SimTime;
/// use std::net::Ipv4Addr;
///
/// let mut ids = ShardedScidive::new(ScidiveConfig::default(), 4, 64);
/// ids.submit(SimTime::ZERO, &IpPacket::udp(
///     Ipv4Addr::new(10, 0, 0, 1), 5060,
///     Ipv4Addr::new(10, 0, 0, 2), 5060,
///     b"OPTIONS sip:b@lab SIP/2.0\r\nCall-ID: x\r\n\r\n".as_ref(),
/// ));
/// let report = ids.finish();
/// assert_eq!(report.stats.frames, 1);
/// assert_eq!(report.dispatch.dropped, 0);
/// assert!(report.alerts.iter().all(|a| a.rule == "sip-format"));
/// ```
#[derive(Debug)]
pub struct ShardedScidive {
    distiller: Distiller,
    router: SessionRouter,
    identity: IdentityPlane,
    senders: Vec<Sender<Vec<ShardFrame>>>,
    workers: Vec<JoinHandle<PipelineStats>>,
    sink: Arc<Mutex<Vec<TaggedAlert>>>,
    seq: u64,
    dispatch: DispatchStats,
    dispatched: Vec<u64>,
    blocked: Vec<u64>,
    /// Per-shard accumulation buffers: up to `batch` frames ride one
    /// channel send. Flushed on batch-full, when a newly submitted
    /// frame's capture time is `linger` past a buffer's oldest frame,
    /// and unconditionally by [`ShardedScidive::finish`].
    buffers: Vec<Vec<ShardFrame>>,
    batch: usize,
    linger: SimDuration,
}

impl ShardedScidive {
    /// Spawns `shards` worker engines, each with a bounded input queue
    /// of `queue_depth` frames.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(config: ScidiveConfig, shards: usize, queue_depth: usize) -> ShardedScidive {
        assert!(shards >= 1, "a sharded engine needs at least one shard");
        let sink: Arc<Mutex<Vec<TaggedAlert>>> = Arc::new(Mutex::new(Vec::new()));
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = bounded::<Vec<ShardFrame>>(queue_depth);
            let cfg = config.clone();
            let shard_sink = sink.clone();
            workers.push(std::thread::spawn(move || {
                let mut ids = Scidive::data_plane(cfg);
                while let Ok(batch) = rx.recv() {
                    for frame in batch {
                        let new = ids.on_distilled(frame.time, frame.fp);
                        if !new.is_empty() {
                            let mut sink = shard_sink.lock();
                            for (idx, alert) in new.into_iter().enumerate() {
                                sink.push((frame.seq, idx as u32, alert));
                            }
                        }
                    }
                }
                ids.stats()
            }));
            senders.push(tx);
        }
        ShardedScidive {
            distiller: Distiller::new(config.distiller),
            router: SessionRouter::new(shards),
            identity: IdentityPlane::new(config.events),
            senders,
            workers,
            sink,
            seq: 0,
            dispatch: DispatchStats::default(),
            dispatched: vec![0; shards],
            blocked: vec![0; shards],
            buffers: (0..shards).map(|_| Vec::new()).collect(),
            batch: DEFAULT_BATCH,
            linger: DEFAULT_LINGER,
        }
    }

    /// Overrides the dispatch batching parameters: `batch` frames per
    /// channel send at most, no frame buffered longer than `linger` of
    /// capture time. `batch = 1` restores unbatched per-frame dispatch.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn with_batching(mut self, batch: usize, linger: SimDuration) -> ShardedScidive {
        assert!(batch >= 1, "batch size must be at least 1");
        self.batch = batch;
        self.linger = linger;
        self
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// Read access to the session router (and its media index).
    pub fn router(&self) -> &SessionRouter {
        &self.router
    }

    /// Dispatcher counters so far.
    pub fn dispatch_stats(&self) -> DispatchStats {
        self.dispatch
    }

    /// Dispatcher-side distiller counters.
    pub fn distill_stats(&self) -> DistillStats {
        self.distiller.stats()
    }

    /// Events the dispatcher's identity plane produced so far.
    pub fn identity_events_emitted(&self) -> u64 {
        self.identity.events_emitted()
    }

    /// Feeds one frame: distills it, resolves its session, routes it to
    /// its shard's batch buffer. Blocks while that shard's queue is full
    /// at a batch flush.
    pub fn submit(&mut self, time: SimTime, pkt: &IpPacket) {
        self.dispatch.frames += 1;
        let seq = self.seq;
        self.seq += 1;
        // Time-boundary flush: any shard whose oldest buffered frame is
        // `linger` behind the capture clock ships now. Driven purely by
        // the frame sequence, so dispatch stays deterministic.
        self.flush_lingering(time);
        let Some(fp) = self.distiller.distill(time, pkt) else {
            // No footprint (fragment in flight): account the frame on
            // the overflow shard so per-shard frame counters still sum
            // to the dispatcher's frame count.
            self.dispatch.empty_frames += 1;
            self.buffer(self.router.overflow_shard(), ShardFrame { seq, time, fp: None });
            return;
        };
        let decision = self.router.route(&fp);
        if decision.overflow {
            self.dispatch.overflow_frames += 1;
        }
        // The identity plane sees every footprint in dispatch order; its
        // events ride along to the owning shard.
        let injected_events = self.identity.on_footprint(&fp);
        self.buffer(
            decision.shard,
            ShardFrame {
                seq,
                time,
                fp: Some(DistilledFootprint {
                    footprint: fp,
                    injected_events,
                }),
            },
        );
    }

    /// Appends a frame to its shard's batch, flushing on batch-full.
    fn buffer(&mut self, shard: usize, frame: ShardFrame) {
        self.dispatched[shard] += 1;
        self.buffers[shard].push(frame);
        if self.buffers[shard].len() >= self.batch {
            self.flush(shard);
        }
    }

    /// Flushes every shard whose oldest buffered frame has waited
    /// `linger` or more of capture time.
    fn flush_lingering(&mut self, now: SimTime) {
        for shard in 0..self.buffers.len() {
            if let Some(first) = self.buffers[shard].first() {
                if now.saturating_since(first.time) >= self.linger {
                    self.flush(shard);
                }
            }
        }
    }

    /// Ships a shard's buffered batch as one channel send.
    fn flush(&mut self, shard: usize) {
        if self.buffers[shard].is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.buffers[shard]);
        match self.senders[shard].try_send(batch) {
            Ok(()) => {}
            Err(TrySendError::Full(batch)) => {
                // Backpressure: block until the shard drains. Frames are
                // never shed, so `dispatch.dropped` stays zero.
                self.blocked[shard] += 1;
                let _ = self.senders[shard].send(batch);
            }
            Err(TrySendError::Disconnected(_)) => {
                // Worker died (panicked); surfaced by finish().
            }
        }
    }

    /// Replays a capture (time, packet) in order.
    pub fn process_capture<'a, I>(&mut self, frames: I)
    where
        I: IntoIterator<Item = (SimTime, &'a IpPacket)>,
    {
        for (time, pkt) in frames {
            self.submit(time, pkt);
        }
    }

    /// Snapshot of the alerts published so far, in merge order. Shards
    /// still working may append more; `finish` is authoritative.
    pub fn alerts_snapshot(&self) -> Vec<Alert> {
        // Sorting in place under the lock (instead of cloning the whole
        // tagged vector first) keeps the snapshot to one pass of alert
        // clones. Merge order is unaffected: the sort key is the same
        // one `finish` uses, and sorting is idempotent.
        let mut sink = self.sink.lock();
        sink.sort_by_key(|&(seq, idx, _)| (seq, idx));
        sink.iter().map(|(_, _, a)| a.clone()).collect()
    }

    /// Closes the queues (flushing any partial batches), waits for every
    /// shard to drain, and returns the merged report. The alert stream
    /// and summed pipeline counters equal a single engine's output over
    /// the same capture.
    ///
    /// # Panics
    ///
    /// Panics if a shard worker panicked.
    pub fn finish(mut self) -> ShardedReport {
        for shard in 0..self.buffers.len() {
            self.flush(shard);
        }
        let ShardedScidive {
            senders,
            workers,
            sink,
            dispatch,
            dispatched,
            blocked,
            ..
        } = self;
        drop(senders);
        let mut shards = Vec::with_capacity(workers.len());
        for (shard, worker) in workers.into_iter().enumerate() {
            let pipeline = worker.join().expect("shard worker panicked");
            shards.push(ShardStats {
                shard,
                pipeline,
                dispatched: dispatched[shard],
                enqueue_blocked: blocked[shard],
            });
        }
        let stats = shards
            .iter()
            .fold(PipelineStats::default(), |acc, s| acc + s.pipeline);
        // Workers have all joined, so the Arc is normally unique; if a
        // stale handle keeps it alive, take the contents rather than
        // cloning the whole tagged vector.
        let mut tagged = Arc::try_unwrap(sink)
            .map(|m| m.into_inner())
            .unwrap_or_else(|arc| std::mem::take(&mut *arc.lock()));
        tagged.sort_by_key(|&(seq, idx, _)| (seq, idx));
        let alerts = tagged.into_iter().map(|(_, _, a)| a).collect();
        ShardedReport {
            alerts,
            stats,
            shards,
            dispatch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn sip_frame(payload: &str) -> IpPacket {
        IpPacket::udp(
            Ipv4Addr::new(10, 0, 0, 2),
            5060,
            Ipv4Addr::new(10, 0, 0, 1),
            5060,
            payload.as_bytes().to_vec(),
        )
    }

    fn options(call_id: &str) -> IpPacket {
        sip_frame(&format!(
            "OPTIONS sip:b@lab SIP/2.0\r\nCall-ID: {call_id}\r\n\r\n"
        ))
    }

    #[test]
    fn sharded_matches_single_engine() {
        let frames: Vec<(SimTime, IpPacket)> = (0..40)
            .map(|i| (SimTime::from_millis(i), options(&format!("call-{}", i % 5))))
            .collect();

        let mut single = Scidive::new(ScidiveConfig::default());
        for (t, f) in &frames {
            single.on_frame(*t, f);
        }

        for shards in [1, 2, 4] {
            let mut sharded = ShardedScidive::new(ScidiveConfig::default(), shards, 8);
            sharded.process_capture(frames.iter().map(|(t, f)| (*t, f)));
            let report = sharded.finish();
            assert_eq!(report.alerts, single.alerts(), "shards={shards}");
            assert_eq!(report.stats, single.stats(), "shards={shards}");
            assert_eq!(report.dispatch.dropped, 0);
        }
    }

    #[test]
    fn per_shard_counters_sum_to_dispatch() {
        let mut sharded = ShardedScidive::new(ScidiveConfig::default(), 3, 4);
        for i in 0..30 {
            sharded.submit(SimTime::from_millis(i), &options(&format!("c{}", i % 7)));
        }
        let report = sharded.finish();
        assert_eq!(report.dispatch.frames, 30);
        assert_eq!(
            report.shards.iter().map(|s| s.dispatched).sum::<u64>(),
            30
        );
        assert_eq!(
            report.shards.iter().map(|s| s.pipeline.frames).sum::<u64>(),
            30
        );
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardedScidive::new(ScidiveConfig::default(), 0, 4);
    }
}
