//! Sharded parallel deployment of the engine.
//!
//! [`ShardedScidive`] runs `N` independent [`Scidive`] workers and a
//! dispatcher that routes every frame to a shard by a stable hash of its
//! resolved session key ([`crate::routing::SessionRouter`]). Because all
//! of SCIDIVE's session-plane state — trails, dialog machines, per-flow
//! sequence history, rule partial matches — is keyed by session, and the
//! one piece of cross-session state (the [`IdentityPlane`]) is lifted
//! into the dispatcher, the merged output is **byte-identical** to a
//! single engine processing the same capture, for any shard count and
//! any worker-thread timing:
//!
//! * every footprint of a session lands on the same shard, so each
//!   shard's trail store and event generator see exactly the session
//!   slice a single engine would maintain for those sessions;
//! * identity-plane detection (REGISTER floods, password guessing, IM
//!   source checks) runs in the dispatcher in dispatch order, and its
//!   events are injected behind the owning footprint, preserving the
//!   single-engine event order (session events first, identity events
//!   after);
//! * workers tag each alert with the dispatch sequence number of the
//!   frame that raised it and its index within that frame's batch; the
//!   merge stage sorts by that tag, which is exactly single-engine alert
//!   order;
//! * rate-threshold rules whose key is *not* the routing key (SPIT /
//!   rapid-connect: keyed by caller, routed by Call-ID) run in **two
//!   planes**: workers observe into per-shard trackers and forward
//!   candidates, and the dispatcher folds per-shard deltas into a
//!   [`crate::rate::GlobalRatePlane`] on a capture-time cadence
//!   ([`crate::rate::FoldConfig`]), evaluating the thresholds against
//!   the merged — global — estimates. Fold alerts are injected into the
//!   merge stream with a stable tag, so the sharded pipeline's full
//!   alert stream is a pure function of the capture, independent of the
//!   shard count. (Identity-plane floods and guessing were always
//!   global: that plane lives in the dispatcher.)
//!
//! Frames whose session cannot be attributed (media to unannounced
//! sinks, undecodable SIP) resolve to synthetic per-flow sessions —
//! counted as overflow, never silently dropped — and spread across
//! shards by the same stable session hash as real sessions, so
//! chaos/garbage traffic cannot hotspot one worker (each synthetic flow
//! is its own session and sticks to its hashed shard). Only session-less
//! frames (fragments still reassembling) fall to the designated
//! [`crate::routing::SessionRouter::overflow_shard`]. Each shard queue
//! is a bounded [`crate::spsc`] ring — the dispatcher is the only
//! producer and the shard worker the only consumer, so the channel
//! never pays multi-producer coordination. A full ring blocks the
//! dispatcher (backpressure, recorded in
//! [`ShardStats::enqueue_blocked`]) instead of shedding frames, so
//! [`DispatchStats::dropped`] is structurally zero.
//!
//! The dispatcher and every worker feed the [`crate::observe`] layer:
//! queue-depth gauges and batch histograms on the dispatch side,
//! rule-latency/detection-delay histograms and state gauges per shard,
//! merged into one [`PipelineObservation`] by
//! [`ShardedScidive::finish`] (or snapshotted mid-run by
//! [`ShardedScidive::observation`] — worker histograms and traces are
//! collected at join, so a mid-run snapshot carries counters and gauges
//! but only the dispatcher's histograms).
//!
//! Dispatch is **batched**: each shard accumulates frames into a small
//! buffer that ships as one channel send when full, when the capture
//! clock moves a linger window past the buffer's oldest frame, or at
//! `finish()`. Batching only amortizes the per-send channel cost; it
//! changes neither the shard a frame lands on, the per-shard frame
//! order, nor the `(seq, idx)` merge — the equivalence tests run with
//! batching enabled.
//!
//! One caveat bounds the equivalence claim: a media flow observed
//! *before* the SDP that names its sink resolves to a synthetic session
//! first and to the real session after the announcement. A single
//! engine carries the flow's sequence history across that transition;
//! with shards the two halves may land on different workers. Captures
//! where media follows signalling — every testbed scenario, and any
//! well-formed call — are unaffected.

use crate::alert::{Alert, Severity};
use crate::distill::{DistillStats, Distiller};
use crate::engine::{DistilledFootprint, PipelineStats, RulesetSource, Scidive, ScidiveConfig};
use crate::event::IdentityPlane;
use crate::observe::{
    merge_rule_evals, DecisionTrace, DispatchCounters, EngineObservation, Histogram,
    ObservedHistograms, PipelineObservation, SeverityCounts, StateGauges, TraceEntry, TraceStage,
};
use crate::rate::{GlobalRatePlane, RateDelta};
use crate::routing::SessionRouter;
use crate::rules::{RuleToggles, RulesetBlueprint, SpecError};
use crate::spsc::{bounded, Sender, TrySendError};
use parking_lot::Mutex;
use scidive_netsim::packet::IpPacket;
use scidive_netsim::time::{SimDuration, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Frames accumulated per shard before one channel send. Chosen so the
/// per-send cost (channel synchronization + wakeup) amortizes well while
/// a batch still fits comfortably in cache.
const DEFAULT_BATCH: usize = 32;

/// Capture-time bound on how long a buffered frame may wait for its
/// batch to fill. In online deployments capture time tracks wall time,
/// so this is also the added detection latency ceiling.
const DEFAULT_LINGER: SimDuration = SimDuration::from_millis(100);

/// One dispatched frame: the distiller ran in the dispatcher, so shards
/// receive footprints, not packets. `fp` is `None` for frames that
/// produced no footprint (fragments awaiting reassembly) — still sent so
/// per-shard frame counters sum to the dispatcher's.
#[derive(Debug)]
struct ShardFrame {
    /// Dispatch sequence number, the global merge key.
    seq: u64,
    time: SimTime,
    fp: Option<DistilledFootprint>,
}

/// What rides a shard channel: a frame batch, a fold barrier, or a
/// ruleset-swap barrier. The ring is FIFO, so by the time a worker
/// handles `Fold` or `Swap` it has fully processed every batch the
/// dispatcher sent before the token — exactly the frames the barrier is
/// meant to cover, giving every shard the same deterministic boundary.
#[derive(Debug)]
enum ShardMsg {
    /// Frames to process.
    Batch(Vec<ShardFrame>),
    /// Take the engine's rate delta ([`Scidive::take_rate_delta`]) and
    /// reply on the fold channel.
    Fold,
    /// Install the blueprint's ruleset ([`Scidive::swap_ruleset`]),
    /// adopting surviving rule state. No reply: FIFO ordering already
    /// guarantees every frame dispatched after the token is evaluated
    /// by the new ruleset.
    Swap(Arc<RulesetBlueprint>),
}

/// An alert tagged with its merge position: dispatch sequence number of
/// the raising frame, then index within that frame's alert batch.
type TaggedAlert = (u64, u32, Alert);

/// Index base for fold-plane alerts within their merge slot. A fold at
/// capture-time boundary `b` covers every frame dispatched before it and
/// tags its alerts `(last_covered_seq, GLOBAL_IDX_BASE + i)` — sharing
/// the last covered frame's sequence number but sorting after all of
/// that frame's own alerts (worker indices count up from 0 and a frame
/// raises far fewer than 2^16 alerts). The tag depends only on capture
/// content, never on shard count, so the merged stream stays
/// byte-identical across 1/2/4 shards.
const GLOBAL_IDX_BASE: u32 = 1 << 16;

/// Dispatcher-resident fold state: the global rate plane plus the
/// capture-time cadence bookkeeping (see [`ShardedScidive::maybe_fold`]).
#[derive(Debug)]
struct FoldState {
    plane: GlobalRatePlane,
    /// Fold cadence in capture time.
    interval: SimDuration,
    /// Next capture-time boundary (a multiple of `interval`) at which to
    /// fold.
    next_boundary: SimTime,
    /// Where workers reply with their deltas. Plain `mpsc` (not spsc):
    /// all shards answer one barrier, arrival order is irrelevant
    /// because delta merges are commutative.
    replies: std::sync::mpsc::Receiver<RateDelta>,
    /// Severity tally of the alerts injected by folds, added to the
    /// merged report alongside the worker severities.
    severity: SeverityCounts,
}

/// Lock-free telemetry one worker publishes after every batch, read by
/// the dispatcher for mid-run [`ShardedScidive::observation`] snapshots.
/// All loads/stores are `Relaxed`: these are monitoring values, not
/// synchronization — slight staleness is fine, data races are not
/// possible on atomics.
#[derive(Debug, Default)]
struct ShardTelemetry {
    frames: AtomicU64,
    footprints: AtomicU64,
    events: AtomicU64,
    alerts: AtomicU64,
    info: AtomicU64,
    warning: AtomicU64,
    critical: AtomicU64,
    trails: AtomicU64,
    retained: AtomicU64,
    media_index: AtomicU64,
    interner: AtomicU64,
    synthetic_keys: AtomicU64,
    rule_state: AtomicU64,
    session_plane: AtomicU64,
    expired_trails: AtomicU64,
    media_expired: AtomicU64,
    synthetic_expired: AtomicU64,
    interner_expired: AtomicU64,
    rule_state_expired: AtomicU64,
    session_plane_expired: AtomicU64,
    rate_trackers: AtomicU64,
    rate_bytes: AtomicU64,
    rate_divergence_samples: AtomicU64,
    rate_divergence_sum: AtomicU64,
    rate_divergence_max: AtomicU64,
    ruleset_generation: AtomicU64,
    /// Batches currently queued *or being processed* by this shard: the
    /// dispatcher increments on send, the worker decrements only after
    /// it has fully processed a batch (so `0` means the shard is truly
    /// idle, not merely mid-batch). A ring-side `len()` would count only
    /// undelivered batches, so depth is tracked here instead.
    queue_batches: AtomicU64,
    /// One past the dispatch sequence number of the last frame this
    /// shard has fully processed; `0` until its first batch completes.
    /// Stored with `Release` *after* the batch's alerts reached the
    /// shared sink, so a reader that `Acquire`-loads this value is
    /// guaranteed to see those alerts — the basis of the
    /// [`ShardedScidive::alerts_snapshot`] prefix watermark.
    processed_seq: AtomicU64,
}

impl ShardTelemetry {
    /// Publishes the worker engine's current counters and gauges.
    fn publish(&self, ids: &Scidive) {
        let stats = ids.stats();
        self.frames.store(stats.frames, Ordering::Relaxed);
        self.footprints.store(stats.footprints, Ordering::Relaxed);
        self.events.store(stats.events, Ordering::Relaxed);
        self.alerts.store(stats.alerts, Ordering::Relaxed);
        let sev = ids.severity_counts();
        self.info.store(sev.info, Ordering::Relaxed);
        self.warning.store(sev.warning, Ordering::Relaxed);
        self.critical.store(sev.critical, Ordering::Relaxed);
        let g = ids.gauges();
        self.trails.store(g.trails, Ordering::Relaxed);
        self.retained.store(g.retained_footprints, Ordering::Relaxed);
        self.media_index.store(g.media_index, Ordering::Relaxed);
        self.interner.store(g.interner, Ordering::Relaxed);
        self.synthetic_keys.store(g.synthetic_keys, Ordering::Relaxed);
        self.rule_state.store(g.rule_state, Ordering::Relaxed);
        self.session_plane.store(g.session_plane, Ordering::Relaxed);
        self.expired_trails.store(g.expired_trails, Ordering::Relaxed);
        self.media_expired.store(g.media_expired, Ordering::Relaxed);
        self.synthetic_expired
            .store(g.synthetic_expired, Ordering::Relaxed);
        self.interner_expired
            .store(g.interner_expired, Ordering::Relaxed);
        self.rule_state_expired
            .store(g.rule_state_expired, Ordering::Relaxed);
        self.session_plane_expired
            .store(g.session_plane_expired, Ordering::Relaxed);
        self.rate_trackers.store(g.rate_trackers, Ordering::Relaxed);
        self.rate_bytes.store(g.rate_bytes, Ordering::Relaxed);
        self.rate_divergence_samples
            .store(g.rate_divergence_samples, Ordering::Relaxed);
        self.rate_divergence_sum
            .store(g.rate_divergence_sum, Ordering::Relaxed);
        self.rate_divergence_max
            .store(g.rate_divergence_max, Ordering::Relaxed);
        self.ruleset_generation
            .store(g.ruleset_generation, Ordering::Relaxed);
    }

    fn stats(&self) -> PipelineStats {
        PipelineStats {
            frames: self.frames.load(Ordering::Relaxed),
            footprints: self.footprints.load(Ordering::Relaxed),
            events: self.events.load(Ordering::Relaxed),
            alerts: self.alerts.load(Ordering::Relaxed),
        }
    }

    fn severity(&self) -> SeverityCounts {
        SeverityCounts {
            info: self.info.load(Ordering::Relaxed),
            warning: self.warning.load(Ordering::Relaxed),
            critical: self.critical.load(Ordering::Relaxed),
        }
    }

    fn gauges(&self) -> StateGauges {
        StateGauges {
            trails: self.trails.load(Ordering::Relaxed),
            retained_footprints: self.retained.load(Ordering::Relaxed),
            media_index: self.media_index.load(Ordering::Relaxed),
            interner: self.interner.load(Ordering::Relaxed),
            synthetic_keys: self.synthetic_keys.load(Ordering::Relaxed),
            rule_state: self.rule_state.load(Ordering::Relaxed),
            session_plane: self.session_plane.load(Ordering::Relaxed),
            expired_trails: self.expired_trails.load(Ordering::Relaxed),
            media_expired: self.media_expired.load(Ordering::Relaxed),
            synthetic_expired: self.synthetic_expired.load(Ordering::Relaxed),
            interner_expired: self.interner_expired.load(Ordering::Relaxed),
            rule_state_expired: self.rule_state_expired.load(Ordering::Relaxed),
            session_plane_expired: self.session_plane_expired.load(Ordering::Relaxed),
            router_media_index: 0,
            router_interner: 0,
            router_synthetic_keys: 0,
            rate_trackers: self.rate_trackers.load(Ordering::Relaxed),
            rate_bytes: self.rate_bytes.load(Ordering::Relaxed),
            rate_divergence_samples: self.rate_divergence_samples.load(Ordering::Relaxed),
            rate_divergence_sum: self.rate_divergence_sum.load(Ordering::Relaxed),
            rate_divergence_max: self.rate_divergence_max.load(Ordering::Relaxed),
            // Fold gauges are dispatcher-side (router_gauges), not
            // per-worker telemetry.
            fold_rate_trackers: 0,
            fold_rate_bytes: 0,
            fold_divergence_samples: 0,
            fold_divergence_sum: 0,
            fold_divergence_max: 0,
            ruleset_generation: self.ruleset_generation.load(Ordering::Relaxed),
        }
    }
}

/// Counters for one shard of a [`ShardedScidive`].
#[derive(Debug, Clone, Copy)]
pub struct ShardStats {
    /// Which shard (0 also receives session-less frames).
    pub shard: usize,
    /// The shard engine's own pipeline counters.
    pub pipeline: PipelineStats,
    /// Frames the dispatcher routed here.
    pub dispatched: u64,
    /// Times the dispatcher found this shard's queue full and had to
    /// block (backpressure; nothing is dropped).
    pub enqueue_blocked: u64,
}

/// Dispatcher-side counters of a [`ShardedScidive`].
#[derive(Debug, Clone, Copy, Default)]
pub struct DispatchStats {
    /// Frames submitted.
    pub frames: u64,
    /// Frames that produced no footprint (e.g. fragments still
    /// reassembling); accounted to the overflow shard.
    pub empty_frames: u64,
    /// Footprints whose session was synthetic (unattributable); spread
    /// across shards by hash like any other session.
    pub overflow_frames: u64,
    /// Frames dropped. Structurally zero — a full queue blocks the
    /// dispatcher instead — kept as an explicit invariant counter.
    pub dropped: u64,
}

/// The merged result of a sharded run.
#[derive(Debug)]
pub struct ShardedReport {
    /// All alerts, in single-engine order.
    pub alerts: Vec<Alert>,
    /// Sum of the per-shard pipeline counters; equals a single engine's
    /// [`PipelineStats`] over the same capture.
    pub stats: PipelineStats,
    /// Per-shard breakdown.
    pub shards: Vec<ShardStats>,
    /// Dispatcher counters.
    pub dispatch: DispatchStats,
    /// The full pipeline observation: counters, gauges, histograms and
    /// (when enabled) the merged decision trace.
    pub observation: PipelineObservation,
}

/// A sharded SCIDIVE: dispatcher + `N` worker engines + deterministic
/// merge.
///
/// # Examples
///
/// ```
/// use scidive_core::engine::ScidiveConfig;
/// use scidive_core::shard::ShardedScidive;
/// use scidive_netsim::packet::IpPacket;
/// use scidive_netsim::time::SimTime;
/// use std::net::Ipv4Addr;
///
/// let mut ids = ShardedScidive::new(ScidiveConfig::default(), 4, 64);
/// ids.submit(SimTime::ZERO, &IpPacket::udp(
///     Ipv4Addr::new(10, 0, 0, 1), 5060,
///     Ipv4Addr::new(10, 0, 0, 2), 5060,
///     b"OPTIONS sip:b@lab SIP/2.0\r\nCall-ID: x\r\n\r\n".as_ref(),
/// ));
/// let report = ids.finish();
/// assert_eq!(report.stats.frames, 1);
/// assert_eq!(report.dispatch.dropped, 0);
/// assert!(report.alerts.iter().all(|a| a.rule == "sip-format"));
/// ```
#[derive(Debug)]
pub struct ShardedScidive {
    distiller: Distiller,
    router: SessionRouter,
    identity: IdentityPlane,
    senders: Vec<Sender<ShardMsg>>,
    workers: Vec<JoinHandle<(PipelineStats, EngineObservation)>>,
    sink: Arc<Mutex<Vec<TaggedAlert>>>,
    seq: u64,
    dispatch: DispatchStats,
    dispatched: Vec<u64>,
    blocked: Vec<u64>,
    /// Per-shard accumulation buffers: up to `batch` frames ride one
    /// channel send. Flushed on batch-full, when a newly submitted
    /// frame's capture time is `linger` past a buffer's oldest frame,
    /// and unconditionally by [`ShardedScidive::finish`].
    buffers: Vec<Vec<ShardFrame>>,
    batch: usize,
    linger: SimDuration,
    /// Per-shard atomics the workers publish into (see
    /// [`ShardTelemetry`]).
    telemetry: Vec<Arc<ShardTelemetry>>,
    batches_sent: u64,
    max_queue_depth: u64,
    /// Whether the dispatch histograms below are recording.
    histograms: bool,
    batch_fill: Histogram,
    batch_linger_ms: Histogram,
    /// Dispatcher-side routing trace (empty ring unless enabled).
    trace: DecisionTrace,
    /// Capture time of the most recent submit, used to measure linger at
    /// flush time.
    last_time: SimTime,
    /// The cross-shard rate fold plane (`None` with
    /// [`crate::rate::FoldConfig::enabled`] off — per-shard slice
    /// evaluation, the pre-fold behavior).
    fold: Option<FoldState>,
    /// The builtin toggles of the installed ruleset (carried forward by
    /// [`ShardedScidive::swap_ruleset`] unless a swap overrides them).
    toggles: RuleToggles,
    /// Generation of the installed ruleset (0 at boot).
    ruleset_generation: u64,
    /// Swap barriers executed.
    ruleset_swaps: u64,
    /// Swap attempts rejected at dispatcher-side compile.
    ruleset_compile_errors: u64,
}

impl ShardedScidive {
    /// Spawns `shards` worker engines, each behind a single-producer
    /// [`crate::spsc`] ring holding up to `queue_depth` batches.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero, or if the configured
    /// [`ScidiveConfig::ruleset`] DSL program does not compile (the
    /// program is resolved once, dispatcher-side, and shipped to every
    /// worker as a [`RulesetBlueprint`]).
    pub fn new(config: ScidiveConfig, shards: usize, queue_depth: usize) -> ShardedScidive {
        assert!(shards >= 1, "a sharded engine needs at least one shard");
        let blueprint = Arc::new(config.blueprint().expect("configured ruleset compiles"));
        // The one shared identity plane gets the same rate switches the
        // shard engines fold into their event configs.
        let events_cfg = config.event_config();
        let sink: Arc<Mutex<Vec<TaggedAlert>>> = Arc::new(Mutex::new(Vec::new()));
        let (fold_tx, fold_rx) = std::sync::mpsc::channel::<RateDelta>();
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        let mut telemetry = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = bounded::<ShardMsg>(queue_depth);
            let cfg = config.clone();
            let boot = blueprint.clone();
            let shard_sink = sink.clone();
            let tel = Arc::new(ShardTelemetry::default());
            let shard_tel = tel.clone();
            let shard_fold_tx = fold_tx.clone();
            workers.push(std::thread::spawn(move || {
                let mut ids = Scidive::data_plane_from_blueprint(cfg, &boot, shards);
                while let Ok(msg) = rx.recv() {
                    let batch = match msg {
                        ShardMsg::Batch(batch) => batch,
                        ShardMsg::Fold => {
                            // FIFO ring: every batch sent before this
                            // barrier is already processed. A dead
                            // dispatcher is fine — the reply just goes
                            // unread.
                            let _ = shard_fold_tx.send(ids.take_rate_delta());
                            continue;
                        }
                        ShardMsg::Swap(blueprint) => {
                            // Same FIFO discipline: every pre-swap frame
                            // is done, so the install point is the same
                            // frame boundary on every shard. Surviving
                            // rules adopt their session state wholesale.
                            ids.swap_ruleset(&blueprint);
                            shard_tel.publish(&ids);
                            continue;
                        }
                    };
                    let last_seq = batch.last().map(|f| f.seq);
                    for frame in batch {
                        let new = ids.on_distilled(frame.time, frame.fp);
                        if !new.is_empty() {
                            let mut sink = shard_sink.lock();
                            for (idx, alert) in new.into_iter().enumerate() {
                                sink.push((frame.seq, idx as u32, alert));
                            }
                        }
                    }
                    shard_tel.publish(&ids);
                    // Order matters for the snapshot watermark: alerts
                    // first (above), then the processed mark, then the
                    // in-flight count.
                    if let Some(seq) = last_seq {
                        shard_tel.processed_seq.store(seq + 1, Ordering::Release);
                    }
                    shard_tel.queue_batches.fetch_sub(1, Ordering::Release);
                }
                (ids.stats(), ids.engine_observation())
            }));
            senders.push(tx);
            telemetry.push(tel);
        }
        let fold = config.fold.enabled.then(|| {
            let mut plane = GlobalRatePlane::new(config.rate.clone());
            // The evaluation plane follows the ruleset: it knows exactly
            // the threshold clauses the blueprint's rules observe into.
            plane.set_clauses(blueprint.threshold_specs());
            FoldState {
                plane,
                interval: config.fold.interval,
                next_boundary: SimTime::ZERO + config.fold.interval,
                replies: fold_rx,
                severity: SeverityCounts::default(),
            }
        });
        let histograms = config.observe.histograms;
        let trace = DecisionTrace::new(config.observe.trace_depth);
        let toggles = config.rules.clone();
        ShardedScidive {
            distiller: Distiller::with_protocols(config.distiller, config.protocols.clone()),
            router: SessionRouter::with_protocols(
                shards,
                config.trails.idle_timeout,
                config.protocols,
            ),
            identity: IdentityPlane::new(events_cfg),
            senders,
            workers,
            sink,
            seq: 0,
            dispatch: DispatchStats::default(),
            dispatched: vec![0; shards],
            blocked: vec![0; shards],
            buffers: (0..shards).map(|_| Vec::new()).collect(),
            batch: DEFAULT_BATCH,
            linger: DEFAULT_LINGER,
            telemetry,
            batches_sent: 0,
            max_queue_depth: 0,
            histograms,
            batch_fill: Histogram::new(&crate::observe::BATCH_FILL_BUCKETS),
            batch_linger_ms: Histogram::new(&crate::observe::BATCH_LINGER_BUCKETS_MS),
            trace,
            last_time: SimTime::ZERO,
            fold,
            toggles,
            ruleset_generation: 0,
            ruleset_swaps: 0,
            ruleset_compile_errors: 0,
        }
    }

    /// Atomically hot-reloads the ruleset across every shard, keeping
    /// the builtin toggles the pipeline booted with (or last swapped
    /// to). See [`ShardedScidive::swap_ruleset_with_toggles`].
    ///
    /// # Errors
    ///
    /// Returns the [`SpecError`] (and leaves the running ruleset
    /// installed, counting one compile error) if the program does not
    /// compile or its file cannot be read.
    pub fn swap_ruleset(&mut self, source: &RulesetSource) -> Result<u64, SpecError> {
        let toggles = self.toggles.clone();
        self.swap_ruleset_with_toggles(toggles, source)
    }

    /// Atomically hot-reloads the ruleset across every shard: validates
    /// and lowers `source` once dispatcher-side, flushes every dispatch
    /// buffer, and sends a `Swap` barrier token down each shard ring —
    /// the same FIFO-barrier pattern as a rate fold. Each worker
    /// installs the new ruleset after the last pre-swap frame and
    /// before the first post-swap one, so the boundary is the same
    /// dispatch sequence number on every shard at every shard count,
    /// and the merged alert stream stays deterministic. Rules that
    /// survive the swap unchanged (same id and
    /// [`crate::rules::Rule::state_signature`]) adopt their session
    /// state — partial sequences, fired latches, threshold windows —
    /// so no session is dropped; changed or new rules start fresh from
    /// the boundary. The dispatcher's fold plane swaps its threshold
    /// clauses from the same blueprint, preserving merged trackers and
    /// campaign latches.
    ///
    /// Returns the new ruleset generation.
    ///
    /// # Errors
    ///
    /// Returns the [`SpecError`] (and leaves the running ruleset
    /// installed, counting one compile error) if the program does not
    /// compile or its file cannot be read.
    pub fn swap_ruleset_with_toggles(
        &mut self,
        toggles: RuleToggles,
        source: &RulesetSource,
    ) -> Result<u64, SpecError> {
        // Validate once, dispatcher-side: a broken program never
        // reaches a worker and the running ruleset stays installed.
        let program = match source.program() {
            Ok(program) => program,
            Err(e) => {
                self.ruleset_compile_errors += 1;
                return Err(e);
            }
        };
        let blueprint = Arc::new(RulesetBlueprint {
            toggles,
            program,
            generation: self.ruleset_generation + 1,
        });
        // Barrier: flush every dispatch buffer first so each ring holds
        // exactly the frames dispatched so far — buffer occupancy varies
        // with shard count and must not leak into where the swap lands.
        for shard in 0..self.buffers.len() {
            self.flush(shard);
        }
        for tx in &self.senders {
            // Blocking send keeps the barrier lossless under a full
            // ring; a dead worker is skipped (surfaced at finish()).
            let _ = tx.send(ShardMsg::Swap(blueprint.clone()));
        }
        if let Some(fold) = &mut self.fold {
            fold.plane.set_clauses(blueprint.threshold_specs());
        }
        self.toggles = blueprint.toggles.clone();
        self.ruleset_generation = blueprint.generation;
        self.ruleset_swaps += 1;
        Ok(self.ruleset_generation)
    }

    /// Generation of the installed ruleset (0 until the first swap).
    pub fn ruleset_generation(&self) -> u64 {
        self.ruleset_generation
    }

    /// Overrides the dispatch batching parameters: `batch` frames per
    /// channel send at most, no frame buffered longer than `linger` of
    /// capture time. `batch = 1` restores unbatched per-frame dispatch.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn with_batching(mut self, batch: usize, linger: SimDuration) -> ShardedScidive {
        assert!(batch >= 1, "batch size must be at least 1");
        self.batch = batch;
        self.linger = linger;
        self
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// Read access to the session router (and its media index).
    pub fn router(&self) -> &SessionRouter {
        &self.router
    }

    /// Dispatcher counters so far.
    pub fn dispatch_stats(&self) -> DispatchStats {
        self.dispatch
    }

    /// Dispatcher-side distiller counters.
    pub fn distill_stats(&self) -> DistillStats {
        self.distiller.stats()
    }

    /// Events the dispatcher's identity plane produced so far.
    pub fn identity_events_emitted(&self) -> u64 {
        self.identity.events_emitted()
    }

    /// Feeds one frame: distills it, resolves its session, routes it to
    /// its shard's batch buffer. Blocks while that shard's queue is full
    /// at a batch flush.
    pub fn submit(&mut self, time: SimTime, pkt: &IpPacket) {
        // Fold barrier first: a crossed capture-time boundary is
        // evaluated over the frames dispatched *before* this one (this
        // frame's observations belong to the next fold period).
        self.maybe_fold(time);
        self.dispatch.frames += 1;
        self.last_time = time;
        let seq = self.seq;
        self.seq += 1;
        // Time-boundary flush: any shard whose oldest buffered frame is
        // `linger` behind the capture clock ships now. Driven purely by
        // the frame sequence, so dispatch stays deterministic.
        self.flush_lingering(time);
        let Some(fp) = self.distiller.distill(time, pkt) else {
            // No footprint (fragment in flight): account the frame on
            // the overflow shard so per-shard frame counters still sum
            // to the dispatcher's frame count.
            self.dispatch.empty_frames += 1;
            self.buffer(self.router.overflow_shard(), ShardFrame { seq, time, fp: None });
            return;
        };
        let decision = self.router.route(&fp);
        if decision.overflow {
            self.dispatch.overflow_frames += 1;
        }
        if self.trace.enabled() {
            self.trace.push(TraceEntry {
                seq,
                time,
                shard: decision.shard,
                stage: TraceStage::Route,
                session: decision.session.to_string(),
                proto: format!("{:?}", fp.proto()),
                events: 0,
                alerts: 0,
            });
        }
        // The identity plane sees every footprint in dispatch order; its
        // events ride along to the owning shard.
        let injected_events = self.identity.on_footprint(&fp);
        self.buffer(
            decision.shard,
            ShardFrame {
                seq,
                time,
                fp: Some(DistilledFootprint {
                    footprint: fp,
                    injected_events,
                }),
            },
        );
    }

    /// Appends a frame to its shard's batch, flushing on batch-full.
    fn buffer(&mut self, shard: usize, frame: ShardFrame) {
        self.dispatched[shard] += 1;
        self.buffers[shard].push(frame);
        if self.buffers[shard].len() >= self.batch {
            self.flush(shard);
        }
    }

    /// Flushes every shard whose oldest buffered frame has waited
    /// `linger` or more of capture time.
    fn flush_lingering(&mut self, now: SimTime) {
        for shard in 0..self.buffers.len() {
            if let Some(first) = self.buffers[shard].first() {
                if now.saturating_since(first.time) >= self.linger {
                    self.flush(shard);
                }
            }
        }
    }

    /// Ships a shard's buffered batch as one channel send.
    fn flush(&mut self, shard: usize) {
        if self.buffers[shard].is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.buffers[shard]);
        self.batches_sent += 1;
        if self.histograms {
            self.batch_fill.record(batch.len() as u64);
            // How long the batch's oldest frame waited for this flush,
            // in capture time.
            if let Some(first) = batch.first() {
                let waited = self.last_time.saturating_since(first.time);
                self.batch_linger_ms.record(waited.as_micros() / 1_000);
            }
        }
        // Depth *after* this send; the worker decrements once it has
        // processed the batch, so in-flight work counts as depth.
        let depth = self.telemetry[shard].queue_batches.fetch_add(1, Ordering::Relaxed) + 1;
        self.max_queue_depth = self.max_queue_depth.max(depth);
        match self.senders[shard].try_send(ShardMsg::Batch(batch)) {
            Ok(()) => {}
            Err(TrySendError::Full(msg)) => {
                // Backpressure: block until the shard drains. Frames are
                // never shed, so `dispatch.dropped` stays zero.
                self.blocked[shard] += 1;
                let _ = self.senders[shard].send(msg);
            }
            Err(TrySendError::Disconnected(_)) => {
                // Worker died (panicked); surfaced by finish().
            }
        }
    }

    /// Runs a fold if the capture clock has crossed the next boundary.
    /// Boundaries are multiples of the fold interval in capture time —
    /// a pure function of the frame timestamps, identical at every shard
    /// count and batch size, which is what keeps fold-alert timestamps
    /// (and hence the merged stream) deterministic. Skipped until the
    /// first frame is dispatched: there is nothing to fold.
    fn maybe_fold(&mut self, time: SimTime) {
        let Some(fold) = &self.fold else { return };
        if self.seq == 0 || time < fold.next_boundary {
            return;
        }
        let us = fold.interval.as_micros().max(1);
        // The largest boundary at or before `time`; intermediate
        // boundaries an idle gap skipped over carry no new deltas, so
        // evaluating once at the latest is equivalent.
        let boundary = SimTime::from_micros((time.as_micros() / us) * us);
        self.run_fold(boundary);
        if let Some(fold) = &mut self.fold {
            fold.next_boundary = boundary + fold.interval;
        }
    }

    /// The fold barrier: flushes every dispatch buffer (so each worker's
    /// ring holds all frames dispatched so far — buffer occupancy varies
    /// with shard count and must not leak into what a fold sees), asks
    /// every shard for its rate delta, absorbs the replies into the
    /// global plane, evaluates the threshold clauses at `at`, and
    /// injects the resulting alerts into the merge stream (tagged; see
    /// [`GLOBAL_IDX_BASE`]).
    fn run_fold(&mut self, at: SimTime) {
        for shard in 0..self.buffers.len() {
            self.flush(shard);
        }
        let Some(fold) = &mut self.fold else { return };
        let mut expected = 0usize;
        for tx in &self.senders {
            // A blocking send keeps the barrier lossless under a full
            // ring; a dead worker is skipped and, crucially, not waited
            // for below.
            if tx.send(ShardMsg::Fold).is_ok() {
                expected += 1;
            }
        }
        for _ in 0..expected {
            match fold.replies.recv() {
                Ok(delta) => fold.plane.absorb(delta),
                Err(_) => break,
            }
        }
        let alerts = fold.plane.evaluate(at);
        if !alerts.is_empty() {
            let last_covered = self.seq - 1;
            let mut sink = self.sink.lock();
            for (i, alert) in alerts.into_iter().enumerate() {
                match alert.severity {
                    Severity::Info => fold.severity.info += 1,
                    Severity::Warning => fold.severity.warning += 1,
                    Severity::Critical => fold.severity.critical += 1,
                }
                sink.push((last_covered, GLOBAL_IDX_BASE + i as u32, alert));
            }
        }
    }

    /// Replays a capture (time, packet) in order.
    pub fn process_capture<'a, I>(&mut self, frames: I)
    where
        I: IntoIterator<Item = (SimTime, &'a IpPacket)>,
    {
        for (time, pkt) in frames {
            self.submit(time, pkt);
        }
    }

    /// Snapshot of the alerts published so far, in merge order. The
    /// result is always a *prefix* of the final merged stream: alerts
    /// past the slowest busy shard's processed-through watermark are
    /// withheld until every earlier frame has been processed, so a
    /// fast shard can never surface an alert ahead of a still-pending
    /// earlier one. Shards still working may append more; `finish` is
    /// authoritative.
    pub fn alerts_snapshot(&self) -> Vec<Alert> {
        // Frames with seq < watermark are fully processed everywhere.
        // A shard counts as busy while it has buffered frames at the
        // dispatcher or batches queued/in flight (`queue_batches` is
        // decremented only after a batch completes); idle shards
        // constrain nothing. Reading the telemetry *before* locking the
        // sink pairs with the worker's release stores, so every alert
        // below the watermark is visible by the time we read the sink.
        let mut watermark = u64::MAX;
        for (shard, tel) in self.telemetry.iter().enumerate() {
            let busy = !self.buffers[shard].is_empty()
                || tel.queue_batches.load(Ordering::Acquire) > 0;
            if busy {
                watermark = watermark.min(tel.processed_seq.load(Ordering::Acquire));
            }
        }
        // Sorting in place under the lock (instead of cloning the whole
        // tagged vector first) keeps the snapshot to one pass of alert
        // clones. Merge order is unaffected: the sort key is the same
        // one `finish` uses, and sorting is idempotent.
        let mut sink = self.sink.lock();
        sink.sort_by_key(|&(seq, idx, _)| (seq, idx));
        sink.iter()
            .take_while(|&&(seq, _, _)| seq < watermark)
            .map(|(_, _, a)| a.clone())
            .collect()
    }

    /// Builds the dispatch-counter slice of an observation from the
    /// dispatcher's own state plus a queue-depth snapshot.
    fn dispatch_counters(&self, queue_depths: Vec<u64>) -> DispatchCounters {
        let fold = self
            .fold
            .as_ref()
            .map(|f| f.plane.fold_stats())
            .unwrap_or_default();
        DispatchCounters {
            frames: self.dispatch.frames,
            empty_frames: self.dispatch.empty_frames,
            overflow_frames: self.dispatch.overflow_frames,
            dropped: self.dispatch.dropped,
            batches_sent: self.batches_sent,
            enqueue_blocked: self.blocked.iter().sum(),
            max_queue_depth: self.max_queue_depth,
            queue_depths,
            folds: fold.folds,
            fold_deltas: fold.deltas_absorbed,
            fold_candidates: fold.candidates,
            fold_alerts: fold.alerts,
            rate_merge_rejected: fold.merge_rejected,
            ruleset_swaps: self.ruleset_swaps,
            ruleset_compile_errors: self.ruleset_compile_errors,
        }
    }

    /// The router's contribution to the state gauges: its own media
    /// index, interner and synthetic-key caches (kept in lock-step with
    /// the per-shard trail stores, but counted separately).
    fn router_gauges(&self) -> StateGauges {
        let index = self.router.index();
        let rate = self.identity.rate_stats();
        let fold = self
            .fold
            .as_ref()
            .map(|f| f.plane.rate_stats())
            .unwrap_or_default();
        StateGauges {
            router_media_index: index.len() as u64,
            router_interner: index.interner_len() as u64,
            router_synthetic_keys: index.synthetic_key_count() as u64,
            rate_trackers: rate.trackers,
            rate_bytes: rate.bytes,
            rate_divergence_samples: rate.divergence_samples,
            rate_divergence_sum: rate.divergence_sum,
            rate_divergence_max: rate.divergence_max,
            fold_rate_trackers: fold.trackers,
            fold_rate_bytes: fold.bytes,
            fold_divergence_samples: fold.divergence_samples,
            fold_divergence_sum: fold.divergence_sum,
            fold_divergence_max: fold.divergence_max,
            ..StateGauges::default()
        }
    }

    /// A live observation snapshot, read from the telemetry the workers
    /// publish after every batch (so counters may trail the submit side
    /// by up to one in-flight batch per shard). Worker histograms and
    /// traces are only collected at [`ShardedScidive::finish`]; the
    /// histogram section here carries the dispatcher's batch histograms.
    pub fn observation(&self) -> PipelineObservation {
        let mut pipeline = PipelineStats::default();
        let mut severity = SeverityCounts::default();
        let mut gauges = self.router_gauges();
        let mut queue_depths = Vec::with_capacity(self.telemetry.len());
        for tel in &self.telemetry {
            pipeline = pipeline + tel.stats();
            severity = severity + tel.severity();
            gauges = gauges + tel.gauges();
            queue_depths.push(tel.queue_batches.load(Ordering::Relaxed));
        }
        PipelineObservation {
            pipeline,
            severity,
            distill: self.distiller.stats(),
            dispatch: self.dispatch_counters(queue_depths),
            gauges,
            hist: ObservedHistograms {
                batch_fill: self.batch_fill.clone(),
                batch_linger_ms: self.batch_linger_ms.clone(),
                ..ObservedHistograms::default()
            },
            // Per-rule eval counters live in the workers and are
            // collected at join, like worker histograms.
            rule_evals: Vec::new(),
            trace: self.trace.clone().into_vec(),
        }
    }

    /// Closes the queues (flushing any partial batches), waits for every
    /// shard to drain, and returns the merged report. The alert stream
    /// and summed pipeline counters equal a single engine's output over
    /// the same capture.
    ///
    /// # Panics
    ///
    /// Panics if a shard worker panicked.
    pub fn finish(mut self) -> ShardedReport {
        for shard in 0..self.buffers.len() {
            self.flush(shard);
        }
        // Final fold at the last capture timestamp: a campaign whose
        // crossing falls after the last periodic boundary still gets its
        // global evaluation. `last_time` is a property of the capture,
        // so the extra fold is as deterministic as the periodic ones.
        if self.seq > 0 && self.fold.is_some() {
            self.run_fold(self.last_time);
        }
        let dispatch_counters = self.dispatch_counters(Vec::new());
        let router_gauges = self.router_gauges();
        let base_hist = ObservedHistograms {
            batch_fill: self.batch_fill.clone(),
            batch_linger_ms: self.batch_linger_ms.clone(),
            ..ObservedHistograms::default()
        };
        let route_trace = self.trace.clone().into_vec();
        let ShardedScidive {
            senders,
            workers,
            sink,
            dispatch,
            dispatched,
            blocked,
            distiller,
            telemetry,
            fold,
            ..
        } = self;
        drop(senders);
        let mut shards = Vec::with_capacity(workers.len());
        let mut observation = PipelineObservation {
            pipeline: PipelineStats::default(),
            severity: SeverityCounts::default(),
            distill: distiller.stats(),
            dispatch: dispatch_counters,
            gauges: router_gauges,
            hist: base_hist,
            rule_evals: Vec::new(),
            trace: route_trace,
        };
        for (shard, worker) in workers.into_iter().enumerate() {
            let (pipeline, engine) = worker.join().expect("shard worker panicked");
            shards.push(ShardStats {
                shard,
                pipeline,
                dispatched: dispatched[shard],
                enqueue_blocked: blocked[shard],
            });
            observation.severity = observation.severity + engine.severity;
            observation.gauges = observation.gauges + engine.gauges;
            observation.hist.rule_eval_us.merge(&engine.rule_eval_us);
            observation
                .hist
                .detection_delay_ms
                .merge(&engine.detection_delay_ms);
            merge_rule_evals(&mut observation.rule_evals, &engine.rule_evals);
            for mut entry in engine.trace {
                entry.shard = shard;
                observation.trace.push(entry);
            }
        }
        // Queues are drained, so every shard's depth reads zero; record
        // the final snapshot anyway for report shape consistency.
        observation.dispatch.queue_depths = telemetry
            .iter()
            .map(|t| t.queue_batches.load(Ordering::Relaxed))
            .collect();
        let mut stats = shards
            .iter()
            .fold(PipelineStats::default(), |acc, s| acc + s.pipeline);
        // Fold-plane alerts were raised dispatcher-side; fold them into
        // the merged counters so the report's totals match its alert
        // stream (and a 1-shard report matches a 4-shard one exactly).
        if let Some(f) = &fold {
            stats.alerts += f.plane.fold_stats().alerts;
            observation.severity = observation.severity + f.severity;
        }
        observation.pipeline = stats;
        // Interleave dispatcher route entries with worker match entries
        // by capture time (each component's entries are already ordered).
        observation.trace.sort_by_key(|e| (e.time, e.seq));
        // Workers have all joined, so the Arc is normally unique; if a
        // stale handle keeps it alive, take the contents rather than
        // cloning the whole tagged vector.
        let mut tagged = Arc::try_unwrap(sink)
            .map(|m| m.into_inner())
            .unwrap_or_else(|arc| std::mem::take(&mut *arc.lock()));
        tagged.sort_by_key(|&(seq, idx, _)| (seq, idx));
        let alerts = tagged.into_iter().map(|(_, _, a)| a).collect();
        ShardedReport {
            alerts,
            stats,
            shards,
            dispatch,
            observation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn sip_frame(payload: &str) -> IpPacket {
        IpPacket::udp(
            Ipv4Addr::new(10, 0, 0, 2),
            5060,
            Ipv4Addr::new(10, 0, 0, 1),
            5060,
            payload.as_bytes().to_vec(),
        )
    }

    fn options(call_id: &str) -> IpPacket {
        sip_frame(&format!(
            "OPTIONS sip:b@lab SIP/2.0\r\nCall-ID: {call_id}\r\n\r\n"
        ))
    }

    #[test]
    fn sharded_matches_single_engine() {
        let frames: Vec<(SimTime, IpPacket)> = (0..40)
            .map(|i| (SimTime::from_millis(i), options(&format!("call-{}", i % 5))))
            .collect();

        let mut single = Scidive::new(ScidiveConfig::default());
        for (t, f) in &frames {
            single.on_frame(*t, f);
        }

        for shards in [1, 2, 4] {
            let mut sharded = ShardedScidive::new(ScidiveConfig::default(), shards, 8);
            sharded.process_capture(frames.iter().map(|(t, f)| (*t, f)));
            let report = sharded.finish();
            assert_eq!(report.alerts, single.alerts(), "shards={shards}");
            assert_eq!(report.stats, single.stats(), "shards={shards}");
            assert_eq!(report.dispatch.dropped, 0);
        }
    }

    #[test]
    fn per_shard_counters_sum_to_dispatch() {
        let mut sharded = ShardedScidive::new(ScidiveConfig::default(), 3, 4);
        for i in 0..30 {
            sharded.submit(SimTime::from_millis(i), &options(&format!("c{}", i % 7)));
        }
        let report = sharded.finish();
        assert_eq!(report.dispatch.frames, 30);
        assert_eq!(
            report.shards.iter().map(|s| s.dispatched).sum::<u64>(),
            30
        );
        assert_eq!(
            report.shards.iter().map(|s| s.pipeline.frames).sum::<u64>(),
            30
        );
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardedScidive::new(ScidiveConfig::default(), 0, 4);
    }
}
