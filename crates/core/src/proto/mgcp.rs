//! A minimal MGCP-style gateway-control protocol module — the fifth
//! protocol, added purely through the [`crate::proto`] registry with
//! zero edits to the distiller, router, or generator dispatch. It
//! exists to prove the extension seam and to mirror the paper's
//! forged-BYE scenario at the gateway-control layer: a DLCX tears a
//! connection down, so RTP continuing afterwards is teardown evasion.
//!
//! The wire format is a toy cut of RFC 3435: a command line
//! `VERB txid endpoint MGCP 1.0` (CRCX / DLCX / NTFY), a `C:` call-id
//! parameter line, and — instead of a full SDP body — an `RTP:
//! addr:port` line announcing the connection's media sink.
//!
//! Not registered by default: tests and examples opt in with
//! [`crate::proto::ProtocolSetBuilder::register`].

use crate::alert::{Alert, Severity};
use crate::distill::DistillerConfig;
use crate::event::{Event, EventClass, EventKind, FlowKey};
use crate::footprint::{ExtBody, ExtData, Footprint, FootprintBody, PacketMeta};
use crate::proto::{AttributeCtx, GenCtx, ProtocolModule};
use crate::rules::{AlertSink, Rule, RuleCtx, RuleInterest, RuleStateStats, SessionMap};
use crate::trail::{SessionKey, TrailKey};
use bytes::Bytes;
use scidive_netsim::time::{SimDuration, SimTime};
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// The gateway-control port the module claims. Disjoint from the SIP
/// (5060) and accounting (2427) defaults, so registering the module
/// cannot re-classify legacy captures.
pub const MGCP_PORT: u16 = 2727;

/// An MGCP command verb (the subset the module decodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MgcpVerb {
    /// CreateConnection: allocates a connection and announces its
    /// media sink.
    Crcx,
    /// DeleteConnection: tears the connection down.
    Dlcx,
    /// Notify: a gateway event report (decoded but inert).
    Ntfy,
}

impl fmt::Display for MgcpVerb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MgcpVerb::Crcx => "CRCX",
            MgcpVerb::Dlcx => "DLCX",
            MgcpVerb::Ntfy => "NTFY",
        })
    }
}

/// A decoded gateway-control command — the MGCP module's footprint
/// payload, carried in [`FootprintBody::Ext`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MgcpPdu {
    /// The command verb.
    pub verb: MgcpVerb,
    /// Transaction id from the command line.
    pub txid: u32,
    /// The gateway endpoint the command addresses.
    pub endpoint: String,
    /// The call the connection belongs to (the session join key).
    pub call_id: String,
    /// The connection's media sink, when announced (`RTP:` line).
    pub rtp_target: Option<(Ipv4Addr, u16)>,
}

impl MgcpPdu {
    /// Parses the toy wire format; `None` for anything malformed.
    pub fn parse(text: &str) -> Option<MgcpPdu> {
        let mut lines = text.lines();
        let mut parts = lines.next()?.split_whitespace();
        let verb = match parts.next()? {
            "CRCX" => MgcpVerb::Crcx,
            "DLCX" => MgcpVerb::Dlcx,
            "NTFY" => MgcpVerb::Ntfy,
            _ => return None,
        };
        let txid: u32 = parts.next()?.parse().ok()?;
        let endpoint = parts.next()?.to_string();
        if parts.next() != Some("MGCP") {
            return None;
        }
        let mut call_id = None;
        let mut rtp_target = None;
        for line in lines {
            if let Some(rest) = line.strip_prefix("C:") {
                call_id = Some(rest.trim().to_string());
            } else if let Some(rest) = line.strip_prefix("RTP:") {
                let (addr, port) = rest.trim().rsplit_once(':')?;
                rtp_target = Some((addr.parse().ok()?, port.parse().ok()?));
            }
        }
        Some(MgcpPdu {
            verb,
            txid,
            endpoint,
            call_id: call_id?,
            rtp_target,
        })
    }

    /// Renders the PDU back to the wire format (scenario generators).
    pub fn encode(&self) -> String {
        let mut s = format!("{} {} {} MGCP 1.0\nC: {}\n", self.verb, self.txid, self.endpoint, self.call_id);
        if let Some((addr, port)) = self.rtp_target {
            s.push_str(&format!("RTP: {addr}:{port}\n"));
        }
        s
    }
}

impl ExtData for MgcpPdu {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn eq_ext(&self, other: &dyn ExtData) -> bool {
        other
            .as_any()
            .downcast_ref::<MgcpPdu>()
            .is_some_and(|o| o == self)
    }

    fn label(&self) -> String {
        format!("MGCP {} {}", self.verb, self.call_id)
    }
}

/// The protocol tag MGCP footprints carry in [`FootprintBody::Ext`].
pub const MGCP_PROTO: &str = "mgcp";

/// The MGCP gateway-control module. Classifies port-2727 commands,
/// attributes them by call-id, learns the CRCX media sink into the
/// cross-protocol index, and watches for RTP continuing after a DLCX
/// tore the connection down (the paper's forged-BYE pattern one layer
/// down the stack).
#[derive(Debug, Default)]
pub struct MgcpModule {
    /// session → (DLCX time, orphan already alarmed). Per-engine state:
    /// [`ProtocolModule::fresh`] hands every generator its own copy.
    teardowns: HashMap<SessionKey, (SimTime, bool)>,
}

impl MgcpModule {
    /// Creates the module.
    pub fn new() -> MgcpModule {
        MgcpModule::default()
    }
}

impl ProtocolModule for MgcpModule {
    fn name(&self) -> &'static str {
        MGCP_PROTO
    }

    fn classify_priority(&self) -> u16 {
        // Between acct (10) and sip (20): a dedicated port either way.
        15
    }

    fn fresh(&self) -> Box<dyn ProtocolModule> {
        Box::new(MgcpModule::default())
    }

    fn owns(&self, body: &FootprintBody) -> bool {
        matches!(body, FootprintBody::Ext(e) if e.proto == MGCP_PROTO)
    }

    fn classify(
        &self,
        payload: &Bytes,
        meta: &PacketMeta,
        _cfg: &DistillerConfig,
    ) -> Option<FootprintBody> {
        if meta.dst_port != MGCP_PORT {
            return None;
        }
        let Some(pdu) = std::str::from_utf8(payload).ok().and_then(MgcpPdu::parse) else {
            // The gateway-control port consumes what it cannot parse.
            return Some(FootprintBody::UdpOther {
                payload_len: payload.len(),
            });
        };
        Some(FootprintBody::Ext(ExtBody {
            proto: MGCP_PROTO,
            data: Arc::new(pdu),
        }))
    }

    fn attribute(&self, fp: &Footprint, ctx: &mut AttributeCtx<'_>) -> SessionKey {
        match pdu_of(fp) {
            Some(pdu) => ctx.intern(&pdu.call_id),
            None => ctx.synthetic("other", fp.meta.dst, None),
        }
    }

    fn learn(
        &self,
        fp: &Footprint,
        session: &SessionKey,
        ctx: &mut AttributeCtx<'_>,
    ) -> bool {
        let Some(pdu) = pdu_of(fp) else {
            return false;
        };
        if pdu.verb != MgcpVerb::Crcx {
            return false;
        }
        let Some((addr, port)) = pdu.rtp_target else {
            return false;
        };
        ctx.learn_target(addr, port, session);
        true
    }

    fn generate(&mut self, fp: &Footprint, key: &TrailKey, ctx: &mut GenCtx<'_>) {
        match &fp.body {
            FootprintBody::Ext(e) if e.proto == MGCP_PROTO => {
                let Some(pdu) = e.data.as_any().downcast_ref::<MgcpPdu>() else {
                    return;
                };
                if pdu.verb == MgcpVerb::Dlcx {
                    self.teardowns
                        .insert(key.session.clone(), (fp.meta.time, false));
                    ctx.emit(
                        fp.meta.time,
                        Some(key.session.clone()),
                        EventKind::Protocol {
                            class: EventClass::Ext0,
                            signal: DLCX_SIGNAL,
                            detail: format!("{} {}", pdu.endpoint, pdu.call_id),
                        },
                    );
                }
            }
            FootprintBody::Rtp { .. } => {
                // Cross-protocol watch: media continuing after the
                // gateway deleted the connection.
                if !ctx.config().cross_protocol {
                    return;
                }
                let Some(&(at, emitted)) = self.teardowns.get(&key.session) else {
                    return;
                };
                if emitted {
                    return;
                }
                let gap = fp.meta.time.saturating_since(at);
                if gap > ctx.config().monitor_window {
                    return;
                }
                self.teardowns
                    .insert(key.session.clone(), (at, true));
                let flow = FlowKey {
                    src: fp.meta.src,
                    dst: fp.meta.dst,
                    dst_port: fp.meta.dst_port,
                };
                ctx.emit(
                    fp.meta.time,
                    Some(key.session.clone()),
                    EventKind::Protocol {
                        class: EventClass::Ext1,
                        signal: ORPHAN_SIGNAL,
                        detail: format!("{flow} {}us after DLCX", gap.as_micros()),
                    },
                );
            }
            _ => {}
        }
    }
}

fn pdu_of(fp: &Footprint) -> Option<&MgcpPdu> {
    let FootprintBody::Ext(e) = &fp.body else {
        return None;
    };
    if e.proto != MGCP_PROTO {
        return None;
    }
    e.data.as_any().downcast_ref::<MgcpPdu>()
}

/// Signal name of the DLCX-observed event (class `Ext0`).
pub const DLCX_SIGNAL: &str = "mgcp-conn-deleted";
/// Signal name of the RTP-after-DLCX event (class `Ext1`).
pub const ORPHAN_SIGNAL: &str = "mgcp-rtp-after-dlcx";

/// The MGCP teardown-evasion rule: alerts when RTP keeps flowing after
/// a DLCX deleted the connection — the gateway-control twin of the
/// paper's §4.2.1 forged-BYE check. Fires once per session.
#[derive(Debug, Default)]
pub struct MgcpTeardownRule {
    fired: SessionMap<()>,
}

impl MgcpTeardownRule {
    /// Creates the rule.
    pub fn new() -> MgcpTeardownRule {
        MgcpTeardownRule::default()
    }
}

impl Rule for MgcpTeardownRule {
    fn id(&self) -> &str {
        "mgcp-teardown"
    }

    fn description(&self) -> &str {
        "RTP continues after a DLCX deleted the gateway connection"
    }

    fn is_cross_protocol(&self) -> bool {
        true
    }

    fn is_stateful(&self) -> bool {
        true
    }

    fn interests(&self) -> RuleInterest {
        RuleInterest::of(&[EventClass::Ext1])
    }

    fn on_event(&mut self, ev: &Event, ctx: &RuleCtx<'_>, sink: &mut AlertSink<'_>) {
        let EventKind::Protocol { signal, detail, .. } = &ev.kind else {
            return;
        };
        if *signal != ORPHAN_SIGNAL {
            return;
        }
        let Some(session) = &ev.session else {
            return;
        };
        if self.fired.get_mut(session, ctx.now).is_some() {
            return;
        }
        self.fired.insert(session.clone(), (), ctx.now);
        sink.push(Alert::new(
            self.id(),
            Severity::Critical,
            ev.time,
            Some(session.clone()),
            format!("gateway teardown evasion: {detail}"),
        ));
    }

    fn set_state_timeout(&mut self, timeout: SimDuration) {
        self.fired.set_timeout(timeout);
    }

    fn state_stats(&self) -> RuleStateStats {
        self.fired.state_stats()
    }

    fn state_signature(&self) -> u64 {
        // No tunable parameters: any instance can adopt any other's
        // fired-once markers.
        crate::rate::hash_parts(0x6d67_6370_5f73_6967, &[b"mgcp-teardown"])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pdu_roundtrips() {
        let pdu = MgcpPdu {
            verb: MgcpVerb::Crcx,
            txid: 1234,
            endpoint: "gw1/e0".to_string(),
            call_id: "conn-7".to_string(),
            rtp_target: Some((Ipv4Addr::new(10, 0, 0, 3), 9000)),
        };
        let parsed = MgcpPdu::parse(&pdu.encode()).expect("parses");
        assert_eq!(parsed, pdu);
        // Without an RTP line the target is simply absent.
        let dlcx = MgcpPdu {
            verb: MgcpVerb::Dlcx,
            txid: 1235,
            endpoint: "gw1/e0".to_string(),
            call_id: "conn-7".to_string(),
            rtp_target: None,
        };
        assert_eq!(MgcpPdu::parse(&dlcx.encode()), Some(dlcx));
    }

    #[test]
    fn malformed_pdus_rejected() {
        assert_eq!(MgcpPdu::parse("AUEP 1 gw1 MGCP 1.0\nC: x\n"), None);
        assert_eq!(MgcpPdu::parse("CRCX notanum gw1 MGCP 1.0\nC: x\n"), None);
        assert_eq!(MgcpPdu::parse("CRCX 1 gw1 MGCP 1.0\n"), None, "no call-id");
        assert_eq!(MgcpPdu::parse(""), None);
    }

    #[test]
    fn ext_body_equality_goes_through_downcast() {
        let mk = |txid| FootprintBody::Ext(ExtBody {
            proto: MGCP_PROTO,
            data: Arc::new(MgcpPdu {
                verb: MgcpVerb::Ntfy,
                txid,
                endpoint: "gw1/e0".to_string(),
                call_id: "c".to_string(),
                rtp_target: None,
            }),
        });
        assert_eq!(mk(1), mk(1));
        assert_ne!(mk(1), mk(2));
    }
}
