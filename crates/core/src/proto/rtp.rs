//! The RTP protocol module: media classification, sink-based session
//! attribution, and the per-flow media checks (§4.2) — sequence
//! discipline, unknown sources, and the orphan-media watches armed by
//! SIP teardowns/redirects and RTCP goodbyes.

use crate::distill::DistillerConfig;
use crate::event::{Event, EventKind, FlowKey};
use crate::footprint::{Footprint, FootprintBody, PacketMeta};
use crate::proto::{AttributeCtx, GenCtx, ProtocolModule};
use crate::trail::{SessionKey, TrailKey};
use bytes::Bytes;
use scidive_rtp::packet::{looks_like_rtp, RtpPacket};
use scidive_rtp::seq::seq_delta;

/// The RTP module. Owns [`FootprintBody::Rtp`]; attribution resolves
/// the destination sink through the media index (the SDP-derived
/// cross-protocol correlation), falling back to a synthetic per-flow
/// session.
#[derive(Debug, Default)]
pub struct RtpModule;

impl RtpModule {
    /// Creates the module.
    pub fn new() -> RtpModule {
        RtpModule
    }
}

impl ProtocolModule for RtpModule {
    fn name(&self) -> &'static str {
        "rtp"
    }

    fn classify_priority(&self) -> u16 {
        // After RTCP: RTCP packet types collide with RTP's
        // marker+payload-type byte, so the stricter signature runs first.
        40
    }

    fn fresh(&self) -> Box<dyn ProtocolModule> {
        Box::new(RtpModule)
    }

    fn owns(&self, body: &FootprintBody) -> bool {
        matches!(body, FootprintBody::Rtp { .. })
    }

    fn classify(
        &self,
        payload: &Bytes,
        _meta: &PacketMeta,
        _cfg: &DistillerConfig,
    ) -> Option<FootprintBody> {
        if looks_like_rtp(payload) {
            if let Ok(rtp) = RtpPacket::decode_shared(payload) {
                return Some(FootprintBody::Rtp {
                    header: rtp.header,
                    payload_len: rtp.payload.len(),
                });
            }
        }
        None
    }

    fn attribute(&self, fp: &Footprint, ctx: &mut AttributeCtx<'_>) -> SessionKey {
        match ctx.resolve_media(fp.meta.dst, fp.meta.dst_port) {
            Some(session) => session,
            None => ctx.synthetic("flow", fp.meta.dst, Some(fp.meta.dst_port)),
        }
    }

    fn generate(&mut self, fp: &Footprint, key: &TrailKey, ctx: &mut GenCtx<'_>) {
        if let FootprintBody::Rtp { header, .. } = &fp.body {
            on_rtp(fp, key, header.ssrc, header.seq, ctx);
        }
    }
}

fn on_rtp(fp: &Footprint, key: &TrailKey, ssrc: u32, seq: u16, ctx: &mut GenCtx<'_>) {
    let time = fp.meta.time;
    let flow = FlowKey {
        src: fp.meta.src,
        dst: fp.meta.dst,
        dst_port: fp.meta.dst_port,
    };
    // Sequence discipline (§4.2.4): per flow+SSRC.
    if let Some(&last) = ctx.plane.seq_history.get(&(flow, ssrc)) {
        let delta = seq_delta(last, seq);
        if delta.abs() > ctx.config.seq_jump_threshold {
            ctx.emit(
                time,
                Some(key.session.clone()),
                EventKind::RtpSeqViolation { flow, delta },
            );
        }
    }
    ctx.plane.seq_history.insert((flow, ssrc), seq);
    ctx.plane.flow_ssrcs.entry(flow).or_default().insert(ssrc);

    if !ctx.config.cross_protocol {
        return;
    }
    let monitor_window = ctx.config.monitor_window;
    let grace = ctx.config.rtcp_bye_grace;
    let session_timeout = ctx.config.session_timeout;
    let GenCtx {
        plane,
        out,
        emitted,
        ..
    } = ctx;
    let Some(state) = plane.session_mut(&key.session, time, session_timeout) else {
        return;
    };
    // First sighting of this flow in the session.
    if state.active_flows.insert(flow) {
        *emitted += 1;
        out.push(Event {
            time,
            session: Some(key.session.clone()),
            kind: EventKind::RtpFlowActive { flow },
        });
    }
    let state = plane.sessions.get_mut(&key.session).expect("present");
    // Source legitimacy: media for this session should come from the
    // negotiated endpoints. One pass over the (tiny) endpoint lists —
    // no collected Vec, this runs for every media frame.
    let mut any_legit = false;
    let mut src_legit = false;
    for ip in state
        .caller_media
        .iter()
        .chain(state.callee_media.iter())
        .map(|(ip, _)| *ip)
        .chain(state.redirected.iter().map(|r| r.old_target.0))
    {
        any_legit = true;
        if ip == flow.src {
            src_legit = true;
            break;
        }
    }
    if any_legit && !src_legit && state.unknown_src_flows.insert(flow) {
        *emitted += 1;
        out.push(Event {
            time,
            session: Some(key.session.clone()),
            kind: EventKind::RtpUnknownSource { flow },
        });
    }
    // Orphan after BYE (§4.2.1): the claimed terminator keeps
    // transmitting.
    let state = plane.sessions.get_mut(&key.session).expect("present");
    let bye_orphan = match &state.torn_down {
        Some(t) if !state.orphan_bye_emitted && t.by_media_ip == Some(flow.src) => {
            let gap = time.saturating_since(t.at);
            (gap <= monitor_window).then_some(gap)
        }
        _ => None,
    };
    if let Some(gap) = bye_orphan {
        state.orphan_bye_emitted = true;
        *emitted += 1;
        out.push(Event {
            time,
            session: Some(key.session.clone()),
            kind: EventKind::OrphanRtpAfterBye { flow, gap },
        });
    }
    // Orphan after redirect (§4.2.3): the endpoint that claimed to
    // move keeps transmitting with its old SSRCs.
    let state = plane.sessions.get_mut(&key.session).expect("present");
    let redirect_orphan = match &state.redirected {
        Some(r) if !state.orphan_redirect_emitted => {
            let gap = time.saturating_since(r.at);
            let from_old_endpoint = r.old_target.0 == flow.src;
            let to_victim = r
                .victim_sink
                .map(|(ip, port)| ip == flow.dst && port == flow.dst_port)
                .unwrap_or(true);
            let old_stream = r.old_ssrcs.is_empty() || r.old_ssrcs.contains(&ssrc);
            (from_old_endpoint && to_victim && old_stream && gap <= monitor_window)
                .then_some(gap)
        }
        _ => None,
    };
    if let Some(gap) = redirect_orphan {
        state.orphan_redirect_emitted = true;
        *emitted += 1;
        out.push(Event {
            time,
            session: Some(key.session.clone()),
            kind: EventKind::OrphanRtpAfterRedirect { flow, gap },
        });
    }
    // Media continuing after its own RTCP goodbye (forged RTCP BYE,
    // or a confused sender): §3.1's SIP→RTP→RTCP event chain.
    let state = plane.sessions.get_mut(&key.session).expect("present");
    let rtcp_orphan = match state.rtcp_byes.get(&ssrc) {
        Some(&(at, false)) => {
            let gap = time.saturating_since(at);
            (gap > grace && gap <= monitor_window).then_some(gap)
        }
        _ => None,
    };
    if let Some(gap) = rtcp_orphan {
        state.rtcp_byes.insert(ssrc, (time, true));
        *emitted += 1;
        out.push(Event {
            time,
            session: Some(key.session.clone()),
            kind: EventKind::RtpAfterRtcpBye { flow, ssrc, gap },
        });
    }
}
