//! The protocol-module layer: every protocol the pipeline understands
//! is one self-contained module behind the [`ProtocolModule`] trait.
//!
//! SCIDIVE's core claim is a *cross-protocol* architecture that "can be
//! expanded to include other protocols" beyond SIP/RTP. This layer is
//! that expansion seam. A protocol plays three roles in the pipeline,
//! and the trait covers all of them:
//!
//! * **classify/decode** — payload + port hints → [`FootprintBody`]
//!   (drives [`crate::distill::Distiller`]);
//! * **attribute** — footprint → session key, plus media-flow learning
//!   (drives [`crate::routing::MediaIndex`], and through it both the
//!   trail store and the sharded dispatcher);
//! * **generate** — footprint + trail state → [`Event`]s (drives
//!   [`EventGenerator`]).
//!
//! The built-in five (SIP, RTP, RTCP, accounting, fallback "other")
//! live in the sibling files of this directory; [`crate::proto::mgcp`]
//! is a fifth protocol added purely through this registry — zero edits
//! to the distiller, router, or generator dispatch — proving the seam
//! works. Modules never import each other: anything shared (the
//! session plane, the contexts) lives here in the parent.
//!
//! ## Determinism
//!
//! Classification order is decided by each module's explicit
//! [`ProtocolModule::classify_priority`] (ties broken by name), never
//! by registration order — registering the same modules in any order
//! builds the same registry, byte for byte. The property tests in
//! `crates/core/tests/properties.rs` prove it on random payloads.

pub mod acct;
pub mod mgcp;
pub mod other;
pub mod rtcp;
pub mod rtp;
pub mod sip;

use crate::distill::DistillerConfig;
use crate::event::{Event, EventGenConfig, EventKind, FlowKey};
use crate::footprint::{Footprint, FootprintBody, PacketMeta};
use crate::routing::MediaIndex;
use crate::trail::{SessionKey, TrailKey, TrailStore};
use bytes::Bytes;
use scidive_netsim::time::{SimDuration, SimTime};
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;
use std::sync::Arc;

pub use sip::IdentityPlane;

/// One protocol's contract with the pipeline. Implementations are
/// self-contained: a new protocol is one file implementing this trait
/// plus a [`ProtocolSetBuilder::register`] call — no edits to the
/// distiller, router, trail store, or event generator.
pub trait ProtocolModule: Send + Sync + std::fmt::Debug {
    /// Stable module name (lower-case, e.g. `"sip"`). Also the tag
    /// extension footprints carry in [`crate::footprint::TrailProto::Ext`].
    fn name(&self) -> &'static str;

    /// Classification precedence: lower runs earlier. Priorities are
    /// explicit so the registry's behavior is independent of
    /// registration order; ties are broken by `name()`.
    fn classify_priority(&self) -> u16;

    /// A fresh instance carrying no mutable state. The registry shares
    /// one prototype per module for classify/attribute (which are
    /// `&self`); each [`EventGenerator`] gets its own `fresh()` copies
    /// so `generate` can keep per-engine state.
    fn fresh(&self) -> Box<dyn ProtocolModule>;

    /// Whether this module owns a footprint body for attribution (and
    /// is the module whose `learn` runs for it). Exactly one registered
    /// module should own any body the registry can produce; unowned
    /// bodies fall back to the module owning
    /// [`FootprintBody::UdpOther`].
    fn owns(&self, body: &FootprintBody) -> bool;

    /// Attempts to decode a UDP payload. `None` passes the payload to
    /// the next module in priority order; the registry falls back to
    /// [`FootprintBody::UdpOther`] when every module declines.
    fn classify(
        &self,
        _payload: &Bytes,
        _meta: &PacketMeta,
        _cfg: &DistillerConfig,
    ) -> Option<FootprintBody> {
        None
    }

    /// Derives the session a footprint belongs to. Must be a pure
    /// function of the footprint and the index state reachable through
    /// `ctx` — the trail store and the sharded dispatcher both call it
    /// and must agree bit-for-bit.
    fn attribute(&self, fp: &Footprint, ctx: &mut AttributeCtx<'_>) -> SessionKey;

    /// Learns correlation state (media sinks) a footprint announces,
    /// e.g. SDP bodies. Returns whether anything was learned.
    fn learn(
        &self,
        _fp: &Footprint,
        _session: &SessionKey,
        _ctx: &mut AttributeCtx<'_>,
    ) -> bool {
        false
    }

    /// Condenses a footprint into events. Called for **every**
    /// footprint (not only owned bodies), so cross-protocol modules can
    /// watch other protocols' traffic — the heart of the paper's
    /// stateful cross-protocol detection. Modules run in priority
    /// order; a module that does not care about a body does nothing.
    fn generate(&mut self, _fp: &Footprint, _key: &TrailKey, _ctx: &mut GenCtx<'_>) {}
}

/// Context handed to [`ProtocolModule::attribute`] /
/// [`ProtocolModule::learn`]: the capture clock plus the shared
/// correlation index, exposed through a narrow API so modules cannot
/// diverge from the lifecycle rules (exact staleness at resolve time).
pub struct AttributeCtx<'a> {
    pub(crate) now: SimTime,
    pub(crate) index: &'a mut MediaIndex,
}

impl AttributeCtx<'_> {
    /// The observing footprint's capture time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Interns a real session identifier (e.g. a Call-ID): repeated
    /// footprints of one session share one allocation.
    pub fn intern(&mut self, id: &str) -> SessionKey {
        self.index.intern_key(id, self.now)
    }

    /// Resolves a media sink to its owning session with the exact idle
    /// lifecycle rule (stale entries read as absent and are dropped).
    pub fn resolve_media(&mut self, addr: Ipv4Addr, port: u16) -> Option<SessionKey> {
        self.index.resolve_fresh(addr, port, self.now)
    }

    /// A memoized synthetic session key for uncorrelatable traffic:
    /// `"{prefix}-{addr}:{port}"` (or `"{prefix}-{addr}"` without a
    /// port). The first packet pays one construction; later packets get
    /// a clone of the shared key.
    pub fn synthetic(
        &mut self,
        prefix: &'static str,
        addr: Ipv4Addr,
        port: Option<u16>,
    ) -> SessionKey {
        self.index.synthetic_key(prefix, addr, port, self.now)
    }

    /// Records a negotiated media target (and its RTCP companion port)
    /// as belonging to `session`.
    pub fn learn_target(&mut self, addr: Ipv4Addr, port: u16, session: &SessionKey) {
        self.index.learn_target(addr, port, session, self.now);
    }
}

/// The session-scoped state shared by the built-in generation modules:
/// per-session dialog machines, per-flow sequence history, per-flow
/// SSRC sets. Lives in the [`EventGenerator`] and is reachable from
/// [`GenCtx`]; extension modules outside the crate keep their own state
/// instead.
#[derive(Debug, Default)]
pub struct SessionPlane {
    pub(crate) sessions: HashMap<SessionKey, SessionState>,
    /// (flow, ssrc) → last sequence number.
    pub(crate) seq_history: HashMap<(FlowKey, u32), u16>,
    /// flow → ssrcs seen (for redirect snapshots).
    pub(crate) flow_ssrcs: HashMap<FlowKey, HashSet<u32>>,
    /// Sessions dropped by idle expiry (monotonic).
    pub(crate) expired: u64,
    /// When the last background sweep ran.
    last_sweep: SimTime,
}

impl SessionPlane {
    /// Whether a session entry is past its idle timeout at `now`.
    fn stale(state: &SessionState, now: SimTime, timeout: SimDuration) -> bool {
        now.saturating_since(state.last_seen) > timeout
    }

    /// Upserts a session with staleness-at-access semantics: an entry
    /// idle longer than `timeout` reads as absent, so its stale dialog
    /// state is discarded (counted in `expired`) and a fresh one starts.
    /// Stamps `last_seen`. Expiry is decided purely by this session's
    /// own footprint times, so single-engine and sharded deployments —
    /// which see different interleavings of *other* sessions — agree.
    pub(crate) fn session_entry(
        &mut self,
        key: &SessionKey,
        now: SimTime,
        timeout: SimDuration,
    ) -> &mut SessionState {
        let state = match self.sessions.entry(key.clone()) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let state = e.into_mut();
                if Self::stale(state, now, timeout) {
                    self.expired += 1;
                    *state = SessionState::default();
                }
                state
            }
            std::collections::hash_map::Entry::Vacant(e) => e.insert(SessionState::default()),
        };
        state.last_seen = now;
        state
    }

    /// Looks up a session with staleness-at-access semantics: a stale
    /// entry is dropped (counted in `expired`) and reads as absent.
    /// Stamps `last_seen` on hit.
    pub(crate) fn session_mut(
        &mut self,
        key: &SessionKey,
        now: SimTime,
        timeout: SimDuration,
    ) -> Option<&mut SessionState> {
        let is_stale = Self::stale(self.sessions.get(key)?, now, timeout);
        if is_stale {
            self.sessions.remove(key);
            self.expired += 1;
            return None;
        }
        let state = self.sessions.get_mut(key).expect("present above");
        state.last_seen = now;
        Some(state)
    }

    /// Reclaims sessions idle past `timeout`, at quarter-timeout cadence
    /// (mirroring the identity plane's sweep). Purely a memory bound:
    /// staleness-at-access already makes expired entries unreadable, so
    /// the sweep — whose timing depends on which sessions an engine
    /// happens to observe — cannot change any event.
    pub(crate) fn maybe_sweep(&mut self, now: SimTime, timeout: SimDuration) {
        if now.saturating_since(self.last_sweep) < timeout / 4 {
            return;
        }
        self.last_sweep = now;
        let before = self.sessions.len();
        self.sessions
            .retain(|_, state| !Self::stale(state, now, timeout));
        self.expired += (before - self.sessions.len()) as u64;
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Teardown {
    pub(crate) at: SimTime,
    pub(crate) by_media_ip: Option<Ipv4Addr>,
}

#[derive(Debug, Clone)]
pub(crate) struct Redirect {
    pub(crate) at: SimTime,
    pub(crate) old_target: (Ipv4Addr, u16),
    /// SSRCs the abandoned endpoint was using (new flows after genuine
    /// mobility use fresh SSRCs and must not alarm).
    pub(crate) old_ssrcs: HashSet<u32>,
    /// The sink the victim still listens on.
    pub(crate) victim_sink: Option<(Ipv4Addr, u16)>,
}

#[derive(Debug, Default)]
pub(crate) struct SessionState {
    pub(crate) caller_aor: Option<String>,
    pub(crate) callee_aor: Option<String>,
    pub(crate) caller_media: Option<(Ipv4Addr, u16)>,
    pub(crate) callee_media: Option<(Ipv4Addr, u16)>,
    pub(crate) established: bool,
    pub(crate) torn_down: Option<Teardown>,
    pub(crate) redirected: Option<Redirect>,
    pub(crate) orphan_bye_emitted: bool,
    pub(crate) orphan_redirect_emitted: bool,
    pub(crate) acct_checked: bool,
    pub(crate) unknown_src_flows: HashSet<FlowKey>,
    pub(crate) active_flows: HashSet<FlowKey>,
    pub(crate) garbage_emitted: u32,
    /// SSRC → (goodbye time, already alarmed).
    pub(crate) rtcp_byes: HashMap<u32, (SimTime, bool)>,
    /// Capture time of the last footprint that touched this session;
    /// drives [`EventGenConfig::session_timeout`] idle expiry.
    pub(crate) last_seen: SimTime,
}

/// Context handed to [`ProtocolModule::generate`]: the generator
/// config, the shared session plane, read access to the trails, and the
/// event output.
pub struct GenCtx<'a> {
    pub(crate) config: &'a EventGenConfig,
    pub(crate) plane: &'a mut SessionPlane,
    pub(crate) trails: &'a TrailStore,
    pub(crate) out: &'a mut Vec<Event>,
    pub(crate) emitted: u64,
}

impl GenCtx<'_> {
    /// The generator configuration.
    pub fn config(&self) -> &EventGenConfig {
        self.config
    }

    /// Read access to the trail store (the paper's "crude information
    /// directly from the Trails").
    pub fn trails(&self) -> &TrailStore {
        self.trails
    }

    /// Upserts per-session dialog state, applying
    /// [`EventGenConfig::session_timeout`] staleness-at-access (see
    /// [`SessionPlane::session_entry`]).
    pub(crate) fn session_entry(&mut self, key: &SessionKey, now: SimTime) -> &mut SessionState {
        self.plane
            .session_entry(key, now, self.config.session_timeout)
    }

    /// Looks up per-session dialog state, applying
    /// [`EventGenConfig::session_timeout`] staleness-at-access (see
    /// [`SessionPlane::session_mut`]).
    pub(crate) fn session_mut(
        &mut self,
        key: &SessionKey,
        now: SimTime,
    ) -> Option<&mut SessionState> {
        self.plane.session_mut(key, now, self.config.session_timeout)
    }

    /// Emits one event.
    pub fn emit(&mut self, time: SimTime, session: Option<SessionKey>, kind: EventKind) {
        self.emitted += 1;
        self.out.push(Event {
            time,
            session,
            kind,
        });
    }
}

/// The protocol registry: the modules the pipeline runs, sorted by
/// explicit `(classify_priority, name)` so behavior is independent of
/// registration order. Cloning is an `Arc` refcount bump — the
/// distiller, router, trail store and every shard share one module set.
#[derive(Clone)]
pub struct ProtocolSet {
    modules: Arc<Vec<Box<dyn ProtocolModule>>>,
    /// Index of the module owning [`FootprintBody::UdpOther`]: the
    /// attribution fallback for bodies no module claims.
    fallback: usize,
}

impl Default for ProtocolSet {
    fn default() -> ProtocolSet {
        ProtocolSetBuilder::new().build()
    }
}

impl std::fmt::Debug for ProtocolSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list()
            .entries(self.modules.iter().map(|m| m.name()))
            .finish()
    }
}

impl ProtocolSet {
    /// Module names in classification order.
    pub fn names(&self) -> Vec<&'static str> {
        self.modules.iter().map(|m| m.name()).collect()
    }

    /// Number of registered modules.
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// Whether the registry is empty (it never is after `build`).
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// Classifies a UDP payload: first module (in priority order) to
    /// return a body wins; [`FootprintBody::UdpOther`] when all
    /// decline.
    pub fn classify(
        &self,
        payload: &Bytes,
        meta: &PacketMeta,
        cfg: &DistillerConfig,
    ) -> FootprintBody {
        for m in self.modules.iter() {
            if let Some(body) = m.classify(payload, meta, cfg) {
                return body;
            }
        }
        FootprintBody::UdpOther {
            payload_len: payload.len(),
        }
    }

    /// The module owning a body for attribution, falling back to the
    /// [`FootprintBody::UdpOther`] owner.
    pub fn module_for(&self, body: &FootprintBody) -> &dyn ProtocolModule {
        self.modules
            .iter()
            .find(|m| m.owns(body))
            .unwrap_or(&self.modules[self.fallback])
            .as_ref()
    }

    /// Fresh, stateless-to-start module instances in priority order,
    /// for one engine's event generation.
    pub fn fresh_modules(&self) -> Vec<Box<dyn ProtocolModule>> {
        self.modules.iter().map(|m| m.fresh()).collect()
    }
}

/// Builds a [`ProtocolSet`].
///
/// # Examples
///
/// Registration order does not matter — priorities decide:
///
/// ```
/// use scidive_core::proto::ProtocolSetBuilder;
///
/// let a = ProtocolSetBuilder::new().build();
/// let b = ProtocolSetBuilder::new().build();
/// assert_eq!(a.names(), b.names());
/// ```
pub struct ProtocolSetBuilder {
    modules: Vec<Box<dyn ProtocolModule>>,
}

impl Default for ProtocolSetBuilder {
    fn default() -> ProtocolSetBuilder {
        ProtocolSetBuilder::new()
    }
}

impl ProtocolSetBuilder {
    /// Starts from the built-in five: SIP, RTP, RTCP, accounting, and
    /// the fallback "other" module.
    pub fn new() -> ProtocolSetBuilder {
        ProtocolSetBuilder {
            modules: vec![
                Box::new(sip::SipModule::new()),
                Box::new(rtp::RtpModule::new()),
                Box::new(rtcp::RtcpModule::new()),
                Box::new(acct::AcctModule::new()),
                Box::new(other::OtherModule::new()),
            ],
        }
    }

    /// Starts empty (the fallback module is still appended at `build`
    /// if nothing registered owns [`FootprintBody::UdpOther`]).
    pub fn empty() -> ProtocolSetBuilder {
        ProtocolSetBuilder {
            modules: Vec::new(),
        }
    }

    /// Registers one module.
    ///
    /// # Panics
    ///
    /// Panics if a module with the same name is already registered.
    pub fn register(mut self, module: Box<dyn ProtocolModule>) -> ProtocolSetBuilder {
        assert!(
            self.modules.iter().all(|m| m.name() != module.name()),
            "protocol module {:?} registered twice",
            module.name()
        );
        self.modules.push(module);
        self
    }

    /// Finalizes the registry: sorts by `(classify_priority, name)` and
    /// locates (appending if necessary) the fallback module.
    pub fn build(mut self) -> ProtocolSet {
        let probe = FootprintBody::UdpOther { payload_len: 0 };
        if !self.modules.iter().any(|m| m.owns(&probe)) {
            self.modules.push(Box::new(other::OtherModule::new()));
        }
        self.modules
            .sort_by_key(|m| (m.classify_priority(), m.name()));
        let fallback = self
            .modules
            .iter()
            .position(|m| m.owns(&probe))
            .expect("a fallback module owning UdpOther is always present");
        ProtocolSet {
            modules: Arc::new(self.modules),
            fallback,
        }
    }
}

/// The Event Generator (paper §3.1): fans every footprint out to the
/// protocol modules' [`ProtocolModule::generate`] hooks, which condense
/// footprints into [`Event`]s against the shared [`SessionPlane`].
///
/// "The Event Generator maps footprints into a single event. ... It
/// helps performance by hiding some computationally expensive matching,
/// e.g., by triggering the ruleset at the moment of interest instead of
/// triggering it upon each incoming RTP Footprint."
#[derive(Debug)]
pub struct EventGenerator {
    config: EventGenConfig,
    plane: SessionPlane,
    /// Per-engine module instances ([`ProtocolModule::fresh`] copies),
    /// in priority order.
    modules: Vec<Box<dyn ProtocolModule>>,
    /// The embedded identity plane; `None` in data-plane (shard) mode,
    /// where the dispatcher owns the single shared plane.
    identity: Option<IdentityPlane>,
    events_emitted: u64,
}

impl EventGenerator {
    /// Creates a generator with an embedded identity plane (the normal,
    /// single-engine configuration) and the default protocol registry.
    pub fn new(config: EventGenConfig) -> EventGenerator {
        EventGenerator::with_protocols(config, &ProtocolSet::default())
    }

    /// Creates a generator driving the given protocol registry.
    pub fn with_protocols(config: EventGenConfig, protocols: &ProtocolSet) -> EventGenerator {
        let identity = Some(IdentityPlane::new(config.clone()));
        EventGenerator {
            config,
            plane: SessionPlane::default(),
            modules: protocols.fresh_modules(),
            identity,
            events_emitted: 0,
        }
    }

    /// Creates a session-plane-only generator: identity-plane detection
    /// (floods, password guessing, IM source checks) is disabled because
    /// some external [`IdentityPlane`] owns that state. Used by the
    /// shards of [`crate::shard::ShardedScidive`].
    pub fn data_plane(config: EventGenConfig) -> EventGenerator {
        EventGenerator::data_plane_with_protocols(config, &ProtocolSet::default())
    }

    /// Data-plane generator over a custom protocol registry.
    pub fn data_plane_with_protocols(
        config: EventGenConfig,
        protocols: &ProtocolSet,
    ) -> EventGenerator {
        EventGenerator {
            config,
            plane: SessionPlane::default(),
            modules: protocols.fresh_modules(),
            identity: None,
            events_emitted: 0,
        }
    }

    /// Events produced so far.
    pub fn events_emitted(&self) -> u64 {
        self.events_emitted
    }

    /// Sessions currently tracked.
    pub fn session_count(&self) -> usize {
        self.plane.sessions.len()
    }

    /// Sessions dropped by [`EventGenConfig::session_timeout`] idle
    /// expiry so far (monotonic).
    pub fn sessions_expired(&self) -> u64 {
        self.plane.expired
    }

    /// Rate-tracker telemetry from the embedded identity plane (zero in
    /// data-plane mode, where the dispatcher owns the one plane).
    pub fn rate_stats(&self) -> crate::rate::RateStats {
        self.identity
            .as_ref()
            .map(IdentityPlane::rate_stats)
            .unwrap_or_default()
    }

    /// Processes one footprint in the context of its trail: every
    /// module's `generate` hook runs (priority order), then the
    /// identity plane. A footprint's session events always precede its
    /// identity events — the sharded dispatcher relies on exactly this
    /// order when it injects plane events behind a shard's own output.
    pub fn on_footprint(
        &mut self,
        fp: &Footprint,
        key: &TrailKey,
        store: &TrailStore,
    ) -> Vec<Event> {
        let mut out = Vec::new();
        self.plane
            .maybe_sweep(fp.meta.time, self.config.session_timeout);
        let mut ctx = GenCtx {
            config: &self.config,
            plane: &mut self.plane,
            trails: store,
            out: &mut out,
            emitted: 0,
        };
        for m in &mut self.modules {
            m.generate(fp, key, &mut ctx);
        }
        self.events_emitted += ctx.emitted;
        if let Some(plane) = self.identity.as_mut() {
            let extra = plane.on_footprint(fp);
            self.events_emitted += extra.len() as u64;
            out.extend(extra);
        }
        out
    }
}

/// Parses the SDP body of a SIP message, if it carries one.
pub(crate) fn parse_sdp(
    msg: &scidive_sip::msg::SipMessage,
) -> Option<scidive_sip::sdp::SessionDescription> {
    if msg.content_type()? != "application/sdp" {
        return None;
    }
    std::str::from_utf8(&msg.body).ok()?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventClass;
    use crate::footprint::PacketMeta;
    use crate::trail::{TrailStore, TrailStoreConfig};
    use scidive_netsim::time::{SimDuration, SimTime};
    use scidive_rtp::packet::RtpHeader;
    use scidive_sip::header::{CSeq, HeaderName, NameAddr, Via};
    use scidive_sip::method::Method;
    use scidive_sip::msg::{response_to, RequestBuilder, SipMessage};
    use scidive_sip::sdp::SessionDescription;
    use scidive_sip::status::StatusCode;

    const A_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
    const B_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 3);
    const ATTACKER: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 66);

    struct Harness {
        store: TrailStore,
        gen: EventGenerator,
        now: u64,
    }

    impl Harness {
        fn new(config: EventGenConfig) -> Harness {
            Harness {
                store: TrailStore::new(TrailStoreConfig::default()),
                gen: EventGenerator::new(config),
                now: 0,
            }
        }

        fn feed(&mut self, fp: Footprint) -> Vec<Event> {
            let (fp, key) = self.store.insert(fp);
            self.gen.on_footprint(&fp, &key, &self.store)
        }

        fn feed_sip(&mut self, src: Ipv4Addr, dst: Ipv4Addr, msg: &SipMessage) -> Vec<Event> {
            self.now += 1;
            self.feed(Footprint {
                meta: PacketMeta {
                    time: SimTime::from_millis(self.now),
                    src,
                    src_port: 5060,
                    dst,
                    dst_port: 5060,
                },
                body: FootprintBody::Sip(msg.clone().into()),
            })
        }

        fn feed_rtp(
            &mut self,
            src: Ipv4Addr,
            dst: Ipv4Addr,
            port: u16,
            ssrc: u32,
            seq: u16,
        ) -> Vec<Event> {
            self.now += 1;
            self.feed(Footprint {
                meta: PacketMeta {
                    time: SimTime::from_millis(self.now),
                    src,
                    src_port: 9000,
                    dst,
                    dst_port: port,
                },
                body: FootprintBody::Rtp {
                    header: RtpHeader::new(0, seq, 0, ssrc),
                    payload_len: 160,
                },
            })
        }

        /// Plays a full A→B call setup, returning the events.
        fn establish_call(&mut self) -> Vec<Event> {
            let inv = invite("c1");
            let mut evs = self.feed_sip(A_IP, B_IP, &inv);
            let ok = ok_with_sdp(&inv);
            evs.extend(self.feed_sip(B_IP, A_IP, &ok));
            evs
        }
    }

    fn invite(call_id: &str) -> SipMessage {
        let sdp = SessionDescription::audio_offer("alice", A_IP, 8000);
        let mut b = RequestBuilder::new(Method::Invite, "sip:bob@lab".parse().unwrap());
        b.from(NameAddr::new("sip:alice@lab".parse().unwrap()).with_tag("ta"))
            .to(NameAddr::new("sip:bob@lab".parse().unwrap()))
            .call_id(call_id)
            .cseq(CSeq::new(1, Method::Invite))
            .via(Via::udp("10.0.0.2:5060", "z9hG4bK-1"))
            .contact(NameAddr::new("sip:alice@10.0.0.2:5060".parse().unwrap()))
            .body("application/sdp", sdp.to_string());
        b.build()
    }

    fn ok_with_sdp(inv: &SipMessage) -> SipMessage {
        let mut ok = response_to(inv, StatusCode::OK, Some("tb"));
        let sdp = SessionDescription::audio_offer("bob", B_IP, 9000);
        ok.headers.set(HeaderName::ContentType, "application/sdp");
        ok.body = sdp.to_string().into_bytes().into();
        ok
    }

    fn bye_claiming_bob(call_id: &str) -> SipMessage {
        let mut b = RequestBuilder::new(Method::Bye, "sip:alice@10.0.0.2:5060".parse().unwrap());
        b.from(NameAddr::new("sip:bob@lab".parse().unwrap()).with_tag("tb"))
            .to(NameAddr::new("sip:alice@lab".parse().unwrap()).with_tag("ta"))
            .call_id(call_id)
            .cseq(CSeq::new(100, Method::Bye))
            .via(Via::udp("10.0.0.3:5060", "z9hG4bK-forged"));
        b.build()
    }

    #[test]
    fn registry_order_is_priority_not_registration() {
        // Register the builtins by hand in two different orders; the
        // built sets must classify identically (same sorted order).
        let forward = ProtocolSetBuilder::empty()
            .register(Box::new(sip::SipModule::new()))
            .register(Box::new(rtp::RtpModule::new()))
            .register(Box::new(rtcp::RtcpModule::new()))
            .register(Box::new(acct::AcctModule::new()))
            .build();
        let backward = ProtocolSetBuilder::empty()
            .register(Box::new(acct::AcctModule::new()))
            .register(Box::new(rtcp::RtcpModule::new()))
            .register(Box::new(rtp::RtpModule::new()))
            .register(Box::new(sip::SipModule::new()))
            .build();
        assert_eq!(forward.names(), backward.names());
        // The fallback module was appended automatically.
        assert!(forward.names().contains(&"other"));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_module_name_panics() {
        let _ = ProtocolSetBuilder::new().register(Box::new(sip::SipModule::new()));
    }

    #[test]
    fn default_registry_lists_builtins_in_priority_order() {
        let set = ProtocolSet::default();
        assert_eq!(set.names(), vec!["acct", "sip", "rtcp", "rtp", "other"]);
    }

    #[test]
    fn idle_session_expires_and_state_restarts() {
        let timeout = SimDuration::from_secs(2);
        let mut h = Harness::new(EventGenConfig {
            session_timeout: timeout,
            ..EventGenConfig::default()
        });
        h.establish_call();
        assert_eq!(h.gen.session_count(), 1);
        assert_eq!(h.gen.sessions_expired(), 0);
        // The session sits idle past the timeout; the next footprint on
        // an unrelated session sweeps it out.
        h.now += 3_000;
        h.feed_sip(A_IP, B_IP, &invite("c2"));
        assert_eq!(
            h.gen.session_count(),
            1,
            "only the fresh session remains"
        );
        assert_eq!(h.gen.sessions_expired(), 1);
        // The expired dialog's state is gone: a 200 OK for the dead
        // call now lands on a blank session and establishes nothing.
        let evs = h.feed_sip(B_IP, A_IP, &ok_with_sdp(&invite("c1")));
        assert!(!evs.iter().any(|e| e.class() == EventClass::CallEstablished));
    }

    #[test]
    fn staleness_at_access_resets_before_any_sweep() {
        // Access-time expiry fires even when the sweep cadence has not
        // come up: a re-INVITE on a long-dead session starts a fresh
        // dialog instead of reading stale endpoints.
        let timeout = SimDuration::from_secs(2);
        let mut h = Harness::new(EventGenConfig {
            session_timeout: timeout,
            ..EventGenConfig::default()
        });
        h.establish_call();
        h.now += 10_000;
        // Same Call-ID, after the dialog expired: treated as a brand-new
        // INVITE (caller learned afresh), not a re-INVITE redirect.
        let sdp = SessionDescription::audio_offer("bob", ATTACKER, 7000);
        let mut b =
            RequestBuilder::new(Method::Invite, "sip:alice@10.0.0.2:5060".parse().unwrap());
        b.from(NameAddr::new("sip:bob@lab".parse().unwrap()).with_tag("tb"))
            .to(NameAddr::new("sip:alice@lab".parse().unwrap()).with_tag("ta"))
            .call_id("c1")
            .cseq(CSeq::new(101, Method::Invite))
            .via(Via::udp("10.0.0.3:5060", "z9hG4bK-late"))
            .body("application/sdp", sdp.to_string());
        let evs = h.feed_sip(B_IP, A_IP, &b.build());
        assert!(
            !evs.iter().any(|e| e.class() == EventClass::CallRedirected),
            "{evs:?}"
        );
        assert!(h.gen.sessions_expired() >= 1);
    }

    #[test]
    fn active_session_survives_sweeps() {
        let timeout = SimDuration::from_secs(2);
        let mut h = Harness::new(EventGenConfig {
            session_timeout: timeout,
            ..EventGenConfig::default()
        });
        h.establish_call();
        // Keep the call alive with media at sub-timeout intervals across
        // many sweep periods.
        for i in 0..20u16 {
            h.now += 1_000;
            h.feed_rtp(B_IP, A_IP, 8000, 7, 100 + i);
        }
        assert_eq!(h.gen.session_count(), 1);
        assert_eq!(h.gen.sessions_expired(), 0);
    }

    #[test]
    fn call_setup_produces_established_event() {
        let mut h = Harness::new(EventGenConfig::default());
        let evs = h.establish_call();
        assert!(evs
            .iter()
            .any(|e| e.class() == EventClass::CallEstablished));
    }

    #[test]
    fn bye_then_rtp_is_orphan() {
        let mut h = Harness::new(EventGenConfig::default());
        h.establish_call();
        let evs = h.feed_sip(B_IP, A_IP, &bye_claiming_bob("c1"));
        assert!(evs.iter().any(|e| e.class() == EventClass::CallTornDown));
        // RTP from B to A's sink right after the BYE.
        let evs = h.feed_rtp(B_IP, A_IP, 8000, 7, 100);
        assert!(
            evs.iter().any(|e| e.class() == EventClass::OrphanRtpAfterBye),
            "{evs:?}"
        );
        // Only the first orphan packet produces the event.
        let evs = h.feed_rtp(B_IP, A_IP, 8000, 7, 101);
        assert!(!evs.iter().any(|e| e.class() == EventClass::OrphanRtpAfterBye));
    }

    #[test]
    fn rtp_outside_monitor_window_is_not_orphan() {
        let mut h = Harness::new(EventGenConfig {
            monitor_window: SimDuration::from_millis(50),
            ..EventGenConfig::default()
        });
        h.establish_call();
        h.feed_sip(B_IP, A_IP, &bye_claiming_bob("c1"));
        h.now += 100; // beyond m
        let evs = h.feed_rtp(B_IP, A_IP, 8000, 7, 100);
        assert!(!evs.iter().any(|e| e.class() == EventClass::OrphanRtpAfterBye));
    }

    #[test]
    fn rtp_from_caller_after_callee_bye_is_fine() {
        let mut h = Harness::new(EventGenConfig::default());
        h.establish_call();
        h.feed_sip(B_IP, A_IP, &bye_claiming_bob("c1"));
        // A→B packets (src A) are not from the claimed terminator.
        let evs = h.feed_rtp(A_IP, B_IP, 9000, 9, 50);
        assert!(!evs.iter().any(|e| e.class() == EventClass::OrphanRtpAfterBye));
    }

    #[test]
    fn cross_protocol_off_kills_orphan_events() {
        let mut h = Harness::new(EventGenConfig {
            cross_protocol: false,
            ..EventGenConfig::default()
        });
        h.establish_call();
        h.feed_sip(B_IP, A_IP, &bye_claiming_bob("c1"));
        let evs = h.feed_rtp(B_IP, A_IP, 8000, 7, 100);
        assert!(!evs.iter().any(|e| e.class() == EventClass::OrphanRtpAfterBye));
    }

    #[test]
    fn forged_reinvite_with_continuing_old_stream_is_orphan() {
        let mut h = Harness::new(EventGenConfig::default());
        h.establish_call();
        // B's legit stream to A is running with ssrc 7.
        h.feed_rtp(B_IP, A_IP, 8000, 7, 10);
        h.feed_rtp(B_IP, A_IP, 8000, 7, 11);
        // Forged re-INVITE: "bob moved to the attacker".
        let sdp = SessionDescription::audio_offer("bob", ATTACKER, 7000);
        let mut b =
            RequestBuilder::new(Method::Invite, "sip:alice@10.0.0.2:5060".parse().unwrap());
        b.from(NameAddr::new("sip:bob@lab".parse().unwrap()).with_tag("tb"))
            .to(NameAddr::new("sip:alice@lab".parse().unwrap()).with_tag("ta"))
            .call_id("c1")
            .cseq(CSeq::new(101, Method::Invite))
            .via(Via::udp("10.0.0.3:5060", "z9hG4bK-forged-r"))
            .body("application/sdp", sdp.to_string());
        let evs = h.feed_sip(B_IP, A_IP, &b.build());
        assert!(evs.iter().any(|e| e.class() == EventClass::CallRedirected));
        // B's old stream continues: orphan.
        let evs = h.feed_rtp(B_IP, A_IP, 8000, 7, 12);
        assert!(
            evs.iter()
                .any(|e| e.class() == EventClass::OrphanRtpAfterRedirect),
            "{evs:?}"
        );
    }

    #[test]
    fn genuine_migration_with_fresh_ssrc_is_clean() {
        let mut h = Harness::new(EventGenConfig::default());
        h.establish_call();
        h.feed_rtp(B_IP, A_IP, 8000, 7, 10);
        // Genuine re-INVITE from B: new port on B, old stream stops.
        let sdp = SessionDescription::audio_offer("bob", B_IP, 9100);
        let mut b =
            RequestBuilder::new(Method::Invite, "sip:alice@10.0.0.2:5060".parse().unwrap());
        b.from(NameAddr::new("sip:bob@lab".parse().unwrap()).with_tag("tb"))
            .to(NameAddr::new("sip:alice@lab".parse().unwrap()).with_tag("ta"))
            .call_id("c1")
            .cseq(CSeq::new(2, Method::Invite))
            .via(Via::udp("10.0.0.3:5060", "z9hG4bK-mig"))
            .body("application/sdp", sdp.to_string());
        h.feed_sip(B_IP, A_IP, &b.build());
        // New stream from B with a fresh SSRC: not an orphan.
        let evs = h.feed_rtp(B_IP, A_IP, 8000, 99, 500);
        assert!(
            !evs.iter()
                .any(|e| e.class() == EventClass::OrphanRtpAfterRedirect),
            "{evs:?}"
        );
    }

    #[test]
    fn seq_jump_emits_violation() {
        let mut h = Harness::new(EventGenConfig::default());
        h.establish_call();
        h.feed_rtp(B_IP, A_IP, 8000, 7, 100);
        let evs = h.feed_rtp(B_IP, A_IP, 8000, 7, 101);
        assert!(!evs.iter().any(|e| e.class() == EventClass::RtpSeqViolation));
        let evs = h.feed_rtp(B_IP, A_IP, 8000, 7, 5000);
        assert!(evs.iter().any(
            |e| matches!(&e.kind, EventKind::RtpSeqViolation { delta, .. } if *delta == 4899)
        ));
    }

    #[test]
    fn small_loss_does_not_violate_seq() {
        let mut h = Harness::new(EventGenConfig::default());
        h.establish_call();
        h.feed_rtp(B_IP, A_IP, 8000, 7, 100);
        let evs = h.feed_rtp(B_IP, A_IP, 8000, 7, 150); // 50 lost
        assert!(!evs.iter().any(|e| e.class() == EventClass::RtpSeqViolation));
    }

    #[test]
    fn unknown_source_rtp_flagged_once() {
        let mut h = Harness::new(EventGenConfig::default());
        h.establish_call();
        let evs = h.feed_rtp(ATTACKER, A_IP, 8000, 55, 40_000);
        assert!(evs.iter().any(|e| e.class() == EventClass::RtpUnknownSource));
        let evs = h.feed_rtp(ATTACKER, A_IP, 8000, 55, 40_001);
        assert!(!evs.iter().any(|e| e.class() == EventClass::RtpUnknownSource));
    }

    #[test]
    fn garbage_to_media_sink_emits() {
        let mut h = Harness::new(EventGenConfig::default());
        h.establish_call();
        h.now += 1;
        let evs = h.feed(Footprint {
            meta: PacketMeta {
                time: SimTime::from_millis(h.now),
                src: ATTACKER,
                src_port: 4444,
                dst: A_IP,
                dst_port: 8000,
            },
            body: FootprintBody::UdpOther { payload_len: 172 },
        });
        assert!(evs.iter().any(|e| e.class() == EventClass::MediaPortGarbage));
    }

    #[test]
    fn malformed_sip_event_from_violations() {
        let mut h = Harness::new(EventGenConfig::default());
        // An INVITE missing Max-Forwards (the fraud craft).
        let mut b = RequestBuilder::new(Method::Invite, "sip:bob@lab".parse().unwrap());
        b.from(NameAddr::new("sip:mallory@lab".parse().unwrap()).with_tag("tm"))
            .to(NameAddr::new("sip:bob@lab".parse().unwrap()))
            .call_id("fraud-1")
            .cseq(CSeq::new(1, Method::Invite))
            .via(Via::udp("10.0.0.66:5060", "z9hG4bK-f"))
            .without(&HeaderName::MaxForwards);
        let evs = h.feed_sip(ATTACKER, Ipv4Addr::new(10, 0, 0, 1), &b.build());
        assert!(evs.iter().any(|e| e.class() == EventClass::SipMalformed));
    }

    #[test]
    fn acct_mismatch_when_billed_party_never_called() {
        let mut h = Harness::new(EventGenConfig::default());
        // mallory calls bob (SIP observed)...
        let sdp = SessionDescription::audio_offer("mallory", ATTACKER, 7200);
        let mut b = RequestBuilder::new(Method::Invite, "sip:bob@lab".parse().unwrap());
        b.from(NameAddr::new("sip:mallory@lab".parse().unwrap()).with_tag("tm"))
            .to(NameAddr::new("sip:bob@lab".parse().unwrap()))
            .call_id("fraud-1")
            .cseq(CSeq::new(1, Method::Invite))
            .via(Via::udp("10.0.0.66:5060", "z9hG4bK-f"))
            .body("application/sdp", sdp.to_string());
        h.feed_sip(ATTACKER, Ipv4Addr::new(10, 0, 0, 1), &b.build());
        // ...but the accounting system bills alice.
        h.now += 1;
        let evs = h.feed(Footprint {
            meta: PacketMeta {
                time: SimTime::from_millis(h.now),
                src: Ipv4Addr::new(10, 0, 0, 1),
                src_port: 2427,
                dst: Ipv4Addr::new(10, 0, 0, 4),
                dst_port: 2427,
            },
            body: FootprintBody::Acct("ACCT START alice@lab bob@lab fraud-1".parse().unwrap()),
        });
        assert!(evs.iter().any(|e| matches!(
            &e.kind,
            EventKind::AcctMismatch { billed, observed_caller: Some(c), .. }
                if billed == "alice@lab" && c == "mallory@lab"
        )));
    }

    #[test]
    fn honest_billing_produces_no_mismatch() {
        let mut h = Harness::new(EventGenConfig::default());
        h.establish_call();
        h.now += 1;
        let evs = h.feed(Footprint {
            meta: PacketMeta {
                time: SimTime::from_millis(h.now),
                src: Ipv4Addr::new(10, 0, 0, 1),
                src_port: 2427,
                dst: Ipv4Addr::new(10, 0, 0, 4),
                dst_port: 2427,
            },
            body: FootprintBody::Acct("ACCT START alice@lab bob@lab c1".parse().unwrap()),
        });
        assert!(!evs.iter().any(|e| e.class() == EventClass::AcctMismatch));
    }

    fn register(src_user: &str, n: u32) -> SipMessage {
        let aor: scidive_sip::uri::SipUri = format!("sip:{src_user}@lab").parse().unwrap();
        let mut b = RequestBuilder::new(Method::Register, "sip:lab".parse().unwrap());
        b.from(NameAddr::new(aor.clone()).with_tag("t"))
            .to(NameAddr::new(aor))
            .call_id(format!("reg-{src_user}-{n}"))
            .cseq(CSeq::new(n, Method::Register))
            .via(Via::udp("10.0.0.9:5060", format!("z9hG4bK-{n}")));
        b.build()
    }

    #[test]
    fn register_flood_detected_per_source() {
        let mut h = Harness::new(EventGenConfig {
            flood_threshold: 5,
            ..EventGenConfig::default()
        });
        let proxy = Ipv4Addr::new(10, 0, 0, 1);
        let mut flood_events = 0;
        for n in 1..=6u32 {
            let req = register("mallory", n);
            flood_events += h
                .feed_sip(ATTACKER, proxy, &req)
                .iter()
                .filter(|e| e.class() == EventClass::RegisterFlood)
                .count();
            let mut resp = response_to(&req, StatusCode::UNAUTHORIZED, None);
            resp.headers.set(
                HeaderName::WwwAuthenticate,
                "Digest realm=\"lab\", nonce=\"n1\"",
            );
            // 401 travels proxy → attacker.
            flood_events += h
                .feed_sip(proxy, ATTACKER, &resp)
                .iter()
                .filter(|e| e.class() == EventClass::RegisterFlood)
                .count();
        }
        assert_eq!(flood_events, 1, "flood event fires exactly once");
    }

    #[test]
    fn benign_auth_cycle_not_flood() {
        let mut h = Harness::new(EventGenConfig {
            flood_threshold: 5,
            ..EventGenConfig::default()
        });
        let proxy = Ipv4Addr::new(10, 0, 0, 1);
        // Six different clients each do one challenge cycle.
        let mut events = 0;
        for i in 0..6u8 {
            let client = Ipv4Addr::new(10, 0, 1, i + 1);
            let req = register(&format!("user{i}"), 1);
            events += h.feed_sip(client, proxy, &req).len();
            let resp = response_to(&req, StatusCode::UNAUTHORIZED, None);
            events += h
                .feed_sip(proxy, client, &resp)
                .iter()
                .filter(|e| e.class() == EventClass::RegisterFlood)
                .count();
        }
        assert_eq!(events, 0, "stateful tracking keeps sources apart");
    }

    #[test]
    fn stateless_mode_floods_on_benign_churn() {
        let mut h = Harness::new(EventGenConfig {
            flood_threshold: 5,
            stateful: false,
            ..EventGenConfig::default()
        });
        let proxy = Ipv4Addr::new(10, 0, 0, 1);
        let mut flood = 0;
        for i in 0..6u8 {
            let client = Ipv4Addr::new(10, 0, 1, i + 1);
            let req = register(&format!("user{i}"), 1);
            h.feed_sip(client, proxy, &req);
            let resp = response_to(&req, StatusCode::UNAUTHORIZED, None);
            flood += h
                .feed_sip(proxy, client, &resp)
                .iter()
                .filter(|e| e.class() == EventClass::RegisterFlood)
                .count();
        }
        assert_eq!(flood, 1, "global 4xx counting false-alarms");
    }

    #[test]
    fn password_guessing_detected_by_distinct_responses() {
        let mut h = Harness::new(EventGenConfig {
            guess_threshold: 3,
            ..EventGenConfig::default()
        });
        let proxy = Ipv4Addr::new(10, 0, 0, 1);
        let mut hits = 0;
        for n in 1..=4u32 {
            let mut req = register("alice", n);
            req.headers.set(
                HeaderName::Authorization,
                format!(
                    "Digest username=\"alice\", realm=\"lab\", nonce=\"n1\", uri=\"sip:lab\", response=\"{:032x}\"",
                    n
                ),
            );
            hits += h
                .feed_sip(ATTACKER, proxy, &req)
                .iter()
                .filter(|e| e.class() == EventClass::PasswordGuessing)
                .count();
        }
        assert_eq!(hits, 1);
    }

    #[test]
    fn single_retry_auth_is_not_guessing() {
        let mut h = Harness::new(EventGenConfig {
            guess_threshold: 3,
            ..EventGenConfig::default()
        });
        let proxy = Ipv4Addr::new(10, 0, 0, 1);
        let mut req = register("alice", 2);
        req.headers.set(
            HeaderName::Authorization,
            "Digest username=\"alice\", realm=\"lab\", nonce=\"n1\", uri=\"sip:lab\", response=\"aaaa\"",
        );
        let evs = h.feed_sip(A_IP, proxy, &req);
        assert!(!evs.iter().any(|e| e.class() == EventClass::PasswordGuessing));
    }

    fn message_from(aor: &str, src_tag: &str) -> SipMessage {
        let from: scidive_sip::uri::SipUri = format!("sip:{aor}").parse().unwrap();
        let mut b = RequestBuilder::new(Method::Message, "sip:alice@lab".parse().unwrap());
        b.from(NameAddr::new(from).with_tag(src_tag))
            .to(NameAddr::new("sip:alice@lab".parse().unwrap()))
            .call_id(format!("im-{src_tag}"))
            .cseq(CSeq::new(1, Method::Message))
            .via(Via::udp("10.0.0.3:5060", format!("z9hG4bK-{src_tag}")))
            .body("text/plain", "hi");
        b.build()
    }

    #[test]
    fn fake_im_mismatch_detected() {
        let mut h = Harness::new(EventGenConfig::default());
        // bob's identity is learned from his REGISTER.
        h.feed_sip(B_IP, Ipv4Addr::new(10, 0, 0, 1), &register("bob", 1));
        // Fake message claiming bob, from the attacker's address.
        let evs = h.feed_sip(ATTACKER, A_IP, &message_from("bob@lab", "x1"));
        assert!(evs.iter().any(|e| matches!(
            &e.kind,
            EventKind::ImSourceMismatch { claimed_aor, src_ip, expected_ip }
                if claimed_aor == "bob@lab" && *src_ip == ATTACKER && *expected_ip == B_IP
        )));
    }

    #[test]
    fn legit_im_from_known_ip_is_clean() {
        let mut h = Harness::new(EventGenConfig::default());
        h.feed_sip(B_IP, Ipv4Addr::new(10, 0, 0, 1), &register("bob", 1));
        let evs = h.feed_sip(B_IP, A_IP, &message_from("bob@lab", "x2"));
        assert!(!evs.iter().any(|e| e.class() == EventClass::ImSourceMismatch));
    }

    #[test]
    fn mobility_after_interval_is_allowed() {
        let mut h = Harness::new(EventGenConfig {
            im_mobility_interval: SimDuration::from_millis(100),
            ..EventGenConfig::default()
        });
        h.feed_sip(B_IP, Ipv4Addr::new(10, 0, 0, 1), &register("bob", 1));
        h.now += 200; // bob has had time to move
        let new_home = Ipv4Addr::new(10, 0, 0, 30);
        let evs = h.feed_sip(new_home, A_IP, &message_from("bob@lab", "x3"));
        assert!(!evs.iter().any(|e| e.class() == EventClass::ImSourceMismatch));
        // And the new address is now the expected one.
        let evs = h.feed_sip(ATTACKER, A_IP, &message_from("bob@lab", "x4"));
        assert!(evs.iter().any(|e| matches!(
            &e.kind,
            EventKind::ImSourceMismatch { expected_ip, .. } if *expected_ip == new_home
        )));
    }

    #[test]
    fn spoofed_fake_im_evades_endpoint_rule() {
        // The paper's concession: an attacker who spoofs the IP too is
        // indistinguishable at the endpoint.
        let mut h = Harness::new(EventGenConfig::default());
        h.feed_sip(B_IP, Ipv4Addr::new(10, 0, 0, 1), &register("bob", 1));
        let evs = h.feed_sip(B_IP, A_IP, &message_from("bob@lab", "x5"));
        assert!(!evs.iter().any(|e| e.class() == EventClass::ImSourceMismatch));
    }

    #[test]
    fn relayed_im_is_not_checked_against_relay_ip() {
        let proxy = Ipv4Addr::new(10, 0, 0, 1);
        let mut h = Harness::new(EventGenConfig {
            infrastructure_ips: vec![proxy],
            ..EventGenConfig::default()
        });
        h.feed_sip(B_IP, proxy, &register("bob", 1));
        // The proxy-relayed copy (src = proxy) is skipped entirely.
        let evs = h.feed_sip(proxy, A_IP, &message_from("bob@lab", "x6"));
        assert!(!evs.iter().any(|e| e.class() == EventClass::ImSourceMismatch));
    }
}
