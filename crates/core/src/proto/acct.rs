//! The accounting protocol module (§3.2): transaction classification on
//! the accounting port, Call-ID attribution, and the cross-protocol
//! billing check against the SIP trail.

use crate::distill::DistillerConfig;
use crate::event::EventKind;
use crate::footprint::{AcctFootprint, Footprint, FootprintBody, PacketMeta};
use crate::proto::{AttributeCtx, GenCtx, ProtocolModule};
use crate::trail::{SessionKey, TrailKey};
use bytes::Bytes;

/// The accounting module. Owns [`FootprintBody::Acct`]; an accounting
/// transaction carries the billed Call-ID directly, which is what lets
/// the billing check join it against the SIP session.
#[derive(Debug, Default)]
pub struct AcctModule;

impl AcctModule {
    /// Creates the module.
    pub fn new() -> AcctModule {
        AcctModule
    }
}

impl ProtocolModule for AcctModule {
    fn name(&self) -> &'static str {
        "acct"
    }

    fn classify_priority(&self) -> u16 {
        // First: the accounting port consumes its traffic outright.
        10
    }

    fn fresh(&self) -> Box<dyn ProtocolModule> {
        Box::new(AcctModule)
    }

    fn owns(&self, body: &FootprintBody) -> bool {
        matches!(body, FootprintBody::Acct(_))
    }

    fn classify(
        &self,
        payload: &Bytes,
        meta: &PacketMeta,
        cfg: &DistillerConfig,
    ) -> Option<FootprintBody> {
        if meta.dst_port != cfg.acct_port {
            return None;
        }
        if let Some(acct) = std::str::from_utf8(payload)
            .ok()
            .and_then(|s| s.parse::<AcctFootprint>().ok())
        {
            return Some(FootprintBody::Acct(acct));
        }
        // The accounting port consumes what it cannot parse.
        Some(FootprintBody::UdpOther {
            payload_len: payload.len(),
        })
    }

    fn attribute(&self, fp: &Footprint, ctx: &mut AttributeCtx<'_>) -> SessionKey {
        match &fp.body {
            FootprintBody::Acct(acct) => ctx.intern(&acct.call_id),
            _ => ctx.synthetic("other", fp.meta.dst, None),
        }
    }

    fn generate(&mut self, fp: &Footprint, key: &TrailKey, ctx: &mut GenCtx<'_>) {
        let FootprintBody::Acct(acct) = &fp.body else {
            return;
        };
        if !(acct.start && ctx.config.cross_protocol) {
            return;
        }
        on_acct_start(fp, key, &acct.caller, &acct.call_id, ctx);
    }
}

fn on_acct_start(
    fp: &Footprint,
    key: &TrailKey,
    billed: &str,
    call_id: &str,
    ctx: &mut GenCtx<'_>,
) {
    let observed_caller = ctx
        .session_mut(&key.session, fp.meta.time)
        .and_then(|s| s.caller_aor.clone());
    let mismatch = observed_caller.as_deref() != Some(billed);
    if let Some(state) = ctx.plane.sessions.get_mut(&key.session) {
        if state.acct_checked {
            return;
        }
        state.acct_checked = true;
    }
    if mismatch {
        ctx.emit(
            fp.meta.time,
            Some(key.session.clone()),
            EventKind::AcctMismatch {
                billed: billed.to_string(),
                observed_caller,
                call_id: call_id.to_string(),
            },
        );
    }
}
