//! The SIP protocol module: port-primed (and off-port sniffed)
//! classification, Call-ID attribution, SDP media learning, per-session
//! dialog-state event generation, and the identity plane.

use crate::distill::DistillerConfig;
use crate::event::{Event, EventGenConfig, EventKind, FlowKey};
use crate::footprint::{Footprint, FootprintBody, PacketMeta, PooledSip};
use crate::proto::{parse_sdp, AttributeCtx, GenCtx, ProtocolModule, Redirect, Teardown};
use crate::rate::{hash_parts, LatchSet, RateStats, WindowedDistinct, WindowedSketch};
use crate::trail::{SessionKey, TrailKey};
use bytes::Bytes;
use scidive_netsim::time::{SimDuration, SimTime};
use scidive_sip::auth::DigestCredentials;
use scidive_sip::header::HeaderName;
use scidive_sip::method::Method;
use scidive_sip::msg::SipMessage;
use scidive_sip::parse::looks_like_sip;
use scidive_sip::sdp::SessionDescription;
use std::collections::{HashMap, VecDeque};
use std::net::Ipv4Addr;

/// The SIP module. Owns [`FootprintBody::Sip`] and
/// [`FootprintBody::SipMalformed`]; generates the dialog-machine events
/// (establishment, teardown, redirect, malformed) that the
/// cross-protocol media checks in the RTP module arm themselves on.
#[derive(Debug, Default)]
pub struct SipModule;

impl SipModule {
    /// Creates the module.
    pub fn new() -> SipModule {
        SipModule
    }
}

impl ProtocolModule for SipModule {
    fn name(&self) -> &'static str {
        "sip"
    }

    fn classify_priority(&self) -> u16 {
        20
    }

    fn fresh(&self) -> Box<dyn ProtocolModule> {
        Box::new(SipModule)
    }

    fn owns(&self, body: &FootprintBody) -> bool {
        matches!(
            body,
            FootprintBody::Sip(_) | FootprintBody::SipMalformed { .. }
        )
    }

    fn classify(
        &self,
        payload: &Bytes,
        meta: &PacketMeta,
        cfg: &DistillerConfig,
    ) -> Option<FootprintBody> {
        // Reference mode runs the retained naive tokenizer/sniffer so
        // the pipeline bench can measure the pre-optimization baseline;
        // results are byte-identical (property-tested).
        let parse = if cfg.reference_impl {
            SipMessage::parse_bytes_reference
        } else {
            SipMessage::parse_bytes
        };
        let sniff = if cfg.reference_impl {
            scidive_sip::parse::looks_like_sip_reference
        } else {
            looks_like_sip
        };
        // The production path recycles message boxes through the pool;
        // the reference pays one allocation per message, as it used to.
        let wrap = if cfg.reference_impl {
            PooledSip::heap
        } else {
            PooledSip::new
        };
        let on_sip_port = cfg.sip_ports.contains(&meta.dst_port)
            || cfg.sip_ports.contains(&meta.src_port);
        if on_sip_port {
            // A signalling port consumes its traffic: what does not
            // parse is a malformed-SIP footprint, not someone else's.
            return Some(match parse(payload.clone()) {
                Ok(msg) => FootprintBody::Sip(wrap(msg)),
                Err(e) => FootprintBody::SipMalformed {
                    reason: e.to_string(),
                    prefix: payload.iter().take(32).copied().collect(),
                },
            });
        }
        // Off-port SIP (attackers do not respect port conventions).
        if sniff(payload) {
            if let Ok(msg) = parse(payload.clone()) {
                return Some(FootprintBody::Sip(wrap(msg)));
            }
        }
        None
    }

    fn attribute(&self, fp: &Footprint, ctx: &mut AttributeCtx<'_>) -> SessionKey {
        match &fp.body {
            FootprintBody::Sip(msg) => match msg.call_id() {
                Ok(id) => ctx.intern(id),
                Err(_) => ctx.synthetic("sip-anon", fp.meta.src, None),
            },
            _ => ctx.synthetic("sip-malformed", fp.meta.src, None),
        }
    }

    fn learn(
        &self,
        fp: &Footprint,
        session: &SessionKey,
        ctx: &mut AttributeCtx<'_>,
    ) -> bool {
        let FootprintBody::Sip(msg) = &fp.body else {
            return false;
        };
        if msg.content_type() != Some("application/sdp") {
            return false;
        }
        let Ok(text) = std::str::from_utf8(&msg.body) else {
            return false;
        };
        let Ok(sdp) = text.parse::<SessionDescription>() else {
            return false;
        };
        if let Some((addr, port)) = sdp.rtp_target() {
            ctx.learn_target(addr, port, session);
            return true;
        }
        false
    }

    fn generate(&mut self, fp: &Footprint, key: &TrailKey, ctx: &mut GenCtx<'_>) {
        match &fp.body {
            FootprintBody::Sip(msg) => on_sip(fp, key, msg, ctx),
            FootprintBody::SipMalformed { reason, .. } => {
                ctx.emit(
                    fp.meta.time,
                    Some(key.session.clone()),
                    EventKind::SipMalformed {
                        violations: vec![reason.clone()],
                        src: fp.meta.src,
                    },
                );
            }
            _ => {}
        }
    }
}

fn on_sip(fp: &Footprint, key: &TrailKey, msg: &SipMessage, ctx: &mut GenCtx<'_>) {
    let time = fp.meta.time;
    let session = key.session.clone();

    // Format discipline (billing-fraud condition 1).
    let violations = msg.format_violations();
    if !violations.is_empty() {
        ctx.emit(
            time,
            Some(session.clone()),
            EventKind::SipMalformed {
                violations,
                src: fp.meta.src,
            },
        );
    }

    match msg.method() {
        Some(Method::Invite) => on_sip_invite(fp, &session, msg, ctx),
        Some(Method::Bye) => on_sip_bye(fp, &session, msg, ctx),
        // REGISTER and MESSAGE are pure identity-plane traffic,
        // handled by [`IdentityPlane::on_footprint`].
        Some(_) => {}
        None => on_sip_response(fp, &session, msg, ctx),
    }
}

fn on_sip_invite(
    fp: &Footprint,
    session: &SessionKey,
    msg: &SipMessage,
    ctx: &mut GenCtx<'_>,
) {
    let time = fp.meta.time;
    let (Ok(from), Ok(to)) = (msg.from_(), msg.to()) else {
        return;
    };
    let sdp = parse_sdp(msg);
    let state = ctx.session_entry(session, time);
    if state.caller_aor.is_none() {
        // New session: the INVITE defines the caller.
        state.caller_aor = Some(from.uri.aor());
        state.callee_aor = Some(to.uri.aor());
        if let Some(target) = sdp.as_ref().and_then(SessionDescription::rtp_target) {
            state.caller_media = Some(target);
        }
        return;
    }
    if !state.established {
        return; // retransmission / proxy copy of the initial INVITE
    }
    // Re-INVITE on an established session.
    let claimed_aor = from.uri.aor();
    let Some(new_target) = sdp.as_ref().and_then(SessionDescription::rtp_target) else {
        return;
    };
    let claimant_is_callee = Some(&claimed_aor) == state.callee_aor.as_ref();
    let old_target = if claimant_is_callee {
        state.callee_media
    } else {
        state.caller_media
    };
    let Some(old_target) = old_target else {
        return;
    };
    if old_target == new_target {
        return; // session refresh, nothing moved
    }
    let victim_sink = if claimant_is_callee {
        state.caller_media
    } else {
        state.callee_media
    };
    // Snapshot the abandoned endpoint's flow SSRCs: genuine movers
    // stop these; forged re-INVITEs leave them running.
    let old_ssrcs = victim_sink
        .map(|(dst, dst_port)| FlowKey {
            src: old_target.0,
            dst,
            dst_port,
        })
        .and_then(|flow| ctx.plane.flow_ssrcs.get(&flow).cloned())
        .unwrap_or_default();
    let state = ctx.plane.sessions.get_mut(session).expect("present");
    state.redirected = Some(Redirect {
        at: time,
        old_target,
        old_ssrcs,
        victim_sink,
    });
    state.orphan_redirect_emitted = false;
    if claimant_is_callee {
        state.callee_media = Some(new_target);
    } else {
        state.caller_media = Some(new_target);
    }
    ctx.emit(
        time,
        Some(session.clone()),
        EventKind::CallRedirected {
            claimed_aor,
            old_target,
            new_target,
        },
    );
}

fn on_sip_bye(
    fp: &Footprint,
    session: &SessionKey,
    msg: &SipMessage,
    ctx: &mut GenCtx<'_>,
) {
    let time = fp.meta.time;
    let Ok(from) = msg.from_() else {
        return;
    };
    let by_aor = from.uri.aor();
    let Some(state) = ctx.session_mut(session, time) else {
        return;
    };
    if state.torn_down.is_some() {
        return; // proxy copy of the same BYE
    }
    let by_media_ip = if Some(&by_aor) == state.callee_aor.as_ref() {
        state.callee_media.map(|(ip, _)| ip)
    } else {
        state.caller_media.map(|(ip, _)| ip)
    };
    state.torn_down = Some(Teardown { at: time, by_media_ip });
    ctx.emit(
        time,
        Some(session.clone()),
        EventKind::CallTornDown { by_aor, by_media_ip },
    );
}

fn on_sip_response(
    fp: &Footprint,
    session: &SessionKey,
    msg: &SipMessage,
    ctx: &mut GenCtx<'_>,
) {
    let time = fp.meta.time;
    let Some(status) = msg.status() else {
        return;
    };
    if !status.is_success() {
        // 4xx churn feeds the identity plane's flood window, not the
        // session plane.
        return;
    }
    let Ok(cseq) = msg.cseq() else {
        return;
    };
    if cseq.method != Method::Invite {
        return;
    }
    // 2xx to an INVITE: learn the answering side's media and mark
    // established.
    let sdp = parse_sdp(msg);
    let from_aor = msg.from_().ok().map(|f| f.uri.aor());
    let Some(state) = ctx.session_mut(session, time) else {
        return;
    };
    let answerer_is_callee = from_aor
        .and_then(|aor| state.caller_aor.as_ref().map(|c| *c == aor))
        .unwrap_or(true);
    if let Some(target) = sdp.as_ref().and_then(SessionDescription::rtp_target) {
        if answerer_is_callee {
            if state.callee_media.is_none() || !state.established {
                state.callee_media = Some(target);
            }
        } else if state.caller_media.is_none() || !state.established {
            state.caller_media = Some(target);
        }
    }
    if !state.established {
        state.established = true;
        let caller = state.caller_aor.clone().unwrap_or_default();
        let callee = state.callee_aor.clone().unwrap_or_default();
        ctx.emit(
            time,
            Some(session.clone()),
            EventKind::CallEstablished { caller, callee },
        );
    }
}

// ----------------------------------------------------------------------
// The identity plane
// ----------------------------------------------------------------------

#[derive(Debug, Default)]
struct RegWindow {
    requests: VecDeque<SimTime>,
    errors: VecDeque<SimTime>,
    flood_emitted: bool,
}

#[derive(Debug, Default)]
struct GuessWindow {
    responses: VecDeque<(SimTime, String)>,
    emitted: bool,
}

/// The wildcard source used for stateless (global) flood tracking.
const GLOBAL_SRC: Ipv4Addr = Ipv4Addr::UNSPECIFIED;

/// The constant-memory sketch side of the identity plane (see
/// [`crate::rate`]). In sketch mode (`exact_rate_state = false`) these
/// structures *are* the flood / guess state; in exact mode they shadow
/// the exact windows so divergence between the two is observable as
/// telemetry without affecting behaviour. Built lazily on the first
/// flood- or guess-relevant footprint; from then on the byte footprint
/// is fixed regardless of how many sources the traffic carries.
#[derive(Debug)]
struct IdentityRates {
    /// REGISTER sightings per flood key.
    requests: WindowedSketch,
    /// 4xx sightings per flood key.
    errors: WindowedSketch,
    /// Distinct digest responses per (src, username).
    guesses: WindowedDistinct,
    /// Flood fired-latch per flood key (cleared on hysteresis).
    flood_latch: LatchSet,
    /// Guess fired-latch per (src, username) (never cleared).
    guess_latch: LatchSet,
    /// Exact-vs-estimate shadow divergence (exact mode only).
    divergence: RateStats,
}

impl IdentityRates {
    fn new(config: &EventGenConfig) -> IdentityRates {
        let r = &config.rate;
        IdentityRates {
            requests: WindowedSketch::new(
                config.flood_window,
                r.window_buckets,
                r.counter_width,
                r.counter_depth,
                r.tracker_seed("identity-requests"),
            ),
            errors: WindowedSketch::new(
                config.flood_window,
                r.window_buckets,
                r.counter_width,
                r.counter_depth,
                r.tracker_seed("identity-errors"),
            ),
            guesses: WindowedDistinct::new(
                config.guess_window,
                r.distinct_buckets,
                r.distinct_slots,
                r.distinct_registers,
                r.tracker_seed("identity-guesses"),
            ),
            flood_latch: LatchSet::new(r.latch_bits, r.tracker_seed("identity-flood-latch")),
            guess_latch: LatchSet::new(r.latch_bits, r.tracker_seed("identity-guess-latch")),
            divergence: RateStats::default(),
        }
    }

    fn stats(&self) -> RateStats {
        let mut s = self.divergence;
        s.trackers = 5;
        s.bytes = (self.requests.bytes()
            + self.errors.bytes()
            + self.guesses.bytes()
            + self.flood_latch.bytes()
            + self.guess_latch.bytes()) as u64;
        s
    }
}

/// The identity plane: the cross-session detection state keyed by IP
/// address or user identity rather than by session — registration /
/// 4xx churn windows (§3.3 flood DoS), digest-response windows (§3.3
/// password guessing), and the AOR → IP bindings behind the fake-IM
/// check (§4.2.2).
///
/// In the single-engine pipeline it lives inside the
/// [`crate::proto::EventGenerator`]. The sharded pipeline
/// ([`crate::shard`]) lifts it into the dispatcher — it is the one
/// stateful component that must see every SIP frame regardless of
/// session — and runs the per-shard generators with the plane disabled
/// ([`crate::proto::EventGenerator::data_plane`]), injecting the
/// plane's events into the owning shard's stream instead.
#[derive(Debug)]
pub struct IdentityPlane {
    config: EventGenConfig,
    reg_windows: HashMap<Ipv4Addr, RegWindow>,
    guess_windows: HashMap<(Ipv4Addr, String), GuessWindow>,
    /// identity AOR → (ip, last_change).
    aor_ips: HashMap<String, (Ipv4Addr, SimTime)>,
    /// Sketch state: authoritative when `exact_rate_state` is off,
    /// shadow telemetry when it is on. Lazily built.
    rates: Option<IdentityRates>,
    last_sweep: SimTime,
    events_emitted: u64,
}

impl IdentityPlane {
    /// Creates an empty identity plane.
    pub fn new(config: EventGenConfig) -> IdentityPlane {
        IdentityPlane {
            config,
            reg_windows: HashMap::new(),
            guess_windows: HashMap::new(),
            aor_ips: HashMap::new(),
            rates: None,
            last_sweep: SimTime::ZERO,
            events_emitted: 0,
        }
    }

    /// Events produced so far by this plane.
    pub fn events_emitted(&self) -> u64 {
        self.events_emitted
    }

    /// Identities currently bound to an address.
    pub fn identity_count(&self) -> usize {
        self.aor_ips.len()
    }

    /// Snapshot of the sketch-side telemetry: tracker count, pinned
    /// bytes, and (exact mode) the shadow divergence between estimates
    /// and the exact windows.
    pub fn rate_stats(&self) -> RateStats {
        self.rates.as_ref().map(IdentityRates::stats).unwrap_or_default()
    }

    fn rates_mut(&mut self) -> &mut IdentityRates {
        if self.rates.is_none() {
            self.rates = Some(IdentityRates::new(&self.config));
        }
        self.rates.as_mut().expect("just initialised")
    }

    /// Processes one footprint; only SIP footprints carry identity-plane
    /// signal (REGISTER churn, digest credentials, MESSAGE sources, 4xx
    /// error responses), everything else returns no events.
    pub fn on_footprint(&mut self, fp: &Footprint) -> Vec<Event> {
        let mut out = Vec::new();
        self.maybe_sweep(fp.meta.time);
        if let FootprintBody::Sip(msg) = &fp.body {
            self.on_sip(fp, msg, &mut out);
        }
        out
    }

    /// Drops identity state idle past [`EventGenConfig::identity_timeout`]
    /// (checked at quarter-timeout cadence, like the session-plane
    /// sweeps). AOR bindings idle that long would be re-learned as
    /// plausible mobility anyway (the timeout is far above
    /// `im_mobility_interval`); rate windows are dropped only when every
    /// retained entry is older than the timeout *and* the entry's latch
    /// would release at a zero count, so sweeping never suppresses or
    /// invents an alert.
    fn maybe_sweep(&mut self, now: SimTime) {
        let timeout = self.config.identity_timeout;
        if now.saturating_since(self.last_sweep) < timeout / 4 {
            return;
        }
        self.last_sweep = now;
        self.aor_ips
            .retain(|_, &mut (_, last)| now.saturating_since(last) <= timeout);
        let flood_clears = self.config.flood_threshold / 2 > 0;
        self.reg_windows.retain(|_, w| {
            let idle = w
                .requests
                .back()
                .into_iter()
                .chain(w.errors.back())
                .all(|&t| now.saturating_since(t) > timeout);
            let latch_safe = !w.flood_emitted || flood_clears;
            !(idle && latch_safe)
        });
        self.guess_windows.retain(|_, w| {
            // Fired guess latches are permanent in the reference
            // semantics, so their entries are never dropped.
            let idle = w
                .responses
                .back()
                .is_none_or(|&(t, _)| now.saturating_since(t) > timeout);
            !idle || w.emitted
        });
    }

    fn emit(&mut self, out: &mut Vec<Event>, time: SimTime, kind: EventKind) {
        self.events_emitted += 1;
        // Identity-plane events are never session-scoped: floods, digest
        // windows and IM histories are keyed by address or AOR.
        out.push(Event {
            time,
            session: None,
            kind,
        });
    }

    fn on_sip(&mut self, fp: &Footprint, msg: &SipMessage, out: &mut Vec<Event>) {
        let time = fp.meta.time;
        // Identity → IP learning from originating (non-relay) legs.
        let from_relay = self.config.infrastructure_ips.contains(&fp.meta.src);
        match msg.method() {
            Some(Method::Register) => {
                if !from_relay {
                    if let Ok(from) = msg.from_() {
                        self.learn_identity(&from.uri.aor(), fp.meta.src, time);
                    }
                }
                self.track_register_request(fp.meta.src, time, out);
                self.track_auth_response(fp.meta.src, msg, time, out);
            }
            Some(Method::Message) => {
                if !from_relay {
                    self.on_im(fp, msg, out);
                }
            }
            Some(_) => {}
            None => {
                // Registration churn: 4xx responses feed the flood
                // window keyed by the challenged client (the response's
                // destination).
                if msg.status().is_some_and(|s| s.is_client_error()) {
                    self.track_error_response(fp.meta.dst, time, out);
                }
            }
        }
    }

    fn on_im(&mut self, fp: &Footprint, msg: &SipMessage, out: &mut Vec<Event>) {
        let time = fp.meta.time;
        let Ok(from) = msg.from_() else {
            return;
        };
        let claimed = from.uri.aor();
        let src = fp.meta.src;
        if let Ok(call_id) = msg.call_id() {
            self.emit(
                out,
                time,
                EventKind::ImObserved {
                    claimed_aor: claimed.clone(),
                    src_ip: src,
                    dst_ip: fp.meta.dst,
                    call_id: call_id.to_string(),
                },
            );
        }
        if !self.config.stateful {
            // Stateless approximation: only the last IP, no mobility
            // allowance — any change alarms.
            match self.aor_ips.get(&claimed) {
                Some(&(known, _)) if known != src => {
                    self.emit(
                        out,
                        time,
                        EventKind::ImSourceMismatch {
                            claimed_aor: claimed,
                            src_ip: src,
                            expected_ip: known,
                        },
                    );
                }
                _ => {
                    self.aor_ips.insert(claimed, (src, time));
                }
            }
            return;
        }
        match self.aor_ips.get(&claimed) {
            None => {
                self.learn_identity(&claimed, src, time);
            }
            Some(&(known, _)) if known == src => {
                self.aor_ips.insert(claimed, (src, time));
            }
            Some(&(known, last_change)) => {
                let elapsed = time.saturating_since(last_change);
                if elapsed >= self.config.im_mobility_interval {
                    // Plausible mobility: accept and re-learn.
                    self.learn_identity(&claimed, src, time);
                } else {
                    self.emit(
                        out,
                        time,
                        EventKind::ImSourceMismatch {
                            claimed_aor: claimed,
                            src_ip: src,
                            expected_ip: known,
                        },
                    );
                }
            }
        }
    }

    fn learn_identity(&mut self, aor: &str, ip: Ipv4Addr, time: SimTime) {
        match self.aor_ips.get(aor) {
            Some(&(known, _)) if known == ip => {
                self.aor_ips.insert(aor.to_string(), (ip, time));
            }
            _ => {
                self.aor_ips.insert(aor.to_string(), (ip, time));
            }
        }
    }

    // ------------------------------------------------------------------
    // Registration flood / password guessing (§3.3)
    //
    // Two-plane note: unlike rapid-connect (keyed by caller while the
    // shard router keys by Call-ID, so its threshold clause is evaluated
    // on the dispatcher's global fold plane — see `crate::rate::fold`),
    // REGISTER-flood and password-guess events are produced by the
    // dispatcher-resident `IdentityPlane` in sharded mode. Every
    // REGISTER/4xx for a given source reaches the *same* tracker there,
    // so the local evaluation below is already global; no fold-plane
    // candidate path is needed for these clauses.
    // ------------------------------------------------------------------

    fn flood_key(&self, src: Ipv4Addr) -> Ipv4Addr {
        if self.config.stateful {
            src
        } else {
            GLOBAL_SRC
        }
    }

    fn flood_hash(&self, key: Ipv4Addr) -> u64 {
        hash_parts(self.config.rate.seed, &[b"flood", &key.octets()])
    }

    fn track_register_request(&mut self, src: Ipv4Addr, time: SimTime, out: &mut Vec<Event>) {
        let key = self.flood_key(src);
        if self.config.exact_rate_state {
            let window = self.config.flood_window;
            let w = self.reg_windows.entry(key).or_default();
            w.requests.push_back(time);
            prune(&mut w.requests, time, window);
        }
        let khash = self.flood_hash(key);
        self.rates_mut().requests.observe(time, khash);
        self.check_flood(key, time, out);
    }

    fn track_error_response(&mut self, dst: Ipv4Addr, time: SimTime, out: &mut Vec<Event>) {
        let key = self.flood_key(dst);
        if self.config.exact_rate_state {
            let window = self.config.flood_window;
            let w = self.reg_windows.entry(key).or_default();
            w.errors.push_back(time);
            prune(&mut w.errors, time, window);
        }
        let khash = self.flood_hash(key);
        self.rates_mut().errors.observe(time, khash);
        self.check_flood(key, time, out);
    }

    fn check_flood(&mut self, key: Ipv4Addr, time: SimTime, out: &mut Vec<Event>) {
        let threshold = self.config.flood_threshold;
        let stateful = self.config.stateful;
        let exact = self.config.exact_rate_state;
        let khash = self.flood_hash(key);
        // Sketch-side count: authoritative in sketch mode, shadow
        // telemetry in exact mode. Never undercounts the true windowed
        // count (see `crate::rate::window`).
        let estimated = {
            let r = self.rates_mut();
            let requests = r.requests.estimate(time, khash);
            let errors = r.errors.estimate(time, khash);
            flood_alternations(requests, errors, stateful)
        };
        let (count, latched) = if exact {
            let Some(w) = self.reg_windows.get(&key) else {
                return;
            };
            let count = flood_alternations(
                w.requests.len() as u32,
                w.errors.len() as u32,
                stateful,
            );
            let latched = w.flood_emitted;
            self.rates_mut().divergence.record_divergence(estimated, count);
            (count, latched)
        } else {
            (estimated, self.rates_mut().flood_latch.get(khash))
        };
        if count >= threshold && !latched {
            if exact {
                if let Some(w) = self.reg_windows.get_mut(&key) {
                    w.flood_emitted = true;
                }
            } else {
                self.rates_mut().flood_latch.put(khash, true);
            }
            self.emit(out, time, EventKind::RegisterFlood { src: key, count });
        } else if count < threshold / 2 {
            if exact {
                if let Some(w) = self.reg_windows.get_mut(&key) {
                    w.flood_emitted = false;
                }
            } else {
                self.rates_mut().flood_latch.put(khash, false);
            }
        }
    }

    fn track_auth_response(
        &mut self,
        src: Ipv4Addr,
        msg: &SipMessage,
        time: SimTime,
        out: &mut Vec<Event>,
    ) {
        let Some(creds) = msg
            .headers
            .get(&HeaderName::Authorization)
            .and_then(|v| DigestCredentials::parse(v).ok())
        else {
            return;
        };
        let key = if self.config.stateful {
            (src, creds.username.clone())
        } else {
            (GLOBAL_SRC, String::new())
        };
        let threshold = self.config.guess_threshold;
        let exact = self.config.exact_rate_state;
        let seed = self.config.rate.seed;
        let khash = hash_parts(seed, &[b"guess", &key.0.octets(), key.1.as_bytes()]);
        let item = hash_parts(seed, &[b"resp", creds.response.as_bytes()]);
        // Sketch-side distinct estimate (authoritative in sketch mode;
        // exact at threshold-scale cardinalities via linear counting).
        let estimated = self.rates_mut().guesses.observe(time, khash, item);
        let (distinct_responses, emitted) = if exact {
            let window = self.config.guess_window;
            let w = self.guess_windows.entry(key).or_default();
            w.responses.push_back((time, creds.response.clone()));
            while let Some(&(t, _)) = w.responses.front() {
                if time.saturating_since(t) > window {
                    w.responses.pop_front();
                } else {
                    break;
                }
            }
            let distinct: std::collections::HashSet<&str> =
                w.responses.iter().map(|(_, r)| r.as_str()).collect();
            let exact_distinct = distinct.len() as u32;
            let emitted = w.emitted;
            if exact_distinct >= threshold && !emitted {
                w.emitted = true;
            }
            self.rates_mut()
                .divergence
                .record_divergence(estimated, exact_distinct);
            (exact_distinct, emitted)
        } else {
            (estimated, self.rates_mut().guess_latch.get(khash))
        };
        if distinct_responses >= threshold && !emitted {
            if !exact {
                self.rates_mut().guess_latch.put(khash, true);
            }
            let username = creds.username;
            self.emit(
                out,
                time,
                EventKind::PasswordGuessing {
                    src,
                    username,
                    distinct_responses,
                },
            );
        }
    }
}

/// The flood-clause count from windowed request / 4xx-error tallies.
///
/// Stateful mode implements the paper's "continuous, alternating SIP
/// requests and 4XX error messages": the alternation count is the lesser
/// of the two tallies. A stateless matcher can only count 4xx sightings.
/// Shared by the exact (per-key deque) and sketch evaluation arms of
/// `check_flood` so both planes apply the identical clause.
pub(crate) fn flood_alternations(requests: u32, errors: u32, stateful: bool) -> u32 {
    if stateful {
        requests.min(errors)
    } else {
        errors
    }
}

fn prune(q: &mut VecDeque<SimTime>, now: SimTime, window: SimDuration) {
    while let Some(&t) = q.front() {
        if now.saturating_since(t) > window {
            q.pop_front();
        } else {
            break;
        }
    }
}
