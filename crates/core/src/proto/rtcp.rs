//! The RTCP protocol module: control-packet classification, companion
//! -port session attribution, and recording RTCP BYEs into the session
//! plane for the RTP module's continuing-media check.

use crate::distill::DistillerConfig;
use crate::footprint::{Footprint, FootprintBody, PacketMeta};
use crate::proto::{AttributeCtx, GenCtx, ProtocolModule};
use crate::trail::{SessionKey, TrailKey};
use bytes::Bytes;
use scidive_rtp::rtcp::{looks_like_rtcp, RtcpPacket};

/// The RTCP module. Owns [`FootprintBody::Rtcp`]; attribution maps the
/// control flow onto its RTP sink's session via the companion-port
/// convention (RTCP rides on the RTP port + 1).
#[derive(Debug, Default)]
pub struct RtcpModule;

impl RtcpModule {
    /// Creates the module.
    pub fn new() -> RtcpModule {
        RtcpModule
    }
}

impl ProtocolModule for RtcpModule {
    fn name(&self) -> &'static str {
        "rtcp"
    }

    fn classify_priority(&self) -> u16 {
        // Before RTP: RTCP packet types collide with RTP's
        // marker+payload-type byte, so check the stricter signature
        // first.
        30
    }

    fn fresh(&self) -> Box<dyn ProtocolModule> {
        Box::new(RtcpModule)
    }

    fn owns(&self, body: &FootprintBody) -> bool {
        matches!(body, FootprintBody::Rtcp(_))
    }

    fn classify(
        &self,
        payload: &Bytes,
        _meta: &PacketMeta,
        _cfg: &DistillerConfig,
    ) -> Option<FootprintBody> {
        if looks_like_rtcp(payload) {
            if let Ok(rtcp) = RtcpPacket::decode(payload) {
                return Some(FootprintBody::Rtcp(rtcp));
            }
        }
        None
    }

    fn attribute(&self, fp: &Footprint, ctx: &mut AttributeCtx<'_>) -> SessionKey {
        // RTCP rides on port+1; map it onto the RTP sink's port.
        match ctx.resolve_media(fp.meta.dst, fp.meta.dst_port.saturating_sub(1)) {
            Some(session) => session,
            // The fallback flow key keeps the observed port.
            None => ctx.synthetic("flow", fp.meta.dst, Some(fp.meta.dst_port)),
        }
    }

    fn generate(&mut self, fp: &Footprint, key: &TrailKey, ctx: &mut GenCtx<'_>) {
        let FootprintBody::Rtcp(rtcp) = &fp.body else {
            return;
        };
        if !ctx.config.cross_protocol {
            return;
        }
        if let RtcpPacket::Bye { ssrcs } = rtcp {
            let time = fp.meta.time;
            let state = ctx.session_entry(&key.session, time);
            for ssrc in ssrcs {
                state.rtcp_byes.entry(*ssrc).or_insert((time, false));
            }
        }
    }
}
