//! The fallback protocol module: unclassifiable UDP, corrupt datagrams
//! and ICMP. It is the attribution catch-all — any footprint body no
//! registered module owns lands here — and generates the media-port
//! garbage events behind the §4.2.4 RTP-attack correlation.

use crate::event::{Event, EventKind};
use crate::footprint::{Footprint, FootprintBody};
use crate::proto::{AttributeCtx, GenCtx, ProtocolModule};
use crate::trail::{SessionKey, TrailKey};

/// The fallback module. Owns [`FootprintBody::UdpOther`],
/// [`FootprintBody::UdpCorrupt`] and [`FootprintBody::Icmp`]; every
/// [`crate::proto::ProtocolSet`] contains exactly one module owning
/// `UdpOther`, appended automatically when nothing registered does.
#[derive(Debug, Default)]
pub struct OtherModule;

impl OtherModule {
    /// Creates the module.
    pub fn new() -> OtherModule {
        OtherModule
    }
}

impl ProtocolModule for OtherModule {
    fn name(&self) -> &'static str {
        "other"
    }

    fn classify_priority(&self) -> u16 {
        // Last; and its classify declines everything anyway — the
        // registry's UdpOther fallback covers it.
        1000
    }

    fn fresh(&self) -> Box<dyn ProtocolModule> {
        Box::new(OtherModule)
    }

    fn owns(&self, body: &FootprintBody) -> bool {
        matches!(
            body,
            FootprintBody::UdpOther { .. }
                | FootprintBody::UdpCorrupt { .. }
                | FootprintBody::Icmp { .. }
        )
    }

    fn attribute(&self, fp: &Footprint, ctx: &mut AttributeCtx<'_>) -> SessionKey {
        // Garbage aimed at a known media sink belongs to that session
        // (that is how the RTP attack is correlated).
        match ctx.resolve_media(fp.meta.dst, fp.meta.dst_port) {
            Some(session) => session,
            None => ctx.synthetic("other", fp.meta.dst, None),
        }
    }

    fn generate(&mut self, fp: &Footprint, key: &TrailKey, ctx: &mut GenCtx<'_>) {
        match &fp.body {
            FootprintBody::UdpOther { .. } | FootprintBody::UdpCorrupt { .. } => {}
            _ => return,
        }
        if !ctx.config.cross_protocol {
            return;
        }
        // Garbage counts only when aimed at a sink some SDP announced.
        if ctx
            .trails
            .session_for_media(fp.meta.dst, fp.meta.dst_port)
            .is_none()
        {
            return;
        }
        let reason = match &fp.body {
            FootprintBody::UdpCorrupt { reason } => reason.as_str().to_string(),
            _ => "undecodable media".to_string(),
        };
        let session_timeout = ctx.config.session_timeout;
        let GenCtx {
            plane,
            out,
            emitted,
            ..
        } = ctx;
        let state = plane.session_entry(&key.session, fp.meta.time, session_timeout);
        // Rate-limit to one event per 10 packets to bound event volume.
        if state.garbage_emitted.is_multiple_of(10) {
            state.garbage_emitted += 1;
            *emitted += 1;
            out.push(Event {
                time: fp.meta.time,
                session: Some(key.session.clone()),
                kind: EventKind::MediaPortGarbage {
                    sink: (fp.meta.dst, fp.meta.dst_port),
                    reason,
                },
            });
        } else {
            state.garbage_emitted += 1;
        }
    }
}
