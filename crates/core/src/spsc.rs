//! Bounded single-producer/single-consumer ring channel.
//!
//! The sharded engine's dispatch topology is strictly SPSC: one
//! dispatcher thread owns the send side of every shard queue, and each
//! shard worker is the sole consumer of its own queue. The general MPMC
//! channel previously used there pays for multi-producer coordination
//! (CAS loops over shared indices) that this topology never needs. This
//! ring keeps one index per side — the producer alone advances `tail`,
//! the consumer alone advances `head` — so the steady-state transfer is
//! a slot write, one atomic store, and one atomic load per side.
//!
//! The crate forbids `unsafe`, so slots are `Mutex<Option<T>>` rather
//! than `UnsafeCell` + manual synchronization. The mutexes are
//! uncontended by construction (the producer only locks a slot it knows
//! is empty, the consumer one it knows is full, and the head/tail
//! protocol keeps them on different slots), so each lock is a single
//! uncontended atomic — and misuse can only deadlock or panic, never
//! corrupt memory.
//!
//! Parking mirrors the classic two-flag scheme: each side publishes a
//! `waiting` flag before re-checking the condition and sleeping on the
//! shared condvar, and the opposite side wakes it only when the flag is
//! set — the uncontended fast path never touches the condvar mutex.
//!
//! The API is the subset of `crossbeam_channel` the shard layer uses
//! ([`bounded`], [`Sender::try_send`], [`Sender::send`],
//! [`Receiver::recv`], disconnect-on-drop), so it drops in without
//! changing batching, linger, or backpressure semantics.

use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};

/// Error from [`Sender::try_send`]: the value comes back to the caller.
pub enum TrySendError<T> {
    /// The ring is full; retry after the consumer drains.
    Full(T),
    /// The receiver is gone; no send can ever succeed again.
    Disconnected(T),
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "Full(..)"),
            TrySendError::Disconnected(_) => write!(f, "Disconnected(..)"),
        }
    }
}

/// Error from [`Sender::send`]: the receiver disconnected.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SendError(..)")
    }
}

/// Error from [`Receiver::recv`]: the channel is empty and the sender
/// disconnected, so no value will ever arrive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

struct Ring<T> {
    /// `capacity` slots; slot `i % capacity` holds sequence-`i` values.
    slots: Box<[Mutex<Option<T>>]>,
    /// Next sequence number the consumer will take. Only the consumer
    /// stores it.
    head: AtomicU64,
    /// Next sequence number the producer will fill. Only the producer
    /// stores it.
    tail: AtomicU64,
    /// Set by the sender's drop.
    tx_dropped: AtomicBool,
    /// Set by the receiver's drop.
    rx_dropped: AtomicBool,
    /// True while the consumer is (about to be) parked on `cond`.
    rx_waiting: AtomicBool,
    /// True while the producer is (about to be) parked on `cond`.
    tx_waiting: AtomicBool,
    /// Parking lot for both sides; guards nothing but the sleep itself.
    /// `std` rather than the workspace `parking_lot` stub because the
    /// stub carries no condvar; poisoning is ignored (the guard holds no
    /// data).
    park: StdMutex<()>,
    cond: Condvar,
}

/// Acquires a `std` mutex, treating poison as still-locked (the guard
/// protects no data, only the sleep).
fn park_lock(park: &StdMutex<()>) -> std::sync::MutexGuard<'_, ()> {
    park.lock().unwrap_or_else(|e| e.into_inner())
}

impl<T> Ring<T> {
    /// Wakes any parked peer. Called after publishing a state change
    /// (slot filled, slot drained, side dropped).
    fn wake(&self, flag: &AtomicBool) {
        if flag.swap(false, Ordering::AcqRel) {
            // The peer either holds `park` (about to sleep) or is
            // already asleep; taking the lock before notifying closes
            // the window where a wake could slip between its re-check
            // and its sleep.
            drop(park_lock(&self.park));
            self.cond.notify_all();
        }
    }
}

/// Producer half of an SPSC ring. Not cloneable: the topology is
/// single-producer by type.
pub struct Sender<T> {
    ring: Arc<Ring<T>>,
}

/// Consumer half of an SPSC ring.
pub struct Receiver<T> {
    ring: Arc<Ring<T>>,
}

/// Creates a bounded SPSC ring holding at most `capacity` in-flight
/// values (clamped to at least 1).
///
/// # Examples
///
/// ```
/// let (tx, rx) = scidive_core::spsc::bounded::<u32>(2);
/// tx.try_send(7).unwrap();
/// assert_eq!(rx.recv(), Ok(7));
/// drop(tx);
/// assert!(rx.recv().is_err());
/// ```
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let capacity = capacity.max(1);
    let ring = Arc::new(Ring {
        slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        head: AtomicU64::new(0),
        tail: AtomicU64::new(0),
        tx_dropped: AtomicBool::new(false),
        rx_dropped: AtomicBool::new(false),
        rx_waiting: AtomicBool::new(false),
        tx_waiting: AtomicBool::new(false),
        park: StdMutex::new(()),
        cond: Condvar::new(),
    });
    (Sender { ring: ring.clone() }, Receiver { ring })
}

impl<T> Sender<T> {
    /// Attempts to enqueue without blocking.
    ///
    /// # Errors
    ///
    /// [`TrySendError::Full`] when `capacity` values are in flight,
    /// [`TrySendError::Disconnected`] when the receiver is gone; the
    /// value is returned either way.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let ring = &*self.ring;
        if ring.rx_dropped.load(Ordering::Acquire) {
            return Err(TrySendError::Disconnected(value));
        }
        let tail = ring.tail.load(Ordering::Relaxed);
        let head = ring.head.load(Ordering::Acquire);
        if tail - head >= ring.slots.len() as u64 {
            return Err(TrySendError::Full(value));
        }
        *ring.slots[(tail % ring.slots.len() as u64) as usize].lock() = Some(value);
        ring.tail.store(tail + 1, Ordering::Release);
        ring.wake(&ring.rx_waiting);
        Ok(())
    }

    /// Enqueues, blocking while the ring is full (the shard layer's
    /// backpressure path).
    ///
    /// # Errors
    ///
    /// [`SendError`] when the receiver disconnected; the value is
    /// returned.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut value = value;
        loop {
            match self.try_send(value) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Disconnected(v)) => return Err(SendError(v)),
                Err(TrySendError::Full(v)) => {
                    value = v;
                    let ring = &*self.ring;
                    let guard = park_lock(&ring.park);
                    ring.tx_waiting.store(true, Ordering::Release);
                    // Re-check under the park lock: a drain (or receiver
                    // drop) that raced the flag store will have taken the
                    // lock in `wake` and be ordered after this check.
                    let tail = ring.tail.load(Ordering::Relaxed);
                    let head = ring.head.load(Ordering::Acquire);
                    let full = tail - head >= ring.slots.len() as u64;
                    if full && !ring.rx_dropped.load(Ordering::Acquire) {
                        drop(ring.cond.wait(guard).unwrap_or_else(|e| e.into_inner()));
                    }
                    ring.tx_waiting.store(false, Ordering::Release);
                }
            }
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        self.ring.tx_dropped.store(true, Ordering::Release);
        self.ring.wake(&self.ring.rx_waiting);
    }
}

impl<T> Receiver<T> {
    /// Dequeues the oldest value, blocking while the ring is empty.
    ///
    /// # Errors
    ///
    /// [`RecvError`] once the ring is empty *and* the sender is gone —
    /// values in flight at sender drop are still delivered first.
    pub fn recv(&self) -> Result<T, RecvError> {
        let ring = &*self.ring;
        loop {
            let head = ring.head.load(Ordering::Relaxed);
            let tail = ring.tail.load(Ordering::Acquire);
            if head < tail {
                let value = ring.slots[(head % ring.slots.len() as u64) as usize]
                    .lock()
                    .take()
                    .expect("slot below tail must be filled");
                ring.head.store(head + 1, Ordering::Release);
                ring.wake(&ring.tx_waiting);
                return Ok(value);
            }
            if ring.tx_dropped.load(Ordering::Acquire) {
                // Re-check emptiness: the sender may have filled a slot
                // between the loads above and its drop.
                if ring.head.load(Ordering::Relaxed) == ring.tail.load(Ordering::Acquire) {
                    return Err(RecvError);
                }
                continue;
            }
            let guard = park_lock(&ring.park);
            ring.rx_waiting.store(true, Ordering::Release);
            let empty = ring.head.load(Ordering::Relaxed) == ring.tail.load(Ordering::Acquire);
            if empty && !ring.tx_dropped.load(Ordering::Acquire) {
                drop(ring.cond.wait(guard).unwrap_or_else(|e| e.into_inner()));
            }
            ring.rx_waiting.store(false, Ordering::Release);
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.ring.rx_dropped.store(true, Ordering::Release);
        self.ring.wake(&self.ring.tx_waiting);
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("spsc::Sender").finish_non_exhaustive()
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("spsc::Receiver").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_within_capacity() {
        let (tx, rx) = bounded::<u32>(4);
        for v in 0..4 {
            tx.try_send(v).unwrap();
        }
        assert!(matches!(tx.try_send(99), Err(TrySendError::Full(99))));
        for v in 0..4 {
            assert_eq!(rx.recv(), Ok(v));
        }
    }

    #[test]
    fn capacity_clamped_to_one() {
        let (tx, rx) = bounded::<u8>(0);
        tx.try_send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        assert_eq!(rx.recv(), Ok(1));
    }

    #[test]
    fn drain_after_sender_drop_then_disconnect() {
        let (tx, rx) = bounded::<u32>(8);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_reports_receiver_gone() {
        let (tx, rx) = bounded::<u32>(2);
        drop(rx);
        assert!(matches!(tx.try_send(5), Err(TrySendError::Disconnected(5))));
        assert!(matches!(tx.send(6), Err(SendError(6))));
    }

    #[test]
    fn blocking_send_resumes_after_drain() {
        let (tx, rx) = bounded::<u64>(2);
        tx.try_send(0).unwrap();
        tx.try_send(1).unwrap();
        let producer = std::thread::spawn(move || {
            // Full: must block until the consumer drains, then finish.
            for v in 2..100u64 {
                tx.send(v).unwrap();
            }
        });
        let mut got = Vec::new();
        while got.len() < 100 {
            got.push(rx.recv().unwrap());
        }
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn cross_thread_stress_preserves_order() {
        for trial in 0..8 {
            let (tx, rx) = bounded::<u64>(1 + trial % 4);
            let n = 5_000u64;
            let producer = std::thread::spawn(move || {
                for v in 0..n {
                    tx.send(v).unwrap();
                }
            });
            let consumer = std::thread::spawn(move || {
                let mut next = 0u64;
                while let Ok(v) = rx.recv() {
                    assert_eq!(v, next);
                    next += 1;
                }
                next
            });
            producer.join().unwrap();
            assert_eq!(consumer.join().unwrap(), n);
        }
    }

    #[test]
    fn receiver_drop_unblocks_full_sender() {
        let (tx, rx) = bounded::<u64>(1);
        tx.try_send(0).unwrap();
        let producer = std::thread::spawn(move || tx.send(1));
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(rx);
        assert!(producer.join().unwrap().is_err());
    }
}
