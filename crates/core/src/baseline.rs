//! A Snort-like stateless baseline matcher (paper §5 comparison).
//!
//! "One potential problem of this approach is that if the target
//! pattern is fragmented across multiple packets, then the IDS will
//! miss it. ... no reassembly functionality is available for grouping
//! UDP packets that belong to a VoIP session. Second, Snort's detection
//! is session unaware."
//!
//! This matcher deliberately has exactly those limitations: per-packet
//! byte patterns, no IP reassembly, and only *global* (session-blind)
//! rate thresholds. The §3.3 ablation experiment runs it against the
//! same tap to reproduce the paper's false-alarm/missed-alarm argument.

use crate::alert::{Alert, Severity};
use scidive_netsim::packet::IpPacket;
use scidive_netsim::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// A stateless signature.
#[derive(Debug, Clone)]
pub enum Signature {
    /// Alarm whenever `pattern` appears in a single packet's payload.
    Payload {
        /// Rule id.
        id: String,
        /// The byte pattern.
        pattern: Vec<u8>,
        /// Severity of the alarm.
        severity: Severity,
    },
    /// Alarm when at least `count` packets whose payload starts with
    /// `prefix` are seen within `window` — globally, with no notion of
    /// session or source.
    RateThreshold {
        /// Rule id.
        id: String,
        /// The start-of-payload pattern (e.g. `SIP/2.0 4` for 4xx).
        prefix: Vec<u8>,
        /// Packets required.
        count: usize,
        /// The window.
        window: SimDuration,
    },
}

#[derive(Debug, Default)]
struct RateState {
    hits: VecDeque<SimTime>,
    armed: bool,
}

/// The baseline matcher.
#[derive(Debug)]
pub struct SnortLike {
    signatures: Vec<Signature>,
    rate_states: Vec<RateState>,
    alerts: Vec<Alert>,
    frames: u64,
}

impl SnortLike {
    /// Creates a matcher with the given signatures.
    pub fn new(signatures: Vec<Signature>) -> SnortLike {
        let rate_states = signatures.iter().map(|_| RateState::default()).collect();
        SnortLike {
            signatures,
            rate_states,
            alerts: Vec::new(),
            frames: 0,
        }
    }

    /// The VoIP ruleset a Snort operator would plausibly write per §3.3:
    /// alarm on bursts of SIP 4xx responses and REGISTER requests.
    pub fn voip_ruleset(threshold: usize, window: SimDuration) -> SnortLike {
        SnortLike::new(vec![
            Signature::RateThreshold {
                id: "snort-4xx-burst".to_string(),
                prefix: b"SIP/2.0 4".to_vec(),
                count: threshold,
                window,
            },
            Signature::RateThreshold {
                id: "snort-register-burst".to_string(),
                prefix: b"REGISTER ".to_vec(),
                count: threshold,
                window,
            },
        ])
    }

    /// All alerts raised.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Frames processed.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Feeds one frame. Fragments are matched as-is: no reassembly.
    pub fn on_frame(&mut self, time: SimTime, pkt: &IpPacket) -> Vec<Alert> {
        self.frames += 1;
        // A stateless matcher sees the raw transport bytes; for
        // fragments that is whatever slice happened to arrive.
        let payload: &[u8] = if pkt.frag.is_fragment() {
            &pkt.payload
        } else {
            match pkt.decode_udp() {
                Ok(udp) => {
                    // Borrowing workaround: match on a copy below.
                    return self.match_payload(time, &udp.payload);
                }
                Err(_) => &pkt.payload,
            }
        };
        let owned = payload.to_vec();
        self.match_payload(time, &owned)
    }

    fn match_payload(&mut self, time: SimTime, payload: &[u8]) -> Vec<Alert> {
        let mut new_alerts = Vec::new();
        for (idx, sig) in self.signatures.iter().enumerate() {
            match sig {
                Signature::Payload {
                    id,
                    pattern,
                    severity,
                } => {
                    if !pattern.is_empty() && contains(payload, pattern) {
                        new_alerts.push(Alert::new(
                            id.clone(),
                            *severity,
                            time,
                            None,
                            format!("pattern {:?} matched", String::from_utf8_lossy(pattern)),
                        ));
                    }
                }
                Signature::RateThreshold {
                    id,
                    prefix,
                    count,
                    window,
                } => {
                    if payload.starts_with(prefix) {
                        let state = &mut self.rate_states[idx];
                        state.hits.push_back(time);
                        while let Some(&t) = state.hits.front() {
                            if time.saturating_since(t) > *window {
                                state.hits.pop_front();
                            } else {
                                break;
                            }
                        }
                        if state.hits.len() >= *count && !state.armed {
                            state.armed = true;
                            new_alerts.push(Alert::new(
                                id.clone(),
                                Severity::Critical,
                                time,
                                None,
                                format!("{} packets within window", state.hits.len()),
                            ));
                        } else if state.hits.len() < count / 2 {
                            state.armed = false;
                        }
                    }
                }
            }
        }
        self.alerts.extend(new_alerts.iter().cloned());
        new_alerts
    }
}

fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    haystack
        .windows(needle.len())
        .any(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scidive_netsim::frag::fragment;
    use std::net::Ipv4Addr;

    fn frame(payload: &[u8]) -> IpPacket {
        IpPacket::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            5060,
            Ipv4Addr::new(10, 0, 0, 2),
            5060,
            payload.to_vec(),
        )
    }

    #[test]
    fn payload_pattern_matches() {
        let mut ids = SnortLike::new(vec![Signature::Payload {
            id: "evil".to_string(),
            pattern: b"EVILSTRING".to_vec(),
            severity: Severity::Critical,
        }]);
        assert!(ids
            .on_frame(SimTime::ZERO, &frame(b"hello EVILSTRING there"))
            .len()
            == 1);
        assert!(ids.on_frame(SimTime::ZERO, &frame(b"benign")).is_empty());
    }

    #[test]
    fn fragmentation_defeats_pattern_matching() {
        // The pattern spans a fragment boundary: the stateless matcher
        // misses it. (SCIDIVE's Distiller reassembles and would not.)
        // Fragments split at 256 transport bytes (248 payload bytes after
        // the 8-byte UDP header); starting the pattern at payload offset
        // 243 puts "EVILS" in fragment 1 and "TRING" in fragment 2.
        let mut payload = vec![b'x'; 243];
        payload.extend_from_slice(b"EVILSTRING");
        payload.extend(vec![b'y'; 250]);
        let pkt = frame(&payload).with_id(9);
        let frags = fragment(&pkt, 256);
        assert!(frags.len() >= 2);
        let mut ids = SnortLike::new(vec![Signature::Payload {
            id: "evil".to_string(),
            pattern: b"EVILSTRING".to_vec(),
            severity: Severity::Critical,
        }]);
        for f in &frags {
            ids.on_frame(SimTime::ZERO, f);
        }
        assert!(
            ids.alerts().is_empty(),
            "stateless matcher must miss the split pattern"
        );
        // Sanity: unfragmented, it fires.
        assert_eq!(ids.on_frame(SimTime::ZERO, &pkt).len(), 1);
    }

    #[test]
    fn rate_threshold_fires_globally() {
        let mut ids = SnortLike::voip_ruleset(3, SimDuration::from_secs(10));
        let resp = b"SIP/2.0 401 Unauthorized\r\n\r\n";
        assert!(ids.on_frame(SimTime::from_millis(0), &frame(resp)).is_empty());
        assert!(ids.on_frame(SimTime::from_millis(10), &frame(resp)).is_empty());
        let alerts = ids.on_frame(SimTime::from_millis(20), &frame(resp));
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "snort-4xx-burst");
        // Session-blindness: those three 401s could be three different
        // benign clients — the matcher cannot tell.
    }

    #[test]
    fn rate_threshold_respects_window() {
        let mut ids = SnortLike::voip_ruleset(3, SimDuration::from_millis(50));
        let resp = b"SIP/2.0 404 Not Found\r\n\r\n";
        ids.on_frame(SimTime::from_millis(0), &frame(resp));
        ids.on_frame(SimTime::from_millis(100), &frame(resp));
        let alerts = ids.on_frame(SimTime::from_millis(200), &frame(resp));
        assert!(alerts.is_empty(), "hits spread beyond the window");
    }

    #[test]
    fn register_burst_detected() {
        let mut ids = SnortLike::voip_ruleset(3, SimDuration::from_secs(10));
        let reg = b"REGISTER sip:lab SIP/2.0\r\n\r\n";
        ids.on_frame(SimTime::from_millis(0), &frame(reg));
        ids.on_frame(SimTime::from_millis(1), &frame(reg));
        let alerts = ids.on_frame(SimTime::from_millis(2), &frame(reg));
        assert_eq!(alerts[0].rule, "snort-register-burst");
    }
}
