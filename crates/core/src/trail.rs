//! Trails and the trail store (paper §3.1, §3.2).
//!
//! "Footprints that belong to the same session are typically grouped
//! into a Trail. ... cross-protocol detection is achieved through
//! keeping multiple trails for each session, one for each protocol."
//!
//! Session keying: SIP footprints key by Call-ID; accounting
//! transactions carry the Call-ID directly; RTP/RTCP flows are linked to
//! the SIP session whose SDP announced their destination. The keying
//! rules and the media correlation index itself live in
//! [`crate::routing`] (they are shared with the sharded dispatcher);
//! the store here applies them to file footprints into trails.

use crate::footprint::{Footprint, TrailProto};
use crate::routing::MediaIndex;
use scidive_netsim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Identifies a logical session (usually a SIP Call-ID).
///
/// The key text lives behind a shared `Arc<str>`, so cloning — which the
/// hot path does for every footprint routed, filed, and alerted on — is
/// a reference-count bump, not a string copy. The stable FNV-1a hash
/// used for shard assignment and the synthetic-key flag are computed
/// once at construction and memoized, so shard assignment never rehashes.
///
/// Equality, ordering, and `Hash` are by string content (with a
/// pointer-equality fast path), so interned and freshly built keys with
/// the same text behave identically in maps and comparisons.
#[derive(Debug, Clone)]
pub struct SessionKey {
    id: Arc<str>,
    /// Memoized stable FNV-1a hash of `id` (see
    /// [`crate::routing::stable_session_hash`]).
    fnv: u64,
    /// Memoized "is this a synthetic key" prefix check (see
    /// [`crate::routing::is_synthetic`]).
    synthetic: bool,
}

impl SessionKey {
    /// Creates a key, computing the memoized hash and synthetic flag.
    pub fn new(id: impl AsRef<str>) -> SessionKey {
        SessionKey::from_arc(Arc::from(id.as_ref()))
    }

    /// Creates a key that is flagged synthetic regardless of its text.
    /// Protocol modules manufacturing fallback keys outside the
    /// built-in synthetic prefixes use this so overflow accounting and
    /// shard routing still recognize the key as unattributed.
    pub fn synthetic(id: impl AsRef<str>) -> SessionKey {
        let mut key = SessionKey::new(id);
        key.synthetic = true;
        key
    }

    /// Builds a key around an already-shared string (no copy).
    pub fn from_arc(id: Arc<str>) -> SessionKey {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut fnv = FNV_OFFSET;
        for byte in id.as_bytes() {
            fnv ^= u64::from(*byte);
            fnv = fnv.wrapping_mul(FNV_PRIME);
        }
        let synthetic = id.starts_with("flow-")
            || id.starts_with("other-")
            || id.starts_with("sip-anon-")
            || id.starts_with("sip-malformed-");
        SessionKey { id, fnv, synthetic }
    }

    /// The key text.
    pub fn as_str(&self) -> &str {
        &self.id
    }

    /// The memoized stable FNV-1a hash (platform- and run-independent).
    pub fn stable_hash(&self) -> u64 {
        self.fnv
    }

    /// Whether the key is synthetic: manufactured for traffic that could
    /// not be correlated to any signalled session.
    pub fn is_synthetic(&self) -> bool {
        self.synthetic
    }
}

impl PartialEq for SessionKey {
    fn eq(&self, other: &SessionKey) -> bool {
        // Interned keys share the Arc, so most comparisons are a
        // pointer check; the hash filters almost all of the rest.
        Arc::ptr_eq(&self.id, &other.id) || (self.fnv == other.fnv && self.id == other.id)
    }
}

impl Eq for SessionKey {}

impl PartialOrd for SessionKey {
    fn partial_cmp(&self, other: &SessionKey) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SessionKey {
    fn cmp(&self, other: &SessionKey) -> std::cmp::Ordering {
        self.as_str().cmp(other.as_str())
    }
}

impl std::hash::Hash for SessionKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Must match `str`'s hashing so `Borrow<str>` map lookups work.
        self.as_str().hash(state);
    }
}

impl std::borrow::Borrow<str> for SessionKey {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl Serialize for SessionKey {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.as_str().to_string())
    }
}

impl Deserialize for SessionKey {
    fn from_value(v: &serde::Value) -> Result<SessionKey, serde::DeError> {
        match v {
            serde::Value::Str(s) => Ok(SessionKey::new(s)),
            other => Err(serde::DeError::expected("string", other)),
        }
    }
}

impl fmt::Display for SessionKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Identifies one trail: a session × protocol pair.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TrailKey {
    /// The owning session.
    pub session: SessionKey,
    /// The protocol this trail collects.
    pub proto: TrailProto,
}

/// One trail: the time-ordered footprints of a session on one protocol.
#[derive(Debug, Clone)]
pub struct Trail {
    key: TrailKey,
    footprints: VecDeque<Arc<Footprint>>,
    created: SimTime,
    last_active: SimTime,
    /// Footprints evicted due to the per-trail cap.
    evicted: u64,
}

impl Trail {
    fn new(key: TrailKey, now: SimTime) -> Trail {
        Trail {
            key,
            footprints: VecDeque::new(),
            created: now,
            last_active: now,
            evicted: 0,
        }
    }

    /// The trail's key.
    pub fn key(&self) -> &TrailKey {
        &self.key
    }

    /// Footprints currently retained, oldest first.
    pub fn footprints(
        &self,
    ) -> impl DoubleEndedIterator<Item = &Arc<Footprint>> + ExactSizeIterator {
        self.footprints.iter()
    }

    /// Number of retained footprints.
    pub fn len(&self) -> usize {
        self.footprints.len()
    }

    /// Whether the trail holds no footprints.
    pub fn is_empty(&self) -> bool {
        self.footprints.is_empty()
    }

    /// When the trail was created.
    pub fn created(&self) -> SimTime {
        self.created
    }

    /// Last insertion time.
    pub fn last_active(&self) -> SimTime {
        self.last_active
    }

    /// Footprints dropped to honour the retention cap.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }
}

/// Trail store configuration: the memory bounds that make stateful
/// detection "applicable in high throughput systems" (paper §3.3).
#[derive(Debug, Clone)]
pub struct TrailStoreConfig {
    /// Maximum footprints retained per trail.
    pub max_footprints_per_trail: usize,
    /// Trails idle longer than this are dropped on the next insert.
    pub idle_timeout: SimDuration,
}

impl Default for TrailStoreConfig {
    fn default() -> TrailStoreConfig {
        TrailStoreConfig {
            max_footprints_per_trail: 4096,
            idle_timeout: SimDuration::from_secs(600),
        }
    }
}

/// Counters for the trail store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrailStats {
    /// Footprints inserted.
    pub inserted: u64,
    /// Footprints evicted by the per-trail cap.
    pub evicted: u64,
    /// Whole trails expired by the idle timeout.
    pub expired_trails: u64,
}

/// The trail store: all live trails plus the cross-protocol correlation
/// indices.
#[derive(Debug, Default)]
pub struct TrailStore {
    config: TrailStoreConfig,
    trails: HashMap<TrailKey, Trail>,
    /// (media sink addr, port) → owning session, learned from SDP.
    media_index: MediaIndex,
    stats: TrailStats,
    /// Recycled footprint slots: `Arc`s whose footprint left its trail
    /// with no other holder. [`TrailStore::insert`] overwrites a slot in
    /// place instead of allocating a fresh `Arc` — the steady-state
    /// retain/evict cycle then runs with zero allocator traffic per
    /// frame. Bounded by [`FOOTPRINT_POOL_CAP`].
    free: Vec<Arc<Footprint>>,
}

/// Upper bound on pooled footprint slots. Enough to keep the
/// evict-one-insert-one steady state allocation-free; beyond it, retired
/// slots go back to the allocator so a burst can't pin memory.
const FOOTPRINT_POOL_CAP: usize = 256;

impl TrailStore {
    /// Creates a store with the default protocol registry.
    pub fn new(config: TrailStoreConfig) -> TrailStore {
        TrailStore::with_protocols(config, crate::proto::ProtocolSet::default())
    }

    /// Creates a store whose session attribution runs through the given
    /// protocol registry.
    pub fn with_protocols(
        config: TrailStoreConfig,
        protocols: crate::proto::ProtocolSet,
    ) -> TrailStore {
        let media_index = MediaIndex::with_protocols(config.idle_timeout, protocols);
        TrailStore {
            config,
            trails: HashMap::new(),
            media_index,
            stats: TrailStats::default(),
            free: Vec::new(),
        }
    }

    /// Current counters.
    pub fn stats(&self) -> TrailStats {
        self.stats
    }

    /// Number of live trails.
    pub fn trail_count(&self) -> usize {
        self.trails.len()
    }

    /// Total retained footprints across all trails.
    pub fn footprint_count(&self) -> usize {
        self.trails.values().map(Trail::len).sum()
    }

    /// The session owning a media sink, if announced by any SDP seen.
    pub fn session_for_media(&self, addr: Ipv4Addr, port: u16) -> Option<&SessionKey> {
        self.media_index.resolve(addr, port)
    }

    /// Read access to the media correlation index.
    pub fn media_index(&self) -> &MediaIndex {
        &self.media_index
    }

    /// A trail by key, for the "crude information directly from the
    /// Trails" access path the paper describes for rules.
    pub fn trail(&self, key: &TrailKey) -> Option<&Trail> {
        self.trails.get(key)
    }

    /// All trails of one session.
    pub fn session_trails(&self, session: &SessionKey) -> Vec<&Trail> {
        let mut trails: Vec<&Trail> = self
            .trails
            .values()
            .filter(|t| &t.key.session == session)
            .collect();
        trails.sort_by_key(|t| t.key.proto);
        trails
    }

    /// Inserts a footprint, assigning it to a session trail. Returns the
    /// shared footprint and the trail key it landed in.
    pub fn insert(&mut self, fp: Footprint) -> (Arc<Footprint>, TrailKey) {
        self.expire(fp.meta.time);
        let session = self.session_of(&fp);
        self.learn_media(&fp, &session);
        let key = TrailKey {
            session,
            proto: fp.proto(),
        };
        let now = fp.meta.time;
        // Reuse a recycled slot when one is available: overwriting the
        // unique `Arc` in place drops the old footprint without touching
        // the allocator.
        let fp = match self.free.pop() {
            Some(mut slot) => {
                *Arc::get_mut(&mut slot).expect("pooled slots are unique") = fp;
                slot
            }
            None => Arc::new(fp),
        };
        let trail = self
            .trails
            .entry(key.clone())
            .or_insert_with(|| Trail::new(key.clone(), now));
        trail.footprints.push_back(fp.clone());
        trail.last_active = now;
        self.stats.inserted += 1;
        if trail.footprints.len() > self.config.max_footprints_per_trail {
            let evicted = trail.footprints.pop_front();
            trail.evicted += 1;
            self.stats.evicted += 1;
            if let Some(old) = evicted {
                self.recycle(old);
            }
        }
        (fp, key)
    }

    /// Returns a footprint slot to the pool if nothing else still holds
    /// it (rules and alerts may retain `Arc` clones — those slots are
    /// simply dropped) and the pool has room.
    fn recycle(&mut self, slot: Arc<Footprint>) {
        if self.free.len() < FOOTPRINT_POOL_CAP
            && Arc::strong_count(&slot) == 1
            && Arc::weak_count(&slot) == 0
        {
            self.free.push(slot);
        }
    }

    /// Derives the session a footprint belongs to (the canonical rule
    /// shared with the dispatcher lives on [`MediaIndex`]).
    fn session_of(&mut self, fp: &Footprint) -> SessionKey {
        self.media_index.session_for(fp)
    }

    /// Learns media sinks from SDP bodies in SIP messages.
    fn learn_media(&mut self, fp: &Footprint, session: &SessionKey) {
        self.media_index.learn_from(fp, session);
    }

    fn expire(&mut self, now: SimTime) {
        let timeout = self.config.idle_timeout;
        let mut expired = 0u64;
        let free = &mut self.free;
        self.trails.retain(|_, t| {
            if now.saturating_since(t.last_active) < timeout {
                return true;
            }
            expired += 1;
            // Recycle the dying trail's unique footprint slots (same
            // policy as `recycle`, inlined for the disjoint borrow).
            while let Some(slot) = t.footprints.pop_front() {
                if free.len() < FOOTPRINT_POOL_CAP
                    && Arc::strong_count(&slot) == 1
                    && Arc::weak_count(&slot) == 0
                {
                    free.push(slot);
                }
            }
            false
        });
        self.stats.expired_trails += expired;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::footprint::{FootprintBody, PacketMeta};
    use scidive_rtp::packet::RtpHeader;
    use scidive_sip::sdp::SessionDescription;
    use scidive_sip::header::{CSeq, NameAddr, Via};
    use scidive_sip::method::Method;
    use scidive_sip::msg::RequestBuilder;

    fn meta(t: u64, src: [u8; 4], sport: u16, dst: [u8; 4], dport: u16) -> PacketMeta {
        PacketMeta {
            time: SimTime::from_millis(t),
            src: src.into(),
            src_port: sport,
            dst: dst.into(),
            dst_port: dport,
        }
    }

    fn invite_with_sdp(call_id: &str, media_ip: [u8; 4], port: u16) -> Footprint {
        let sdp = SessionDescription::audio_offer("alice", media_ip.into(), port);
        let mut b = RequestBuilder::new(Method::Invite, "sip:bob@lab".parse().unwrap());
        b.from(NameAddr::new("sip:alice@lab".parse().unwrap()).with_tag("a"))
            .to(NameAddr::new("sip:bob@lab".parse().unwrap()))
            .call_id(call_id)
            .cseq(CSeq::new(1, Method::Invite))
            .via(Via::udp("10.0.0.2:5060", "z9hG4bK-t"))
            .body("application/sdp", sdp.to_string());
        Footprint {
            meta: meta(0, [10, 0, 0, 2], 5060, [10, 0, 0, 1], 5060),
            body: FootprintBody::Sip(b.build().into()),
        }
    }

    fn rtp_to(dst: [u8; 4], port: u16, t: u64) -> Footprint {
        Footprint {
            meta: meta(t, [10, 0, 0, 3], 9000, dst, port),
            body: FootprintBody::Rtp {
                header: RtpHeader::new(0, 1, 0, 7),
                payload_len: 160,
            },
        }
    }

    #[test]
    fn sip_groups_by_call_id() {
        let mut store = TrailStore::new(TrailStoreConfig::default());
        let (_, k1) = store.insert(invite_with_sdp("c1", [10, 0, 0, 2], 8000));
        let (_, k2) = store.insert(invite_with_sdp("c1", [10, 0, 0, 2], 8000));
        let (_, k3) = store.insert(invite_with_sdp("c2", [10, 0, 0, 2], 8100));
        assert_eq!(k1, k2);
        assert_ne!(k1, k3);
        assert_eq!(store.trail(&k1).unwrap().len(), 2);
        assert_eq!(store.trail_count(), 2);
    }

    #[test]
    fn rtp_correlates_to_sip_session_via_sdp() {
        let mut store = TrailStore::new(TrailStoreConfig::default());
        store.insert(invite_with_sdp("c1", [10, 0, 0, 2], 8000));
        let (_, key) = store.insert(rtp_to([10, 0, 0, 2], 8000, 100));
        assert_eq!(key.session, SessionKey::new("c1"));
        assert_eq!(key.proto, TrailProto::Rtp);
        // The session now has two trails: SIP + RTP.
        let trails = store.session_trails(&SessionKey::new("c1"));
        assert_eq!(trails.len(), 2);
        assert_eq!(trails[0].key().proto, TrailProto::Sip);
        assert_eq!(trails[1].key().proto, TrailProto::Rtp);
    }

    #[test]
    fn unknown_rtp_gets_synthetic_flow_session() {
        let mut store = TrailStore::new(TrailStoreConfig::default());
        let (_, key) = store.insert(rtp_to([10, 0, 0, 9], 1234, 0));
        assert_eq!(key.session, SessionKey::new("flow-10.0.0.9:1234"));
    }

    #[test]
    fn acct_joins_session_by_call_id() {
        let mut store = TrailStore::new(TrailStoreConfig::default());
        store.insert(invite_with_sdp("c1", [10, 0, 0, 2], 8000));
        let acct = Footprint {
            meta: meta(50, [10, 0, 0, 1], 2427, [10, 0, 0, 4], 2427),
            body: FootprintBody::Acct(
                "ACCT START alice@lab bob@lab c1".parse().unwrap(),
            ),
        };
        let (_, key) = store.insert(acct);
        assert_eq!(key.session, SessionKey::new("c1"));
        assert_eq!(key.proto, TrailProto::Acct);
        assert_eq!(store.session_trails(&SessionKey::new("c1")).len(), 2);
    }

    #[test]
    fn garbage_to_media_sink_joins_session() {
        let mut store = TrailStore::new(TrailStoreConfig::default());
        store.insert(invite_with_sdp("c1", [10, 0, 0, 2], 8000));
        let garbage = Footprint {
            meta: meta(60, [10, 0, 0, 66], 4444, [10, 0, 0, 2], 8000),
            body: FootprintBody::UdpOther { payload_len: 172 },
        };
        let (_, key) = store.insert(garbage);
        assert_eq!(key.session, SessionKey::new("c1"));
        assert_eq!(key.proto, TrailProto::Other);
    }

    #[test]
    fn per_trail_cap_evicts_oldest() {
        let mut store = TrailStore::new(TrailStoreConfig {
            max_footprints_per_trail: 3,
            ..TrailStoreConfig::default()
        });
        for t in 0..5 {
            store.insert(rtp_to([10, 0, 0, 9], 1234, t));
        }
        let key = TrailKey {
            session: SessionKey::new("flow-10.0.0.9:1234"),
            proto: TrailProto::Rtp,
        };
        let trail = store.trail(&key).unwrap();
        assert_eq!(trail.len(), 3);
        assert_eq!(trail.evicted(), 2);
        assert_eq!(store.stats().evicted, 2);
        // Oldest retained is t=2.
        assert_eq!(
            trail.footprints().next().unwrap().meta.time,
            SimTime::from_millis(2)
        );
    }

    #[test]
    fn idle_trails_expire() {
        let mut store = TrailStore::new(TrailStoreConfig {
            idle_timeout: SimDuration::from_secs(10),
            ..TrailStoreConfig::default()
        });
        store.insert(rtp_to([10, 0, 0, 9], 1234, 0));
        assert_eq!(store.trail_count(), 1);
        // A much later insert triggers expiry of the idle trail.
        store.insert(rtp_to([10, 0, 0, 9], 5678, 60_000));
        assert_eq!(store.trail_count(), 1);
        assert_eq!(store.stats().expired_trails, 1);
    }

    #[test]
    fn media_port_reuse_lands_in_the_new_session() {
        // Regression: call-1 negotiates a media sink, ends, and goes
        // idle; call-2 later announces the *same* (addr, port). The
        // second call's RTP must land in call-2's trail — before the
        // index lifecycle fix it resolved to the dead call-1 forever.
        let mut store = TrailStore::new(TrailStoreConfig::default());
        store.insert(invite_with_sdp("call-1", [10, 0, 0, 2], 8000));
        let (_, k1) = store.insert(rtp_to([10, 0, 0, 2], 8000, 10));
        assert_eq!(k1.session, SessionKey::new("call-1"));

        // Second call, well within the idle window, reusing the port:
        // the newest SDP announcement overwrites the mapping at once.
        let mut second = invite_with_sdp("call-2", [10, 0, 0, 2], 8000);
        second.meta.time = SimTime::from_millis(5_000);
        store.insert(second);
        let (_, k2) = store.insert(rtp_to([10, 0, 0, 2], 8000, 5_100));
        assert_eq!(k2.session, SessionKey::new("call-2"));
        let call2_trails = store.session_trails(&SessionKey::new("call-2"));
        assert_eq!(call2_trails.len(), 2, "SIP + RTP trails for call-2");
        assert_eq!(call2_trails[1].key().proto, TrailProto::Rtp);
        assert_eq!(call2_trails[1].len(), 1);
        // call-1's RTP trail did not grow.
        let k1_trail = store.trail(&k1).unwrap();
        assert_eq!(k1_trail.len(), 1);
    }

    #[test]
    fn rtcp_maps_to_rtp_session() {
        let mut store = TrailStore::new(TrailStoreConfig::default());
        store.insert(invite_with_sdp("c1", [10, 0, 0, 2], 8000));
        let rtcp = Footprint {
            meta: meta(70, [10, 0, 0, 3], 9001, [10, 0, 0, 2], 8001),
            body: FootprintBody::Rtcp(scidive_rtp::rtcp::RtcpPacket::Bye { ssrcs: vec![1] }),
        };
        let (_, key) = store.insert(rtcp);
        assert_eq!(key.session, SessionKey::new("c1"));
        assert_eq!(key.proto, TrailProto::Rtcp);
    }
}
