//! Constant-memory rate primitives for flood-style detections.
//!
//! SCIDIVE's §3.3 detections (REGISTER-flood DoS, password guessing)
//! and the SPIT-style rapid-connection pattern are fundamentally *rate*
//! questions: how many events keyed by some identity fell inside a
//! sliding window, and how many of them were distinct. Answering those
//! questions exactly needs one timestamp queue per key — memory linear
//! in the number of active sources, the opposite of what million-dialog
//! capacity demands. This module provides the sketch counterparts that
//! answer the same questions in memory **independent of the key
//! population**:
//!
//! * [`CountMinSketch`] — point-frequency estimation with conservative
//!   update. Never undercounts; overcounts by at most `ε·N` with
//!   probability `1 − δ` when sized via [`CountMinSketch::with_error`].
//! * [`WindowedSketch`] — a ring of `B` count-min buckets quantising a
//!   sliding window. The live buckets always cover at least the full
//!   window, so it never undercounts the exact windowed count; it may
//!   overcount by events up to one bucket width (`⌈W/(B−1)⌉`) older
//!   than the window, plus the sketch collision error.
//! * [`WindowedDistinct`] — an HLL-style distinct estimator per key
//!   slot, windowed by the same bucket ring. Small cardinalities use
//!   linear counting, which is exact while registers stay collision
//!   free — the regime the guess-threshold crossings live in.
//! * [`LatchSet`] — a fixed bitset replacing per-key `emitted` flags.
//!
//! Everything is deterministic: hashing is seeded ([`RateConfig::seed`]),
//! time is virtual ([`SimTime`]), and no structure ever consults a wall
//! clock — so sketch-mode runs replay byte-identically and the
//! differential suite (`tests/rate_equivalence.rs`) can pin the
//! exact-vs-sketch alert streams against each other.
//!
//! Rules reach these primitives through [`crate::rules::RuleCtx::rates`]
//! (a [`RateHub`] of named trackers); the identity plane
//! ([`crate::event::IdentityPlane`]) embeds them directly behind the
//! [`crate::engine::ScidiveConfig::exact_rate_state`] reference switch.

pub mod cms;
pub mod distinct;
pub mod fold;
pub mod window;

pub use cms::CountMinSketch;
pub use distinct::WindowedDistinct;
pub use fold::{FoldConfig, FoldStats, GlobalRatePlane};
pub use window::WindowedSketch;

use scidive_netsim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// Why a cross-tracker merge was refused. Surfaced (rather than
/// panicking or debug-asserting) so the cross-shard fold can skip a
/// misconfigured shard's delta — bumping the `rate_merge_rejected`
/// counter — instead of wedging the whole pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateMergeError {
    /// Structural dimensions differ (grid, ring size, window, bits).
    ShapeMismatch {
        /// Which tracker kind refused.
        tracker: &'static str,
    },
    /// Same shape, but the hash seeds differ — the cells don't line up.
    SeedMismatch {
        /// Which tracker kind refused.
        tracker: &'static str,
    },
}

impl std::fmt::Display for RateMergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RateMergeError::ShapeMismatch { tracker } => write!(f, "{tracker} shape mismatch"),
            RateMergeError::SeedMismatch { tracker } => write!(f, "{tracker} seed mismatch"),
        }
    }
}

impl std::error::Error for RateMergeError {}

/// The default deterministic hash seed for all rate trackers.
pub const DEFAULT_RATE_SEED: u64 = 0x5c1d_0d1f_f00d_5eed;

/// Finalising mixer (splitmix64): cheap, deterministic, and good enough
/// avalanche for sketch indexing.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Seeded FNV-1a over byte parts with a part separator (so
/// `["ab","c"]` and `["a","bc"]` hash differently), finished through
/// [`splitmix64`]. The one way keys (addresses, AORs, digest responses)
/// become the `u64`s every sketch in this module consumes.
pub fn hash_parts(seed: u64, parts: &[&[u8]]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for part in parts {
        for &b in *part {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= 0xff;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    splitmix64(h)
}

/// Dimensioning for the sketch structures, part of
/// [`crate::engine::ScidiveConfig`]. The defaults hold every tracker a
/// default engine creates under ~1 MiB total — constant, regardless of
/// how many sources or dialogs the traffic carries.
#[derive(Debug, Clone)]
pub struct RateConfig {
    /// Hash seed shared by every tracker (per-tracker seeds are derived
    /// from it and the tracker name).
    pub seed: u64,
    /// Count-min sketch width (counters per row).
    pub counter_width: usize,
    /// Count-min sketch depth (rows).
    pub counter_depth: usize,
    /// Ring buckets per sliding window (`B`); the window is quantised
    /// to `⌈W/(B−1)⌉`-wide epochs so the live ring always covers it.
    pub window_buckets: usize,
    /// Key slots per distinct estimator (keys hashing to the same slot
    /// pool their distinct counts — an overestimate, never an
    /// undercount).
    pub distinct_slots: usize,
    /// HLL registers per distinct slot (rounded up to a power of two).
    pub distinct_registers: usize,
    /// Ring buckets per distinct estimator window.
    pub distinct_buckets: usize,
    /// Bits per latch set (rounded up to a power of two).
    pub latch_bits: usize,
}

impl Default for RateConfig {
    fn default() -> RateConfig {
        RateConfig {
            seed: DEFAULT_RATE_SEED,
            counter_width: 1024,
            counter_depth: 4,
            window_buckets: 8,
            distinct_slots: 32,
            distinct_registers: 1024,
            distinct_buckets: 6,
            latch_bits: 8192,
        }
    }
}

impl RateConfig {
    /// The derived seed for a named tracker.
    pub fn tracker_seed(&self, name: &str) -> u64 {
        splitmix64(self.seed ^ hash_parts(self.seed, &[name.as_bytes()]))
    }
}

/// Telemetry snapshot of the rate trackers: how many exist, how many
/// bytes they pin, and — in exact mode, where the sketches shadow the
/// exact state — how far the estimates diverged from the truth.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RateStats {
    /// Live tracker structures (sketches, estimators, latch sets).
    pub trackers: u64,
    /// Total bytes pinned by tracker state.
    pub bytes: u64,
    /// Estimate-vs-exact comparisons recorded (shadow mode only).
    pub divergence_samples: u64,
    /// Sum of absolute estimate-vs-exact differences.
    pub divergence_sum: u64,
    /// Largest single estimate-vs-exact difference.
    pub divergence_max: u64,
}

impl RateStats {
    /// Folds another snapshot into this one (shard merge): sizes and
    /// sums add, the divergence maximum takes the max.
    pub fn absorb(&mut self, other: RateStats) {
        self.trackers += other.trackers;
        self.bytes += other.bytes;
        self.divergence_samples += other.divergence_samples;
        self.divergence_sum += other.divergence_sum;
        self.divergence_max = self.divergence_max.max(other.divergence_max);
    }

    /// Records one estimate-vs-exact comparison.
    pub fn record_divergence(&mut self, estimated: u32, exact: u32) {
        let d = u64::from(estimated.abs_diff(exact));
        self.divergence_samples += 1;
        self.divergence_sum += d;
        self.divergence_max = self.divergence_max.max(d);
    }
}

/// A fixed bitset of sticky per-key flags — the constant-memory stand-in
/// for per-key `emitted` booleans. Two keys may share a bit (bounded by
/// `bits`); a collision can only *suppress* a duplicate alert, never
/// invent one.
#[derive(Debug, Clone)]
pub struct LatchSet {
    words: Vec<u64>,
    mask: u64,
    seed: u64,
}

impl LatchSet {
    /// Creates a latch set of at least `bits` bits (rounded up to a
    /// power of two, minimum 64).
    pub fn new(bits: usize, seed: u64) -> LatchSet {
        let bits = bits.next_power_of_two().max(64);
        LatchSet {
            words: vec![0; bits / 64],
            mask: bits as u64 - 1,
            seed,
        }
    }

    fn locate(&self, key: u64) -> (usize, u64) {
        let bit = splitmix64(key ^ self.seed) & self.mask;
        ((bit / 64) as usize, 1u64 << (bit % 64))
    }

    /// Whether the key's latch is set.
    pub fn get(&self, key: u64) -> bool {
        let (w, m) = self.locate(key);
        self.words[w] & m != 0
    }

    /// Sets or clears the key's latch.
    pub fn put(&mut self, key: u64, on: bool) {
        let (w, m) = self.locate(key);
        if on {
            self.words[w] |= m;
        } else {
            self.words[w] &= !m;
        }
    }

    /// Clears every latch.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Folds another latch set (same size and seed) into this one by
    /// bitwise OR.
    ///
    /// # Errors
    ///
    /// Refuses (mutating nothing) if the dimensions or seed differ.
    pub fn try_merge(&mut self, other: &LatchSet) -> Result<(), RateMergeError> {
        if self.mask != other.mask {
            return Err(RateMergeError::ShapeMismatch {
                tracker: "latch set",
            });
        }
        if self.seed != other.seed {
            return Err(RateMergeError::SeedMismatch {
                tracker: "latch set",
            });
        }
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
        Ok(())
    }

    /// [`LatchSet::try_merge`], panicking on mismatch.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions or seed differ.
    pub fn merge(&mut self, other: &LatchSet) {
        self.try_merge(other).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Bytes pinned by the bitset.
    pub fn bytes(&self) -> usize {
        self.words.len() * 8
    }
}

/// One rule-clause candidate a shard forwards to the fold plane with
/// its delta: a key whose *local* slice crossed the admission bar, so
/// the global plane should evaluate it against the merged trackers.
/// Carries the display string the global alert needs (sketches cannot
/// enumerate keys) and the local estimate for divergence telemetry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RateCandidate {
    /// The clause (and latch) name, e.g. `"rapid-connect"`.
    pub clause: &'static str,
    /// The tracker key under evaluation.
    pub key: u64,
    /// Capture time this shard first saw the key in the current period
    /// (merged by min across shards; telemetry — evaluation order uses
    /// `(clause, display, key)`, which is shard-count invariant, and
    /// first admission times are not).
    pub first_time: SimTime,
    /// The shard-local windowed estimate at admission (merged by max;
    /// telemetry only — alerts use the global estimate).
    pub local_estimate: u32,
    /// Human-readable identity for the alert message (e.g. the caller
    /// AOR).
    pub display: String,
}

/// One shard's contribution to a fold: plain-update twin trackers
/// covering the observations since the last fold, plus the candidate
/// keys whose local slices look worth a global evaluation. Summing
/// deltas from any partition of the stream rebuilds the exact trackers
/// one engine fed everything would hold (see
/// [`CountMinSketch::observe_plain`]), which is what makes the global
/// evaluation independent of the shard count.
#[derive(Debug, Default)]
pub struct RateDelta {
    /// Windowed counters, plain-update twins of the hub's counters.
    pub counters: Vec<(&'static str, WindowedSketch)>,
    /// Windowed distinct estimators (register unions are naturally
    /// partition-independent).
    pub distincts: Vec<(&'static str, WindowedDistinct)>,
    /// Candidate keys for the global threshold pass.
    pub candidates: Vec<RateCandidate>,
}

/// Named tracker registry every rule can reach through
/// [`crate::rules::RuleCtx::rates`]. Trackers are created lazily on
/// first use and live for the engine's lifetime — their memory is a
/// function of [`RateConfig`] dimensions alone, never of traffic.
///
/// In **aggregated** mode ([`RateHub::new_aggregated`], the sharded
/// pipeline with the fold plane on) the hub additionally maintains a
/// [`RateDelta`]: plain-update twins of every counter/distinct tracker
/// plus the candidate registry, swapped out by [`RateHub::take_delta`]
/// at each fold barrier. Rules built on the hub check
/// [`RateHub::aggregated`] to split local-latch evaluation (single
/// engine) from observe-and-forward (shard worker under a fold plane).
///
/// Interior mutability (the engine is single-threaded per worker) lets
/// rules update trackers through the shared `&RuleCtx` they already
/// receive, without widening the `Rule::on_event` contract.
#[derive(Debug)]
pub struct RateHub {
    exact: bool,
    /// Fold-plane mode: feed delta twins and forward candidates instead
    /// of latching locally.
    aggregated: bool,
    /// Shard count of the owning pipeline (1 when unsharded); scales
    /// the candidate admission bar so a threshold sliced `shards` ways
    /// still admits every globally-crossing key.
    fold_shards: usize,
    config: RateConfig,
    inner: RefCell<HubInner>,
}

#[derive(Debug, Default)]
struct HubInner {
    counters: Vec<(&'static str, WindowedSketch)>,
    distincts: Vec<(&'static str, WindowedDistinct)>,
    latches: Vec<(&'static str, LatchSet)>,
    delta: RateDelta,
}

impl Default for RateHub {
    /// An empty hub with default dimensioning in exact mode — what a
    /// default engine owns, and the convenient hub for tests and
    /// benches that construct a [`crate::rules::RuleCtx`] by hand.
    fn default() -> RateHub {
        RateHub::new(RateConfig::default(), true)
    }
}

impl RateHub {
    /// Creates an empty hub. `exact` mirrors
    /// [`crate::engine::ScidiveConfig::exact_rate_state`] so rules can
    /// pick their backing store at event time.
    pub fn new(config: RateConfig, exact: bool) -> RateHub {
        RateHub {
            exact,
            aggregated: false,
            fold_shards: 1,
            config,
            inner: RefCell::new(HubInner::default()),
        }
    }

    /// Creates a hub in aggregated (fold-plane) mode for one shard of a
    /// `shards`-way pipeline: every counter/distinct observation also
    /// feeds a plain-update delta twin, and threshold rules forward
    /// candidates instead of latching locally. The sketch path is used
    /// regardless of `exact` — global evaluation must see identical
    /// deltas in both modes so the merged alert stream is a pure
    /// function of the capture.
    pub fn new_aggregated(config: RateConfig, exact: bool, shards: usize) -> RateHub {
        RateHub {
            exact,
            aggregated: true,
            fold_shards: shards.max(1),
            config,
            inner: RefCell::new(HubInner::default()),
        }
    }

    /// Whether this hub feeds a fold plane (observe-and-forward mode).
    pub fn aggregated(&self) -> bool {
        self.aggregated
    }

    /// Shard count of the owning pipeline (1 when unsharded) — the
    /// divisor for candidate admission bars in aggregated mode.
    pub fn fold_shards(&self) -> usize {
        self.fold_shards
    }

    /// Whether rules should keep exact per-key state (the reference
    /// mode) instead of the constant-memory sketches.
    pub fn exact(&self) -> bool {
        self.exact
    }

    /// The dimensioning in force.
    pub fn config(&self) -> &RateConfig {
        &self.config
    }

    /// Hashes identity parts into a tracker key with the hub's seed.
    pub fn key(&self, parts: &[&[u8]]) -> u64 {
        hash_parts(self.config.seed, parts)
    }

    /// Observes `key` in the named sliding-window counter and returns
    /// the windowed estimate. The tracker is created on first use with
    /// the given window.
    pub fn observe_count(
        &self,
        name: &'static str,
        window: SimDuration,
        now: SimTime,
        key: u64,
    ) -> u32 {
        let mut inner = self.inner.borrow_mut();
        let seed = self.config.tracker_seed(name);
        let config = &self.config;
        if !inner.counters.iter().any(|(n, _)| *n == name) {
            inner.counters.push((
                name,
                WindowedSketch::new(
                    window,
                    config.window_buckets,
                    config.counter_width,
                    config.counter_depth,
                    seed,
                ),
            ));
        }
        let ws = &mut inner
            .counters
            .iter_mut()
            .find(|(n, _)| *n == name)
            .expect("just inserted")
            .1;
        let estimate = ws.observe(now, key);
        if self.aggregated {
            if !inner.delta.counters.iter().any(|(n, _)| *n == name) {
                inner.delta.counters.push((
                    name,
                    WindowedSketch::new(
                        window,
                        self.config.window_buckets,
                        self.config.counter_width,
                        self.config.counter_depth,
                        seed,
                    ),
                ));
            }
            inner
                .delta
                .counters
                .iter_mut()
                .find(|(n, _)| *n == name)
                .expect("just inserted")
                .1
                .observe_plain(now, key);
        }
        estimate
    }

    /// Observes `item` under `key` in the named windowed distinct
    /// estimator and returns the estimated distinct count for the key.
    pub fn observe_distinct(
        &self,
        name: &'static str,
        window: SimDuration,
        now: SimTime,
        key: u64,
        item: u64,
    ) -> u32 {
        let mut inner = self.inner.borrow_mut();
        let seed = self.config.tracker_seed(name);
        let config = &self.config;
        if !inner.distincts.iter().any(|(n, _)| *n == name) {
            inner.distincts.push((
                name,
                WindowedDistinct::new(
                    window,
                    config.distinct_buckets,
                    config.distinct_slots,
                    config.distinct_registers,
                    seed,
                ),
            ));
        }
        let wd = &mut inner
            .distincts
            .iter_mut()
            .find(|(n, _)| *n == name)
            .expect("just inserted")
            .1;
        let estimate = wd.observe(now, key, item);
        if self.aggregated {
            if !inner.delta.distincts.iter().any(|(n, _)| *n == name) {
                inner.delta.distincts.push((
                    name,
                    WindowedDistinct::new(
                        window,
                        self.config.distinct_buckets,
                        self.config.distinct_slots,
                        self.config.distinct_registers,
                        seed,
                    ),
                ));
            }
            inner
                .delta
                .distincts
                .iter_mut()
                .find(|(n, _)| *n == name)
                .expect("just inserted")
                .1
                .observe(now, key, item);
        }
        estimate
    }

    /// Registers a fold-plane candidate (aggregated mode): the key's
    /// local slice crossed its admission bar, so the next fold should
    /// evaluate it globally. Deduplicated by `(clause, key)` within the
    /// period, keeping the earliest sighting and the largest local
    /// estimate.
    pub fn push_candidate(
        &self,
        clause: &'static str,
        key: u64,
        first_time: SimTime,
        local_estimate: u32,
        display: &str,
    ) {
        let mut inner = self.inner.borrow_mut();
        if let Some(c) = inner
            .delta
            .candidates
            .iter_mut()
            .find(|c| c.clause == clause && c.key == key)
        {
            c.first_time = c.first_time.min(first_time);
            c.local_estimate = c.local_estimate.max(local_estimate);
            return;
        }
        inner.delta.candidates.push(RateCandidate {
            clause,
            key,
            first_time,
            local_estimate,
            display: display.to_string(),
        });
    }

    /// Swaps out the accumulated [`RateDelta`] at a fold barrier,
    /// leaving structurally identical *empty* twin trackers behind (so
    /// the hub's byte footprint stays constant across folds, which the
    /// capacity gates assert).
    pub fn take_delta(&self) -> RateDelta {
        let mut inner = self.inner.borrow_mut();
        let taken = std::mem::take(&mut inner.delta);
        for (name, ws) in &taken.counters {
            let seed = self.config.tracker_seed(name);
            inner.delta.counters.push((
                name,
                WindowedSketch::new(
                    ws.window(),
                    self.config.window_buckets,
                    self.config.counter_width,
                    self.config.counter_depth,
                    seed,
                ),
            ));
        }
        for (name, wd) in &taken.distincts {
            let seed = self.config.tracker_seed(name);
            inner.delta.distincts.push((
                name,
                WindowedDistinct::new(
                    wd.window(),
                    self.config.distinct_buckets,
                    self.config.distinct_slots,
                    self.config.distinct_registers,
                    seed,
                ),
            ));
        }
        taken
    }

    /// Whether the key's latch in the named latch set is set.
    pub fn latched(&self, name: &'static str, key: u64) -> bool {
        let inner = self.inner.borrow();
        inner
            .latches
            .iter()
            .find(|(n, _)| *n == name)
            .is_some_and(|(_, l)| l.get(key))
    }

    /// Sets or clears the key's latch in the named latch set, creating
    /// the set on first use.
    pub fn set_latch(&self, name: &'static str, key: u64, on: bool) {
        let mut inner = self.inner.borrow_mut();
        let seed = self.config.tracker_seed(name);
        let bits = self.config.latch_bits;
        if !inner.latches.iter().any(|(n, _)| *n == name) {
            inner.latches.push((name, LatchSet::new(bits, seed)));
        }
        let l = &mut inner
            .latches
            .iter_mut()
            .find(|(n, _)| *n == name)
            .expect("just inserted")
            .1;
        l.put(key, on);
    }

    /// Telemetry snapshot: tracker count and bytes, including the
    /// delta twins in aggregated mode (this hub records no divergence —
    /// the identity plane's shadow mode owns that).
    pub fn stats(&self) -> RateStats {
        let inner = self.inner.borrow();
        let mut s = RateStats::default();
        for (_, ws) in &inner.counters {
            s.trackers += 1;
            s.bytes += ws.bytes() as u64;
        }
        for (_, wd) in &inner.distincts {
            s.trackers += 1;
            s.bytes += wd.bytes() as u64;
        }
        for (_, l) in &inner.latches {
            s.trackers += 1;
            s.bytes += l.bytes() as u64;
        }
        for (_, ws) in &inner.delta.counters {
            s.trackers += 1;
            s.bytes += ws.bytes() as u64;
        }
        for (_, wd) in &inner.delta.distincts {
            s.trackers += 1;
            s.bytes += wd.bytes() as u64;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_parts_separates_part_boundaries() {
        let s = DEFAULT_RATE_SEED;
        assert_ne!(
            hash_parts(s, &[b"ab", b"c"]),
            hash_parts(s, &[b"a", b"bc"])
        );
        assert_ne!(hash_parts(s, &[b"x"]), hash_parts(s ^ 1, &[b"x"]));
        assert_eq!(hash_parts(s, &[b"x"]), hash_parts(s, &[b"x"]));
    }

    #[test]
    fn latch_set_sets_clears_and_merges() {
        let mut a = LatchSet::new(128, 7);
        let mut b = LatchSet::new(128, 7);
        a.put(1, true);
        b.put(2, true);
        assert!(a.get(1) && !a.get(2));
        a.merge(&b);
        assert!(a.get(1) && a.get(2));
        a.put(1, false);
        assert!(!a.get(1) && a.get(2));
        a.clear_all();
        assert!(!a.get(2));
        assert_eq!(a.bytes(), 16);
    }

    #[test]
    #[should_panic(expected = "latch set seed mismatch")]
    fn latch_merge_checks_seed() {
        let mut a = LatchSet::new(64, 1);
        a.merge(&LatchSet::new(64, 2));
    }

    #[test]
    fn latch_try_merge_returns_typed_errors_without_mutating() {
        let mut a = LatchSet::new(64, 1);
        a.put(3, true);
        assert_eq!(
            a.try_merge(&LatchSet::new(128, 1)),
            Err(RateMergeError::ShapeMismatch {
                tracker: "latch set"
            })
        );
        assert_eq!(
            a.try_merge(&LatchSet::new(64, 2)),
            Err(RateMergeError::SeedMismatch {
                tracker: "latch set"
            })
        );
        assert!(a.get(3));
    }

    #[test]
    fn hub_creates_trackers_lazily_and_reports_bytes() {
        let hub = RateHub::new(RateConfig::default(), false);
        assert!(!hub.exact());
        assert_eq!(hub.stats().trackers, 0);
        let w = SimDuration::from_secs(10);
        let k = hub.key(&[b"caller"]);
        assert_eq!(hub.observe_count("c", w, SimTime::from_secs(1), k), 1);
        assert_eq!(hub.observe_count("c", w, SimTime::from_secs(2), k), 2);
        assert_eq!(
            hub.observe_distinct("d", w, SimTime::from_secs(2), k, hub.key(&[b"x"])),
            1
        );
        assert!(!hub.latched("l", k));
        hub.set_latch("l", k, true);
        assert!(hub.latched("l", k));
        let s = hub.stats();
        assert_eq!(s.trackers, 3);
        assert!(s.bytes > 0);
        // Constant memory: more keys never change the footprint.
        for i in 0..10_000u64 {
            hub.observe_count("c", w, SimTime::from_secs(3), i);
        }
        assert_eq!(hub.stats().bytes, s.bytes);
    }

    #[test]
    fn rate_stats_absorb_sums_and_maxes() {
        let mut a = RateStats {
            trackers: 1,
            bytes: 100,
            divergence_samples: 2,
            divergence_sum: 3,
            divergence_max: 2,
        };
        a.record_divergence(7, 4);
        assert_eq!(a.divergence_max, 3);
        let b = RateStats {
            trackers: 2,
            bytes: 50,
            divergence_samples: 1,
            divergence_sum: 9,
            divergence_max: 9,
        };
        a.absorb(b);
        assert_eq!(a.trackers, 3);
        assert_eq!(a.bytes, 150);
        assert_eq!(a.divergence_samples, 4);
        assert_eq!(a.divergence_sum, 15);
        assert_eq!(a.divergence_max, 9);
    }
}
