//! Pipeline observability: counters, gauges, fixed-bucket histograms and
//! an optional decision trace, snapshottable as a serializable
//! [`PipelineObservation`].
//!
//! The paper's evaluation (§4.3, §6) needs detection delay, drop/miss
//! accounting and per-component load; a production deployment needs to
//! see queue depths, match latencies and state growth *before* they
//! become outages. This module is the one place all of that lives:
//!
//! * **Counters** — monotonic `u64`s already kept by each stage
//!   ([`crate::engine::PipelineStats`], [`crate::distill::DistillStats`],
//!   [`crate::shard::DispatchStats`]) plus per-severity alert counts.
//! * **Gauges** ([`StateGauges`]) — the sizes that must plateau for the
//!   engine to be deployable: live trails, retained footprints, media
//!   correlation index, session interner, memoized synthetic keys —
//!   and the lifecycle counters proving expiry actually runs.
//! * **Histograms** ([`Histogram`]) — fixed-bucket, allocation-free
//!   recording of rule-evaluation latency (wall clock), detection delay
//!   (sim time from trail creation to alert), dispatch batch linger
//!   (capture time) and batch fill.
//! * **Trace** ([`DecisionTrace`]) — a bounded ring of the last N
//!   routing/match decisions, **off by default** (`trace_depth = 0`),
//!   enabled per engine via [`ObserveConfig`] for debugging misrouted
//!   footprints.
//!
//! Overhead discipline: with default settings (histograms on, trace
//! off) observation performs **zero heap allocations** on the per-frame
//! path — histograms are fixed arrays, gauges are field reads, and the
//! only per-frame cost is two `Instant::now()` calls on one footprint
//! in [`RULE_EVAL_SAMPLE`] (a deterministic latency sample). The bench
//! gate (`exp_observe_overhead`, wired into `scripts/ci.sh`) fails CI
//! if observation costs more than 5% of pipeline throughput.

use crate::alert::Severity;
use crate::distill::DistillStats;
use crate::engine::PipelineStats;
use scidive_netsim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt::Write as _;

/// Observation settings, part of [`crate::engine::ScidiveConfig`].
#[derive(Debug, Clone)]
pub struct ObserveConfig {
    /// Record latency/delay/linger histograms. Cheap (no allocation,
    /// two `Instant::now()` per footprint); on by default.
    pub histograms: bool,
    /// Depth of the per-engine decision trace ring buffer. `0` (the
    /// default) disables tracing entirely — the per-frame path then
    /// allocates nothing for observation.
    pub trace_depth: usize,
}

impl Default for ObserveConfig {
    fn default() -> ObserveConfig {
        ObserveConfig {
            histograms: true,
            trace_depth: 0,
        }
    }
}

/// Bucket upper bounds for rule-evaluation wall-clock latency, in
/// microseconds.
pub const RULE_EVAL_BUCKETS_US: [u64; 11] = [1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 5_000];

/// Bucket upper bounds for detection delay (trail creation → alert), in
/// sim-time milliseconds.
pub const DETECTION_DELAY_BUCKETS_MS: [u64; 11] =
    [1, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000];

/// Bucket upper bounds for dispatch batch linger (oldest buffered frame
/// → flush), in capture-time milliseconds.
pub const BATCH_LINGER_BUCKETS_MS: [u64; 9] = [1, 2, 5, 10, 25, 50, 100, 250, 1_000];

/// Bucket upper bounds for dispatch batch fill (frames per channel
/// send).
pub const BATCH_FILL_BUCKETS: [u64; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// A fixed-bucket histogram: recording is a linear scan over a handful
/// of bounds plus three field updates — no allocation, ever.
///
/// `counts[i]` holds samples `<= bounds[i]` (and greater than the
/// previous bound); one extra overflow slot holds everything larger
/// than the last bound.
///
/// # Examples
///
/// ```
/// use scidive_core::observe::Histogram;
///
/// let mut h = Histogram::new(&[10, 100]);
/// h.record(3);
/// h.record(42);
/// h.record(9_000); // overflow bucket
/// assert_eq!(h.count, 3);
/// assert_eq!(h.max, 9_000);
/// assert_eq!(h.quantile(0.5), 100);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Inclusive bucket upper bounds, ascending.
    pub bounds: Vec<u64>,
    /// Per-bucket sample counts; `bounds.len() + 1` entries, the last
    /// being the overflow bucket.
    pub counts: Vec<u64>,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
}

impl Histogram {
    /// Creates an empty histogram over the given bounds.
    pub fn new(bounds: &[u64]) -> Histogram {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| v <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper-bound estimate of the `q`-quantile: the bound of the bucket
    /// in which the quantile falls (`max` for the overflow bucket).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank.max(1) {
                return self.bounds.get(i).copied().unwrap_or(self.max);
            }
        }
        self.max
    }

    /// Folds another histogram (same bounds) into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram bounds mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    fn summary(&self, label: &str, unit: &str) -> String {
        if self.is_empty() {
            return format!("{label:<22} (no samples)");
        }
        format!(
            "{label:<22} count={} mean={:.1}{unit} p50={}{unit} p95={}{unit} max={}{unit}",
            self.count,
            self.mean(),
            self.quantile(0.5),
            self.quantile(0.95),
            self.max,
        )
    }
}

/// Alert counts broken down by severity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeverityCounts {
    /// Informational alerts.
    pub info: u64,
    /// Warning alerts.
    pub warning: u64,
    /// Critical alerts.
    pub critical: u64,
}

impl SeverityCounts {
    /// Counts one alert.
    pub fn record(&mut self, severity: Severity) {
        match severity {
            Severity::Info => self.info += 1,
            Severity::Warning => self.warning += 1,
            Severity::Critical => self.critical += 1,
        }
    }

    /// Total across severities.
    pub fn total(&self) -> u64 {
        self.info + self.warning + self.critical
    }
}

impl std::ops::Add for SeverityCounts {
    type Output = SeverityCounts;
    fn add(self, rhs: SeverityCounts) -> SeverityCounts {
        SeverityCounts {
            info: self.info + rhs.info,
            warning: self.warning + rhs.warning,
            critical: self.critical + rhs.critical,
        }
    }
}

/// The state sizes that must plateau for long-lived deployment, plus
/// the lifecycle counters proving expiry is doing its job.
///
/// `router_*` fields cover the sharded dispatcher's own media index
/// (which shadows the per-shard ones); they are zero for a single
/// engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateGauges {
    /// Live trails across all engines.
    pub trails: u64,
    /// Footprints currently retained in trails.
    pub retained_footprints: u64,
    /// Learned `(addr, port) → session` media mappings.
    pub media_index: u64,
    /// Distinct interned session keys.
    pub interner: u64,
    /// Memoized synthetic keys (flow/other/sip-anon/sip-malformed).
    pub synthetic_keys: u64,
    /// Session entries held by rule state maps (partial matches and
    /// fired-once markers) across all rules.
    pub rule_state: u64,
    /// Per-session dialog states held by the event generators' session
    /// planes across all engines.
    pub session_plane: u64,
    /// Trails dropped by the idle timeout (monotonic).
    pub expired_trails: u64,
    /// Media mappings dropped by idle expiry (monotonic).
    pub media_expired: u64,
    /// Memoized synthetic keys dropped by idle expiry (monotonic).
    pub synthetic_expired: u64,
    /// Interned session keys dropped by idle expiry (monotonic).
    pub interner_expired: u64,
    /// Rule state entries dropped by idle expiry (monotonic).
    pub rule_state_expired: u64,
    /// Session-plane dialog states dropped by idle expiry (monotonic).
    pub session_plane_expired: u64,
    /// The dispatcher router's media mappings (0 for a single engine).
    pub router_media_index: u64,
    /// The dispatcher router's interned keys (0 for a single engine).
    pub router_interner: u64,
    /// The dispatcher router's memoized synthetic keys (0 for a single
    /// engine).
    pub router_synthetic_keys: u64,
    /// Live rate trackers (sketch rings, distinct estimators, latches)
    /// across the identity plane and rule hub.
    pub rate_trackers: u64,
    /// Bytes pinned by the rate trackers — constant once every tracker
    /// exists, regardless of key population.
    pub rate_bytes: u64,
    /// Exact-mode shadow comparisons taken between sketch estimates and
    /// the exact windows (monotonic; 0 in sketch mode).
    pub rate_divergence_samples: u64,
    /// Sum of |estimate − exact| across those comparisons.
    pub rate_divergence_sum: u64,
    /// Worst single |estimate − exact| seen (merged by max).
    pub rate_divergence_max: u64,
    /// Trackers held by the dispatcher's cross-shard fold plane (0
    /// unless the sharded pipeline runs with aggregation on).
    pub fold_rate_trackers: u64,
    /// Bytes pinned by the fold plane's merged trackers and latches —
    /// the global-hub footprint the capacity cap must also cover.
    pub fold_rate_bytes: u64,
    /// Global-vs-best-local-slice comparisons taken at fold alerts.
    pub fold_divergence_samples: u64,
    /// Sum of (global estimate − best local slice) across those alerts.
    pub fold_divergence_sum: u64,
    /// Worst single global-vs-local gap seen (merged by max) — how far
    /// a per-shard evaluation would have undercounted.
    pub fold_divergence_max: u64,
    /// Generation of the installed ruleset (0 for the boot ruleset,
    /// bumped by every [`crate::shard::ShardedScidive::swap_ruleset`] /
    /// [`crate::engine::Scidive::swap_ruleset`]; merged by max, since
    /// every engine installs the same blueprint at a swap barrier).
    pub ruleset_generation: u64,
}

impl std::ops::Add for StateGauges {
    type Output = StateGauges;
    fn add(self, rhs: StateGauges) -> StateGauges {
        StateGauges {
            trails: self.trails + rhs.trails,
            retained_footprints: self.retained_footprints + rhs.retained_footprints,
            media_index: self.media_index + rhs.media_index,
            interner: self.interner + rhs.interner,
            synthetic_keys: self.synthetic_keys + rhs.synthetic_keys,
            rule_state: self.rule_state + rhs.rule_state,
            session_plane: self.session_plane + rhs.session_plane,
            expired_trails: self.expired_trails + rhs.expired_trails,
            media_expired: self.media_expired + rhs.media_expired,
            synthetic_expired: self.synthetic_expired + rhs.synthetic_expired,
            interner_expired: self.interner_expired + rhs.interner_expired,
            rule_state_expired: self.rule_state_expired + rhs.rule_state_expired,
            session_plane_expired: self.session_plane_expired + rhs.session_plane_expired,
            router_media_index: self.router_media_index + rhs.router_media_index,
            router_interner: self.router_interner + rhs.router_interner,
            router_synthetic_keys: self.router_synthetic_keys + rhs.router_synthetic_keys,
            rate_trackers: self.rate_trackers + rhs.rate_trackers,
            rate_bytes: self.rate_bytes + rhs.rate_bytes,
            rate_divergence_samples: self.rate_divergence_samples + rhs.rate_divergence_samples,
            rate_divergence_sum: self.rate_divergence_sum + rhs.rate_divergence_sum,
            rate_divergence_max: self.rate_divergence_max.max(rhs.rate_divergence_max),
            fold_rate_trackers: self.fold_rate_trackers + rhs.fold_rate_trackers,
            fold_rate_bytes: self.fold_rate_bytes + rhs.fold_rate_bytes,
            fold_divergence_samples: self.fold_divergence_samples + rhs.fold_divergence_samples,
            fold_divergence_sum: self.fold_divergence_sum + rhs.fold_divergence_sum,
            fold_divergence_max: self.fold_divergence_max.max(rhs.fold_divergence_max),
            ruleset_generation: self.ruleset_generation.max(rhs.ruleset_generation),
        }
    }
}

/// Dispatcher-side counters and queue gauges (all zero for a plain
/// single engine driven via [`crate::engine::Scidive::on_frame`]).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DispatchCounters {
    /// Frames submitted to the dispatcher.
    pub frames: u64,
    /// Frames that produced no footprint (fragments in flight).
    pub empty_frames: u64,
    /// Footprints resolved to synthetic (unattributable) sessions.
    pub overflow_frames: u64,
    /// Frames dropped (structurally zero: backpressure blocks instead).
    pub dropped: u64,
    /// Batches shipped over shard channels.
    pub batches_sent: u64,
    /// Flushes that found a shard queue full and had to block.
    pub enqueue_blocked: u64,
    /// Highest per-shard queue depth (in batches) observed at any flush.
    pub max_queue_depth: u64,
    /// Per-shard queue depth (in batches) at snapshot time.
    pub queue_depths: Vec<u64>,
    /// Fold barriers executed by the cross-shard rate plane (periodic +
    /// the finish fold; 0 with aggregation off).
    pub folds: u64,
    /// Per-shard rate deltas absorbed across all folds.
    pub fold_deltas: u64,
    /// Candidate keys shards forwarded for global evaluation.
    pub fold_candidates: u64,
    /// Alerts the global rate evaluation emitted.
    pub fold_alerts: u64,
    /// Delta tracker merges refused for shape/seed mismatch (a
    /// misconfigured shard; skipped, never wedging the fold).
    pub rate_merge_rejected: u64,
    /// Ruleset hot swaps executed (each one a full swap barrier across
    /// every shard).
    pub ruleset_swaps: u64,
    /// Ruleset swap attempts rejected because the replacement program
    /// failed to compile (the running ruleset stays installed).
    pub ruleset_compile_errors: u64,
}

/// The fixed histogram set recorded across the pipeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObservedHistograms {
    /// Wall-clock rule-evaluation latency per footprint, microseconds.
    pub rule_eval_us: Histogram,
    /// Sim-time from the triggering trail's creation to each alert,
    /// milliseconds.
    pub detection_delay_ms: Histogram,
    /// Capture-time a batch's oldest frame waited before its flush,
    /// milliseconds.
    pub batch_linger_ms: Histogram,
    /// Frames per dispatched batch.
    pub batch_fill: Histogram,
}

impl Default for ObservedHistograms {
    fn default() -> ObservedHistograms {
        ObservedHistograms {
            rule_eval_us: Histogram::new(&RULE_EVAL_BUCKETS_US),
            detection_delay_ms: Histogram::new(&DETECTION_DELAY_BUCKETS_MS),
            batch_linger_ms: Histogram::new(&BATCH_LINGER_BUCKETS_MS),
            batch_fill: Histogram::new(&BATCH_FILL_BUCKETS),
        }
    }
}

impl ObservedHistograms {
    /// Folds another set into this one.
    pub fn merge(&mut self, other: &ObservedHistograms) {
        self.rule_eval_us.merge(&other.rule_eval_us);
        self.detection_delay_ms.merge(&other.detection_delay_ms);
        self.batch_linger_ms.merge(&other.batch_linger_ms);
        self.batch_fill.merge(&other.batch_fill);
    }
}

/// Which component recorded a trace entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceStage {
    /// A dispatcher routing verdict.
    Route,
    /// An engine match outcome.
    Match,
}

impl std::fmt::Display for TraceStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TraceStage::Route => "route",
            TraceStage::Match => "match",
        })
    }
}

/// One traced decision: either a dispatcher routing verdict
/// ([`TraceStage::Route`]) or an engine match outcome
/// ([`TraceStage::Match`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Footprint ordinal within the recording component.
    pub seq: u64,
    /// Capture time of the footprint.
    pub time: SimTime,
    /// Owning shard (dispatcher: the routing verdict; engine entries
    /// are stamped with their shard id at merge, 0 for a single engine).
    pub shard: usize,
    /// The recording component.
    pub stage: TraceStage,
    /// The resolved session key text.
    pub session: String,
    /// The footprint's protocol trail.
    pub proto: String,
    /// Events the footprint generated (match entries only).
    pub events: u32,
    /// Alerts the footprint raised (match entries only).
    pub alerts: u32,
}

/// A bounded ring of the last N [`TraceEntry`]s. Depth 0 (the default)
/// disables recording entirely.
#[derive(Debug, Clone, Default)]
pub struct DecisionTrace {
    depth: usize,
    entries: VecDeque<TraceEntry>,
}

impl DecisionTrace {
    /// Creates a trace ring of the given depth (0 = disabled).
    pub fn new(depth: usize) -> DecisionTrace {
        DecisionTrace {
            depth,
            entries: VecDeque::with_capacity(depth.min(1024)),
        }
    }

    /// Whether recording is enabled.
    pub fn enabled(&self) -> bool {
        self.depth > 0
    }

    /// Records an entry, evicting the oldest beyond the depth. No-op
    /// when disabled.
    pub fn push(&mut self, entry: TraceEntry) {
        if self.depth == 0 {
            return;
        }
        if self.entries.len() == self.depth {
            self.entries.pop_front();
        }
        self.entries.push_back(entry);
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Drains the ring into a `Vec`, oldest first.
    pub fn into_vec(self) -> Vec<TraceEntry> {
        self.entries.into()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ring holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Exact `on_event` invocation count for one rule. The compiled
/// dispatch table made these counters nearly free (one array increment
/// per dispatched rule), so they are exact, not sampled — unlike the
/// wall-clock latency histogram, which stays on its 1-in-
/// [`RULE_EVAL_SAMPLE`] schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleEval {
    /// The rule id.
    pub rule: String,
    /// Times the rule's `on_event` ran.
    pub evals: u64,
}

/// Folds per-rule invocation counts from one engine into a merged list,
/// matching by rule id (shards run identical rulesets, so ids line up;
/// unseen ids append in the order they arrive).
pub fn merge_rule_evals(into: &mut Vec<RuleEval>, other: &[RuleEval]) {
    for o in other {
        if let Some(e) = into.iter_mut().find(|e| e.rule == o.rule) {
            e.evals += o.evals;
        } else {
            into.push(o.clone());
        }
    }
}

/// The engine-side slice of an observation: what one [`crate::engine::Scidive`]
/// (a shard worker, or the whole pipeline when unsharded) contributes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineObservation {
    /// The engine's pipeline counters.
    pub stats: PipelineStats,
    /// Its alerts by severity.
    pub severity: SeverityCounts,
    /// Rule-evaluation latency histogram.
    pub rule_eval_us: Histogram,
    /// Detection-delay histogram.
    pub detection_delay_ms: Histogram,
    /// Exact per-rule `on_event` invocation counts.
    pub rule_evals: Vec<RuleEval>,
    /// Its trail-store / media-index gauges.
    pub gauges: StateGauges,
    /// Its decision trace (empty unless `trace_depth > 0`).
    pub trace: Vec<TraceEntry>,
}

/// The per-engine recorder: histograms, severity counts and the trace
/// ring. Owned by every [`crate::engine::Scidive`].
#[derive(Debug)]
pub struct EngineObserver {
    histograms: bool,
    rule_eval_us: Histogram,
    detection_delay_ms: Histogram,
    severity: SeverityCounts,
    trace: DecisionTrace,
    seq: u64,
    /// Footprint counter driving the 1-in-[`RULE_EVAL_SAMPLE`]
    /// rule-eval timing sample.
    sampler: u32,
}

/// Rule-evaluation latency is timed for one footprint in this many:
/// clock reads are the only per-frame cost of observation, and a
/// deterministic 1-in-8 sample keeps the histogram representative while
/// making that cost negligible.
pub const RULE_EVAL_SAMPLE: u32 = 8;

impl EngineObserver {
    /// Creates a recorder for the given settings.
    pub fn new(config: &ObserveConfig) -> EngineObserver {
        EngineObserver {
            histograms: config.histograms,
            rule_eval_us: Histogram::new(&RULE_EVAL_BUCKETS_US),
            detection_delay_ms: Histogram::new(&DETECTION_DELAY_BUCKETS_MS),
            severity: SeverityCounts::default(),
            trace: DecisionTrace::new(config.trace_depth),
            seq: 0,
            sampler: 0,
        }
    }

    /// Starts timing one footprint's rule evaluation. Returns `None`
    /// when histograms are off, and for all but one footprint in
    /// [`RULE_EVAL_SAMPLE`] — the caller then skips `Instant` entirely.
    pub fn match_timer(&mut self) -> Option<std::time::Instant> {
        if !self.histograms {
            return None;
        }
        self.sampler = self.sampler.wrapping_add(1);
        self.sampler
            .is_multiple_of(RULE_EVAL_SAMPLE)
            .then(std::time::Instant::now)
    }

    /// Records the elapsed rule-evaluation time.
    pub fn record_match(&mut self, timer: Option<std::time::Instant>) {
        if let Some(t) = timer {
            self.rule_eval_us.record(t.elapsed().as_micros() as u64);
        }
    }

    /// Records one alert: severity count plus detection delay measured
    /// from the triggering trail's creation.
    pub fn record_alert(&mut self, severity: Severity, delay: Option<SimDuration>) {
        self.severity.record(severity);
        if self.histograms {
            if let Some(d) = delay {
                self.detection_delay_ms.record(d.as_micros() / 1_000);
            }
        }
    }

    /// Whether the trace ring is recording (callers skip building
    /// entries when not).
    pub fn trace_enabled(&self) -> bool {
        self.trace.enabled()
    }

    /// Records a match decision in the trace ring and returns the
    /// footprint ordinal used.
    pub fn push_trace(&mut self, time: SimTime, session: String, proto: String, events: u32, alerts: u32) {
        let seq = self.seq;
        self.seq += 1;
        self.trace.push(TraceEntry {
            seq,
            time,
            shard: 0,
            stage: TraceStage::Match,
            session,
            proto,
            events,
            alerts,
        });
    }

    /// Alert counts by severity so far.
    pub fn severity(&self) -> SeverityCounts {
        self.severity
    }

    /// Snapshot of the engine-side observation, given the engine's
    /// counters, state gauges and exact per-rule invocation counts.
    pub fn observation(
        &self,
        stats: PipelineStats,
        gauges: StateGauges,
        rule_evals: Vec<RuleEval>,
    ) -> EngineObservation {
        EngineObservation {
            stats,
            severity: self.severity,
            rule_eval_us: self.rule_eval_us.clone(),
            detection_delay_ms: self.detection_delay_ms.clone(),
            rule_evals,
            gauges,
            trace: self.trace.clone().into_vec(),
        }
    }
}

/// A full, serializable snapshot of what the pipeline has been doing:
/// every stage's counters, the state gauges that must plateau, the
/// latency histograms, and (when enabled) the decision trace.
///
/// Returned by [`crate::engine::Scidive::observation`],
/// [`crate::shard::ShardedScidive::observation`] /
/// [`crate::shard::ShardedReport::observation`] and
/// [`crate::online::OnlineScidive::finish`]; render it with
/// [`PipelineObservation::report`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineObservation {
    /// Summed engine pipeline counters (frames/footprints/events/alerts).
    pub pipeline: PipelineStats,
    /// Alerts by severity.
    pub severity: SeverityCounts,
    /// Distiller counters (dispatcher-side in a sharded deployment).
    pub distill: DistillStats,
    /// Dispatcher counters and queue gauges.
    pub dispatch: DispatchCounters,
    /// State sizes and lifecycle counters.
    pub gauges: StateGauges,
    /// The histogram set.
    pub hist: ObservedHistograms,
    /// Exact per-rule `on_event` invocation counts, summed across
    /// engines.
    pub rule_evals: Vec<RuleEval>,
    /// Merged decision trace, empty unless `trace_depth > 0`.
    pub trace: Vec<TraceEntry>,
}

impl PipelineObservation {
    /// Renders the observation as the `results/`-style text report the
    /// bench harness emits.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== SCIDIVE pipeline observation ==");
        let _ = writeln!(
            out,
            "pipeline   frames={} footprints={} events={} alerts={} (crit={} warn={} info={})",
            self.pipeline.frames,
            self.pipeline.footprints,
            self.pipeline.events,
            self.pipeline.alerts,
            self.severity.critical,
            self.severity.warning,
            self.severity.info,
        );
        let _ = writeln!(
            out,
            "distill    frames={} footprints={} frag_buffered={} reassembled={} corrupt_udp={} malformed_sip={}",
            self.distill.frames,
            self.distill.footprints,
            self.distill.fragments_buffered,
            self.distill.reassembled,
            self.distill.corrupt_udp,
            self.distill.malformed_sip,
        );
        let _ = writeln!(
            out,
            "dispatch   frames={} batches={} empty={} overflow={} dropped={} blocked={} max_queue={} queues={:?}",
            self.dispatch.frames,
            self.dispatch.batches_sent,
            self.dispatch.empty_frames,
            self.dispatch.overflow_frames,
            self.dispatch.dropped,
            self.dispatch.enqueue_blocked,
            self.dispatch.max_queue_depth,
            self.dispatch.queue_depths,
        );
        let _ = writeln!(
            out,
            "state      trails={} retained={} media_index={} interner={} synthetic_keys={} rule_state={} session_plane={} router_media={} router_interner={} router_synth={}",
            self.gauges.trails,
            self.gauges.retained_footprints,
            self.gauges.media_index,
            self.gauges.interner,
            self.gauges.synthetic_keys,
            self.gauges.rule_state,
            self.gauges.session_plane,
            self.gauges.router_media_index,
            self.gauges.router_interner,
            self.gauges.router_synthetic_keys,
        );
        let _ = writeln!(
            out,
            "lifecycle  expired_trails={} media_expired={} synthetic_expired={} interner_expired={} rule_state_expired={} session_plane_expired={}",
            self.gauges.expired_trails,
            self.gauges.media_expired,
            self.gauges.synthetic_expired,
            self.gauges.interner_expired,
            self.gauges.rule_state_expired,
            self.gauges.session_plane_expired,
        );
        let _ = writeln!(
            out,
            "rate       trackers={} bytes={} div_samples={} div_sum={} div_max={}",
            self.gauges.rate_trackers,
            self.gauges.rate_bytes,
            self.gauges.rate_divergence_samples,
            self.gauges.rate_divergence_sum,
            self.gauges.rate_divergence_max,
        );
        let _ = writeln!(
            out,
            "fold       folds={} deltas={} candidates={} alerts={} rejected={} trackers={} bytes={} gap_samples={} gap_sum={} gap_max={}",
            self.dispatch.folds,
            self.dispatch.fold_deltas,
            self.dispatch.fold_candidates,
            self.dispatch.fold_alerts,
            self.dispatch.rate_merge_rejected,
            self.gauges.fold_rate_trackers,
            self.gauges.fold_rate_bytes,
            self.gauges.fold_divergence_samples,
            self.gauges.fold_divergence_sum,
            self.gauges.fold_divergence_max,
        );
        let _ = writeln!(
            out,
            "ruleset    generation={} swaps={} compile_errors={}",
            self.gauges.ruleset_generation,
            self.dispatch.ruleset_swaps,
            self.dispatch.ruleset_compile_errors,
        );
        if !self.rule_evals.is_empty() {
            let _ = write!(out, "rule_evals");
            for e in &self.rule_evals {
                let _ = write!(out, " {}={}", e.rule, e.evals);
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out, "{}", self.hist.rule_eval_us.summary("rule_eval", "us"));
        let _ = writeln!(
            out,
            "{}",
            self.hist.detection_delay_ms.summary("detection_delay", "ms")
        );
        let _ = writeln!(
            out,
            "{}",
            self.hist.batch_linger_ms.summary("batch_linger", "ms")
        );
        let _ = writeln!(out, "{}", self.hist.batch_fill.summary("batch_fill", ""));
        if !self.trace.is_empty() {
            let _ = writeln!(out, "trace      (last {} decisions)", self.trace.len());
            for e in &self.trace {
                let _ = writeln!(
                    out,
                    "  [{}] #{:<6} {:<5} shard={} {} {} events={} alerts={}",
                    e.time, e.seq, e.stage, e.shard, e.proto, e.session, e.events, e.alerts
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new(&[10, 100, 1000]);
        for v in [1, 5, 10, 11, 99, 100, 5000] {
            h.record(v);
        }
        assert_eq!(h.count, 7);
        assert_eq!(h.counts, vec![3, 3, 0, 1]);
        assert_eq!(h.max, 5000);
        assert_eq!(h.quantile(0.0), 10);
        assert_eq!(h.quantile(0.5), 100);
        assert_eq!(h.quantile(1.0), 5000); // overflow bucket → max
        assert!((h.mean() - (1 + 5 + 10 + 11 + 99 + 100 + 5000) as f64 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_merge_sums() {
        let mut a = Histogram::new(&RULE_EVAL_BUCKETS_US);
        let mut b = Histogram::new(&RULE_EVAL_BUCKETS_US);
        a.record(3);
        b.record(30);
        b.record(300_000);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.max, 300_000);
    }

    #[test]
    #[should_panic(expected = "histogram bounds mismatch")]
    fn histogram_merge_checks_bounds() {
        let mut a = Histogram::new(&[1]);
        a.merge(&Histogram::new(&[2]));
    }

    #[test]
    fn trace_ring_caps_and_evicts() {
        let mut t = DecisionTrace::new(2);
        for seq in 0..5 {
            t.push(TraceEntry {
                seq,
                time: SimTime::from_millis(seq),
                shard: 0,
                stage: TraceStage::Match,
                session: format!("s{seq}"),
                proto: "Sip".into(),
                events: 0,
                alerts: 0,
            });
        }
        let kept: Vec<u64> = t.entries().map(|e| e.seq).collect();
        assert_eq!(kept, vec![3, 4]);
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = DecisionTrace::new(0);
        assert!(!t.enabled());
        t.push(TraceEntry {
            seq: 0,
            time: SimTime::ZERO,
            shard: 0,
            stage: TraceStage::Route,
            session: "s".into(),
            proto: "Rtp".into(),
            events: 0,
            alerts: 0,
        });
        assert!(t.is_empty());
    }

    #[test]
    fn rule_evals_merge_by_id() {
        let mut a = vec![
            RuleEval {
                rule: "x".into(),
                evals: 2,
            },
            RuleEval {
                rule: "y".into(),
                evals: 1,
            },
        ];
        let b = vec![
            RuleEval {
                rule: "y".into(),
                evals: 5,
            },
            RuleEval {
                rule: "z".into(),
                evals: 3,
            },
        ];
        merge_rule_evals(&mut a, &b);
        assert_eq!(a.len(), 3);
        assert_eq!(a[1].evals, 6);
        assert_eq!(a[2].rule, "z");
    }

    #[test]
    fn severity_counts_add_up() {
        let mut s = SeverityCounts::default();
        s.record(Severity::Info);
        s.record(Severity::Critical);
        s.record(Severity::Critical);
        assert_eq!(s.total(), 3);
        assert_eq!((s + s).critical, 4);
    }

    #[test]
    fn observation_report_renders() {
        let obs = PipelineObservation {
            pipeline: PipelineStats {
                frames: 10,
                footprints: 9,
                events: 4,
                alerts: 2,
            },
            severity: SeverityCounts {
                info: 0,
                warning: 1,
                critical: 1,
            },
            distill: DistillStats::default(),
            dispatch: DispatchCounters::default(),
            gauges: StateGauges::default(),
            hist: ObservedHistograms::default(),
            rule_evals: vec![RuleEval {
                rule: "sip-format".into(),
                evals: 4,
            }],
            trace: vec![],
        };
        let text = obs.report();
        assert!(text.contains("frames=10"));
        assert!(text.contains("sip-format=4"));
        assert!(text.contains("crit=1"));
        assert!(text.contains("rule_eval"));
        // Round-trips through the vendored serde.
        let v = serde::Serialize::to_value(&obs);
        let back: PipelineObservation = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back.pipeline, obs.pipeline);
    }
}
