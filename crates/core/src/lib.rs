//! # scidive-core — the SCIDIVE intrusion detection engine
//!
//! A reproduction of the architecture of *"SCIDIVE: A Stateful and Cross
//! Protocol Intrusion Detection Architecture for Voice-over-IP
//! Environments"* (Wu, Bagchi, Garg, Singh, Tsai — DSN 2004):
//!
//! ```text
//!  frames ──▶ Distiller ──▶ Footprints ──▶ Trails ──▶ Event Generator
//!                                                          │
//!                                    Alerts ◀── Ruleset ◀──┘ Events
//! ```
//!
//! * [`distill::Distiller`] reassembles IP fragments and decodes
//!   SIP / RTP / RTCP / accounting into [`footprint::Footprint`]s.
//! * [`trail::TrailStore`] groups footprints into per-session,
//!   per-protocol trails, correlating RTP flows to the SIP dialog whose
//!   SDP announced them — the substrate of **cross-protocol detection**.
//! * [`event::EventGenerator`] runs the **stateful** per-session
//!   machines (dialog lifecycle, registration churn, sequence history,
//!   identity→address history) and condenses footprints into
//!   [`event::Event`]s.
//! * [`proto`] is the protocol-module layer: classification,
//!   attribution and event generation are all dispatched through a
//!   [`proto::ProtocolSet`] of pluggable per-protocol modules, so a new
//!   protocol (see [`proto::mgcp`]) plugs in without touching the
//!   pipeline stages.
//! * [`rules`] matches events — single-event rules, ordered
//!   [`rules::SequenceRule`]s and unordered [`rules::CombinationRule`]s —
//!   raising [`alert::Alert`]s. The built-in ruleset covers all seven
//!   attacks the paper discusses.
//! * [`engine::Scidive`] assembles the pipeline; [`engine::IdsNode`]
//!   deploys it as the paper's endpoint tap; [`online::OnlineScidive`]
//!   runs it on a worker thread behind a channel.
//! * [`routing`] resolves any footprint to its session key up front (the
//!   SDP-derived media-correlation index lives here) and
//!   [`shard::ShardedScidive`] uses it to fan the pipeline out over `N`
//!   worker engines whose merged output is byte-identical to one engine;
//!   batches travel over per-shard [`spsc`] rings.
//! * [`observe`] watches the whole pipeline — monotonic counters, state
//!   gauges, fixed-bucket histograms and an optional decision trace —
//!   snapshottable as a serializable [`observe::PipelineObservation`].
//! * [`baseline::SnortLike`] is the stateless, session-blind comparison
//!   matcher of §3.3/§5; [`metrics`] scores alert streams into the
//!   paper's `D`, `P_f`, `P_m`.
//!
//! ## Example: catching a forged BYE offline
//!
//! ```no_run
//! use scidive_core::engine::{Scidive, ScidiveConfig};
//! use scidive_netsim::time::SimTime;
//!
//! let mut ids = Scidive::new(ScidiveConfig::default());
//! # let captured: Vec<(SimTime, scidive_netsim::packet::IpPacket)> = vec![];
//! for (time, frame) in &captured {
//!     for alert in ids.on_frame(*time, frame) {
//!         println!("{alert}");
//!     }
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alert;
pub mod baseline;
pub mod cooperative;
pub mod distill;
pub mod engine;
pub mod event;
pub mod footprint;
pub mod metrics;
pub mod observe;
pub mod online;
pub mod proto;
pub mod rate;
pub mod routing;
pub mod rules;
pub mod shard;
pub mod spsc;
pub mod trail;

/// Convenient glob import of the common IDS types.
pub mod prelude {
    pub use crate::alert::{Alert, Severity};
    pub use crate::baseline::{Signature, SnortLike};
    pub use crate::cooperative::{
        CooperativeCluster, CooperativeConfig, EndpointDetector, TaggedEvent,
    };
    pub use crate::distill::{Distiller, DistillerConfig};
    pub use crate::engine::{
        DistilledFootprint, IdsNode, PipelineStats, RulesetSource, Scidive, ScidiveConfig,
    };
    pub use crate::event::{
        Event, EventClass, EventGenConfig, EventGenerator, EventKind, FlowKey, IdentityPlane,
    };
    pub use crate::footprint::{
        CorruptReason, ExtBody, ExtData, Footprint, FootprintBody, PacketMeta, TrailProto,
    };
    pub use crate::metrics::{DetectionReport, InjectedAttack, RateAccumulator};
    pub use crate::proto::{
        AttributeCtx, GenCtx, ProtocolModule, ProtocolSet, ProtocolSetBuilder,
    };
    pub use crate::observe::{
        merge_rule_evals, DecisionTrace, DispatchCounters, EngineObservation, Histogram,
        ObserveConfig, ObservedHistograms, PipelineObservation, RuleEval, SeverityCounts,
        StateGauges, TraceEntry, TraceStage,
    };
    pub use crate::online::OnlineScidive;
    pub use crate::rate::{
        CountMinSketch, FoldConfig, FoldStats, GlobalRatePlane, LatchSet, RateConfig, RateDelta,
        RateHub, RateMergeError, RateStats, WindowedDistinct, WindowedSketch,
    };
    pub use crate::routing::{
        stable_session_hash, MediaIndex, RouteDecision, SessionRouter,
    };
    pub use crate::shard::{DispatchStats, ShardStats, ShardedReport, ShardedScidive};
    pub use crate::rules::{
        builtin_ruleset, collect_alerts, parse_ruleset, rapid_spec, AlertSink, CombinationRule,
        CompiledRuleset, Diagnostic, PredicateRule, Program, Rule, RuleCtx, RuleInterest,
        RuleStateStats, RuleToggles, RulesetBlueprint, SequenceRule, SessionMap, SpecError,
        ThresholdRule, ThresholdSpec,
    };
    pub use crate::trail::{SessionKey, Trail, TrailKey, TrailStore, TrailStoreConfig};
}
