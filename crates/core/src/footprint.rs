//! Footprints: protocol-dependent information units (paper §3.1).
//!
//! "The Distiller ... translates packets into protocol dependent
//! information units called Footprints. A Footprint is a protocol
//! dependent information unit, which, for example, could be composed of
//! a SIP message or an RTP packet."

use scidive_netsim::time::SimTime;
use scidive_rtp::packet::RtpHeader;
use scidive_rtp::rtcp::RtcpPacket;
use scidive_sip::msg::SipMessage;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// Where and when a packet was observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PacketMeta {
    /// Observation time at the tap.
    pub time: SimTime,
    /// IP source.
    pub src: Ipv4Addr,
    /// UDP source port (0 if the transport header was unreadable).
    pub src_port: u16,
    /// IP destination.
    pub dst: Ipv4Addr,
    /// UDP destination port (0 if the transport header was unreadable).
    pub dst_port: u16,
}

/// An accounting transaction decoded by the IDS.
///
/// The IDS carries its own decoder for the accounting wire line rather
/// than importing the billing system's types: an IDS must parse what is
/// on the wire, not share code with the system it watches.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AcctFootprint {
    /// `true` for START, `false` for STOP.
    pub start: bool,
    /// Billed party (AOR).
    pub caller: String,
    /// Called party (AOR).
    pub callee: String,
    /// The Call-ID the billing system attached.
    pub call_id: String,
}

impl FromStr for AcctFootprint {
    type Err = ();

    fn from_str(s: &str) -> Result<AcctFootprint, ()> {
        let parts: Vec<&str> = s.split_whitespace().collect();
        if parts.len() != 5 || parts[0] != "ACCT" {
            return Err(());
        }
        let start = match parts[1] {
            "START" => true,
            "STOP" => false,
            _ => return Err(()),
        };
        Ok(AcctFootprint {
            start,
            caller: parts[2].to_string(),
            callee: parts[3].to_string(),
            call_id: parts[4].to_string(),
        })
    }
}

/// The protocol-dependent payload of a footprint.
#[derive(Debug, Clone, PartialEq)]
pub enum FootprintBody {
    /// A parsed SIP message.
    Sip(Box<SipMessage>),
    /// Traffic on a SIP port that failed to parse as SIP.
    SipMalformed {
        /// Why parsing failed.
        reason: String,
        /// The first bytes, for forensics.
        prefix: Vec<u8>,
    },
    /// An RTP packet (header only; the IDS does not retain media).
    Rtp {
        /// The decoded header.
        header: RtpHeader,
        /// Payload bytes (not retained).
        payload_len: usize,
    },
    /// An RTCP packet.
    Rtcp(RtcpPacket),
    /// An accounting transaction.
    Acct(AcctFootprint),
    /// An ICMP message (type/code only).
    Icmp {
        /// ICMP type byte.
        icmp_type: u8,
    },
    /// UDP that matched no protocol decoder.
    UdpOther {
        /// Payload size.
        payload_len: usize,
    },
    /// A UDP datagram with a broken header or checksum.
    UdpCorrupt {
        /// The decode error.
        reason: String,
    },
}

/// A protocol-dependent information unit produced by the Distiller.
#[derive(Debug, Clone, PartialEq)]
pub struct Footprint {
    /// Packet metadata.
    pub meta: PacketMeta,
    /// Decoded content.
    pub body: FootprintBody,
}

impl Footprint {
    /// A short label for display and debugging.
    pub fn label(&self) -> String {
        match &self.body {
            FootprintBody::Sip(msg) => format!("SIP {}", msg.summary()),
            FootprintBody::SipMalformed { reason, .. } => format!("SIP? ({reason})"),
            FootprintBody::Rtp { header, .. } => {
                format!("RTP seq={} ssrc={:#x}", header.seq, header.ssrc)
            }
            FootprintBody::Rtcp(_) => "RTCP".to_string(),
            FootprintBody::Acct(a) => format!(
                "ACCT {} {}→{}",
                if a.start { "START" } else { "STOP" },
                a.caller,
                a.callee
            ),
            FootprintBody::Icmp { icmp_type } => format!("ICMP type={icmp_type}"),
            FootprintBody::UdpOther { payload_len } => format!("UDP {payload_len}B"),
            FootprintBody::UdpCorrupt { reason } => format!("UDP corrupt ({reason})"),
        }
    }

    /// The protocol this footprint belongs to, for trail grouping.
    pub fn proto(&self) -> TrailProto {
        match &self.body {
            FootprintBody::Sip(_) | FootprintBody::SipMalformed { .. } => TrailProto::Sip,
            FootprintBody::Rtp { .. } => TrailProto::Rtp,
            FootprintBody::Rtcp(_) => TrailProto::Rtcp,
            FootprintBody::Acct(_) => TrailProto::Acct,
            FootprintBody::Icmp { .. } | FootprintBody::UdpOther { .. }
            | FootprintBody::UdpCorrupt { .. } => TrailProto::Other,
        }
    }
}

impl fmt::Display for Footprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}:{} -> {}:{} {}",
            self.meta.time,
            self.meta.src,
            self.meta.src_port,
            self.meta.dst,
            self.meta.dst_port,
            self.label()
        )
    }
}

/// The protocol a trail groups (paper: "multiple trails for each
/// session, one for each protocol").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TrailProto {
    /// Call management protocol (SIP).
    Sip,
    /// Media delivery protocol (RTP).
    Rtp,
    /// Media control (RTCP).
    Rtcp,
    /// Accounting transactions.
    Acct,
    /// Anything else (ICMP, unknown UDP).
    Other,
}

impl fmt::Display for TrailProto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TrailProto::Sip => "SIP",
            TrailProto::Rtp => "RTP",
            TrailProto::Rtcp => "RTCP",
            TrailProto::Acct => "ACCT",
            TrailProto::Other => "OTHER",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acct_line_parses() {
        let fp: AcctFootprint = "ACCT START alice@lab bob@lab c1".parse().unwrap();
        assert!(fp.start);
        assert_eq!(fp.caller, "alice@lab");
        assert_eq!(fp.call_id, "c1");
        let stop: AcctFootprint = "ACCT STOP a b c".parse().unwrap();
        assert!(!stop.start);
        assert!("ACCT PAUSE a b c".parse::<AcctFootprint>().is_err());
        assert!("nonsense".parse::<AcctFootprint>().is_err());
    }

    #[test]
    fn proto_classification() {
        let meta = PacketMeta {
            time: SimTime::ZERO,
            src: Ipv4Addr::new(10, 0, 0, 1),
            src_port: 1,
            dst: Ipv4Addr::new(10, 0, 0, 2),
            dst_port: 2,
        };
        let fp = Footprint {
            meta,
            body: FootprintBody::UdpOther { payload_len: 3 },
        };
        assert_eq!(fp.proto(), TrailProto::Other);
        assert!(fp.label().contains("3B"));
        assert!(fp.to_string().contains("10.0.0.1:1"));
    }

    #[test]
    fn trail_proto_display() {
        assert_eq!(TrailProto::Sip.to_string(), "SIP");
        assert_eq!(TrailProto::Acct.to_string(), "ACCT");
    }
}
