//! Footprints: protocol-dependent information units (paper §3.1).
//!
//! "The Distiller ... translates packets into protocol dependent
//! information units called Footprints. A Footprint is a protocol
//! dependent information unit, which, for example, could be composed of
//! a SIP message or an RTP packet."
//!
//! Built-in protocols get their own [`FootprintBody`] variants; protocol
//! modules registered from outside the core crate carry their decoded
//! payload through [`FootprintBody::Ext`] / [`ExtBody`], which erases
//! the module's concrete type behind [`ExtData`].

use scidive_netsim::packet::PacketError;
use scidive_netsim::time::SimTime;
use scidive_rtp::packet::RtpHeader;
use scidive_rtp::rtcp::RtcpPacket;
use scidive_sip::msg::SipMessage;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;
use std::sync::Arc;

/// Where and when a packet was observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PacketMeta {
    /// Observation time at the tap.
    pub time: SimTime,
    /// IP source.
    pub src: Ipv4Addr,
    /// UDP source port (0 if the transport header was unreadable).
    pub src_port: u16,
    /// IP destination.
    pub dst: Ipv4Addr,
    /// UDP destination port (0 if the transport header was unreadable).
    pub dst_port: u16,
}

/// An accounting transaction decoded by the IDS.
///
/// The IDS carries its own decoder for the accounting wire line rather
/// than importing the billing system's types: an IDS must parse what is
/// on the wire, not share code with the system it watches.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AcctFootprint {
    /// `true` for START, `false` for STOP.
    pub start: bool,
    /// Billed party (AOR).
    pub caller: String,
    /// Called party (AOR).
    pub callee: String,
    /// The Call-ID the billing system attached.
    pub call_id: String,
}

impl FromStr for AcctFootprint {
    type Err = ();

    /// Parses the five-token accounting line with a single iterator
    /// walk — no intermediate `Vec<&str>` — so the acct decode path
    /// stays allocation-free until a line actually matches.
    fn from_str(s: &str) -> Result<AcctFootprint, ()> {
        let mut parts = s.split_whitespace();
        if parts.next() != Some("ACCT") {
            return Err(());
        }
        let start = match parts.next() {
            Some("START") => true,
            Some("STOP") => false,
            _ => return Err(()),
        };
        let caller = parts.next().ok_or(())?;
        let callee = parts.next().ok_or(())?;
        let call_id = parts.next().ok_or(())?;
        if parts.next().is_some() {
            return Err(());
        }
        Ok(AcctFootprint {
            start,
            caller: caller.to_string(),
            callee: callee.to_string(),
            call_id: call_id.to_string(),
        })
    }
}

/// Why a UDP datagram failed to decode, as a copyable tag instead of a
/// formatted `String`: a corrupt-packet flood must not pressure the
/// allocator (one footprint per frame, zero heap per reason).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorruptReason {
    /// The packet is an unreassembled IP fragment.
    Fragmented,
    /// The transport protocol is not the one the decoder expected.
    WrongProtocol,
    /// The payload is shorter than its headers claim.
    Truncated,
    /// The UDP length field disagrees with the payload size.
    BadLength,
    /// The UDP checksum does not verify.
    BadChecksum,
}

impl CorruptReason {
    /// The reason as a static display string.
    pub fn as_str(self) -> &'static str {
        match self {
            CorruptReason::Fragmented => "unreassembled fragment",
            CorruptReason::WrongProtocol => "wrong transport protocol",
            CorruptReason::Truncated => "truncated datagram",
            CorruptReason::BadLength => "udp length mismatch",
            CorruptReason::BadChecksum => "udp checksum mismatch",
        }
    }
}

impl From<&PacketError> for CorruptReason {
    fn from(e: &PacketError) -> CorruptReason {
        match e {
            PacketError::Fragmented => CorruptReason::Fragmented,
            PacketError::NotUdp(_) | PacketError::NotIcmp(_) => CorruptReason::WrongProtocol,
            PacketError::Truncated { .. } => CorruptReason::Truncated,
            PacketError::BadLength { .. } => CorruptReason::BadLength,
            PacketError::BadChecksum { .. } => CorruptReason::BadChecksum,
        }
    }
}

impl fmt::Display for CorruptReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The decoded payload a protocol module attaches to an extension
/// footprint. Implemented by the module's own PDU type; the pipeline
/// treats it as an opaque, comparable, printable blob.
pub trait ExtData: fmt::Debug + Send + Sync + 'static {
    /// Downcast hook so the owning module can recover its concrete type
    /// in `attribute`/`generate`.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Equality against another extension payload (used by
    /// `FootprintBody: PartialEq`). Implementations should downcast and
    /// compare, returning `false` on a type mismatch.
    fn eq_ext(&self, other: &dyn ExtData) -> bool;

    /// A short display label, e.g. `"MGCP DLCX call-7"`.
    fn label(&self) -> String;
}

/// An extension protocol's footprint payload: the registering module's
/// static name plus its type-erased decoded PDU. Cloning bumps an `Arc`
/// refcount — extension footprints stay cheap on the trail path.
#[derive(Debug, Clone)]
pub struct ExtBody {
    /// The owning protocol module's `name()`.
    pub proto: &'static str,
    /// The module's decoded payload.
    pub data: Arc<dyn ExtData>,
}

impl PartialEq for ExtBody {
    fn eq(&self, other: &ExtBody) -> bool {
        self.proto == other.proto && self.data.eq_ext(other.data.as_ref())
    }
}

/// Bound on idle recycled SIP message boxes kept per thread. Sized like
/// the header-vector pool in the sip crate: enough for every in-flight
/// footprint of a distill batch, small enough to be irrelevant memory.
const SIP_POOL_CAP: usize = 32;

thread_local! {
    // The Box IS the pooled resource — its heap slot is what gets
    // recycled — so clippy's `Vec<SipMessage>` suggestion would defeat
    // the pool (every pop would need a fresh `Box::new`).
    #[allow(clippy::vec_box)]
    static SIP_BOX_POOL: std::cell::RefCell<Vec<Box<SipMessage>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// A boxed [`SipMessage`] whose heap slot is recycled through a
/// thread-local pool: dropping a SIP footprint returns the box for the
/// next parsed message to reuse, so the steady-state distill path stops
/// paying one `Box` allocation per signalling frame.
///
/// Dereferences to [`SipMessage`]; equality, `Debug`, and `Clone` all
/// follow the message, so the wrapper is invisible to rule code. Before
/// a box enters the pool its contents are replaced with an empty
/// placeholder, so pooling never pins packet buffers alive.
pub struct PooledSip {
    /// `Some` until drop.
    msg: Option<Box<SipMessage>>,
    /// `false` opts out of recycling (the reference configuration
    /// allocates and frees per message, as the pre-pooling code did).
    pooled: bool,
}

impl PooledSip {
    /// Wraps a message in a recycled box (or a fresh one when the pool
    /// is empty).
    pub fn new(msg: SipMessage) -> PooledSip {
        let boxed = match SIP_BOX_POOL.with_borrow_mut(|pool| pool.pop()) {
            Some(mut b) => {
                *b = msg;
                b
            }
            None => Box::new(msg),
        };
        PooledSip {
            msg: Some(boxed),
            pooled: true,
        }
    }

    /// Wraps a message in a box that will be freed, not recycled — the
    /// allocation behavior the reference (pre-pooling) configuration
    /// measures.
    pub fn heap(msg: SipMessage) -> PooledSip {
        PooledSip {
            msg: Some(Box::new(msg)),
            pooled: false,
        }
    }

    fn get(&self) -> &SipMessage {
        self.msg.as_ref().expect("present until drop")
    }
}

impl std::ops::Deref for PooledSip {
    type Target = SipMessage;
    fn deref(&self) -> &SipMessage {
        self.get()
    }
}

impl Drop for PooledSip {
    fn drop(&mut self) {
        let Some(mut boxed) = self.msg.take() else {
            return;
        };
        if !self.pooled {
            return;
        }
        // `try_with`: during thread teardown the pool may already be
        // gone, in which case the box just frees normally.
        let _ = SIP_BOX_POOL.try_with(|pool| {
            let mut pool = pool.borrow_mut();
            if pool.len() < SIP_POOL_CAP {
                // Drop the message contents now; only the heap slot is
                // retained. The placeholder is allocation-free and its
                // empty header vector is below the header pool's
                // recycling threshold.
                *boxed = SipMessage {
                    start: scidive_sip::msg::StartLine::Response {
                        code: scidive_sip::status::StatusCode::OK,
                        reason: scidive_sip::bstr::ByteStr::EMPTY,
                    },
                    headers: scidive_sip::header::Headers::new(),
                    body: bytes::Bytes::new(),
                };
                pool.push(boxed);
            }
        });
    }
}

impl Clone for PooledSip {
    fn clone(&self) -> PooledSip {
        let msg = self.get().clone();
        if self.pooled {
            PooledSip::new(msg)
        } else {
            PooledSip::heap(msg)
        }
    }
}

impl PartialEq for PooledSip {
    fn eq(&self, other: &PooledSip) -> bool {
        self.get() == other.get()
    }
}

impl fmt::Debug for PooledSip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.get(), f)
    }
}

impl From<SipMessage> for PooledSip {
    fn from(msg: SipMessage) -> PooledSip {
        PooledSip::new(msg)
    }
}

/// The protocol-dependent payload of a footprint.
#[derive(Debug, Clone, PartialEq)]
pub enum FootprintBody {
    /// A parsed SIP message.
    Sip(PooledSip),
    /// Traffic on a SIP port that failed to parse as SIP.
    SipMalformed {
        /// Why parsing failed.
        reason: String,
        /// The first bytes, for forensics.
        prefix: Vec<u8>,
    },
    /// An RTP packet (header only; the IDS does not retain media).
    Rtp {
        /// The decoded header.
        header: RtpHeader,
        /// Payload bytes (not retained).
        payload_len: usize,
    },
    /// An RTCP packet.
    Rtcp(RtcpPacket),
    /// An accounting transaction.
    Acct(AcctFootprint),
    /// An ICMP message (type/code only).
    Icmp {
        /// ICMP type byte.
        icmp_type: u8,
    },
    /// UDP that matched no protocol decoder.
    UdpOther {
        /// Payload size.
        payload_len: usize,
    },
    /// A UDP datagram with a broken header or checksum.
    UdpCorrupt {
        /// The decode error class.
        reason: CorruptReason,
    },
    /// A registered extension protocol's decoded payload.
    Ext(ExtBody),
}

/// A protocol-dependent information unit produced by the Distiller.
#[derive(Debug, Clone, PartialEq)]
pub struct Footprint {
    /// Packet metadata.
    pub meta: PacketMeta,
    /// Decoded content.
    pub body: FootprintBody,
}

impl Footprint {
    /// A short label for display and debugging.
    pub fn label(&self) -> String {
        match &self.body {
            FootprintBody::Sip(msg) => format!("SIP {}", msg.summary()),
            FootprintBody::SipMalformed { reason, .. } => format!("SIP? ({reason})"),
            FootprintBody::Rtp { header, .. } => {
                format!("RTP seq={} ssrc={:#x}", header.seq, header.ssrc)
            }
            FootprintBody::Rtcp(_) => "RTCP".to_string(),
            FootprintBody::Acct(a) => format!(
                "ACCT {} {}→{}",
                if a.start { "START" } else { "STOP" },
                a.caller,
                a.callee
            ),
            FootprintBody::Icmp { icmp_type } => format!("ICMP type={icmp_type}"),
            FootprintBody::UdpOther { payload_len } => format!("UDP {payload_len}B"),
            FootprintBody::UdpCorrupt { reason } => format!("UDP corrupt ({reason})"),
            FootprintBody::Ext(e) => e.data.label(),
        }
    }

    /// The protocol this footprint belongs to, for trail grouping.
    pub fn proto(&self) -> TrailProto {
        match &self.body {
            FootprintBody::Sip(_) | FootprintBody::SipMalformed { .. } => TrailProto::Sip,
            FootprintBody::Rtp { .. } => TrailProto::Rtp,
            FootprintBody::Rtcp(_) => TrailProto::Rtcp,
            FootprintBody::Acct(_) => TrailProto::Acct,
            FootprintBody::Icmp { .. } | FootprintBody::UdpOther { .. }
            | FootprintBody::UdpCorrupt { .. } => TrailProto::Other,
            FootprintBody::Ext(e) => TrailProto::Ext(e.proto),
        }
    }
}

impl fmt::Display for Footprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}:{} -> {}:{} {}",
            self.meta.time,
            self.meta.src,
            self.meta.src_port,
            self.meta.dst,
            self.meta.dst_port,
            self.label()
        )
    }
}

/// The protocol a trail groups (paper: "multiple trails for each
/// session, one for each protocol").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TrailProto {
    /// Call management protocol (SIP).
    Sip,
    /// Media delivery protocol (RTP).
    Rtp,
    /// Media control (RTCP).
    Rtcp,
    /// Accounting transactions.
    Acct,
    /// Anything else (ICMP, unknown UDP).
    Other,
    /// A registered extension protocol, tagged by its module name.
    Ext(&'static str),
}

impl Serialize for TrailProto {
    fn to_value(&self) -> serde::Value {
        let name = match self {
            TrailProto::Sip => "Sip",
            TrailProto::Rtp => "Rtp",
            TrailProto::Rtcp => "Rtcp",
            TrailProto::Acct => "Acct",
            TrailProto::Other => "Other",
            TrailProto::Ext(name) => name,
        };
        serde::Value::Str(name.to_string())
    }
}

impl Deserialize for TrailProto {
    fn from_value(v: &serde::Value) -> Result<TrailProto, serde::DeError> {
        match v {
            serde::Value::Str(s) => match s.as_str() {
                "Sip" => Ok(TrailProto::Sip),
                "Rtp" => Ok(TrailProto::Rtp),
                "Rtcp" => Ok(TrailProto::Rtcp),
                "Acct" => Ok(TrailProto::Acct),
                "Other" => Ok(TrailProto::Other),
                // Extension protocols carry `&'static str` names owned
                // by their module; they cannot be reconstituted from a
                // serialized stream.
                other => Err(serde::DeError::msg(format!(
                    "unknown trail protocol {other:?}"
                ))),
            },
            other => Err(serde::DeError::expected("string", other)),
        }
    }
}

impl fmt::Display for TrailProto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TrailProto::Sip => "SIP",
            TrailProto::Rtp => "RTP",
            TrailProto::Rtcp => "RTCP",
            TrailProto::Acct => "ACCT",
            TrailProto::Other => "OTHER",
            TrailProto::Ext(name) => name,
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acct_line_parses() {
        let fp: AcctFootprint = "ACCT START alice@lab bob@lab c1".parse().unwrap();
        assert!(fp.start);
        assert_eq!(fp.caller, "alice@lab");
        assert_eq!(fp.call_id, "c1");
        let stop: AcctFootprint = "ACCT STOP a b c".parse().unwrap();
        assert!(!stop.start);
        assert!("ACCT PAUSE a b c".parse::<AcctFootprint>().is_err());
        assert!("ACCT START a b".parse::<AcctFootprint>().is_err());
        assert!("ACCT START a b c extra".parse::<AcctFootprint>().is_err());
        assert!("nonsense".parse::<AcctFootprint>().is_err());
    }

    #[test]
    fn proto_classification() {
        let meta = PacketMeta {
            time: SimTime::ZERO,
            src: Ipv4Addr::new(10, 0, 0, 1),
            src_port: 1,
            dst: Ipv4Addr::new(10, 0, 0, 2),
            dst_port: 2,
        };
        let fp = Footprint {
            meta,
            body: FootprintBody::UdpOther { payload_len: 3 },
        };
        assert_eq!(fp.proto(), TrailProto::Other);
        assert!(fp.label().contains("3B"));
        assert!(fp.to_string().contains("10.0.0.1:1"));
    }

    #[test]
    fn trail_proto_display() {
        assert_eq!(TrailProto::Sip.to_string(), "SIP");
        assert_eq!(TrailProto::Acct.to_string(), "ACCT");
        assert_eq!(TrailProto::Ext("mgcp").to_string(), "mgcp");
    }

    #[test]
    fn trail_proto_serde_roundtrip() {
        for proto in [
            TrailProto::Sip,
            TrailProto::Rtp,
            TrailProto::Rtcp,
            TrailProto::Acct,
            TrailProto::Other,
        ] {
            let v = proto.to_value();
            assert_eq!(TrailProto::from_value(&v).unwrap(), proto);
        }
        // Extension names serialize but cannot round-trip to a
        // `&'static str`; deserialization reports them as unknown.
        let v = TrailProto::Ext("mgcp").to_value();
        assert!(TrailProto::from_value(&v).is_err());
    }

    #[test]
    fn corrupt_reason_is_static_and_displays() {
        let r = CorruptReason::from(&PacketError::BadChecksum {
            expected: 1,
            actual: 2,
        });
        assert_eq!(r, CorruptReason::BadChecksum);
        assert_eq!(r.to_string(), "udp checksum mismatch");
    }
}
