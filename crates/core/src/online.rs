//! Online (threaded) deployment of the engine.
//!
//! The simulator drives the IDS synchronously under virtual time; this
//! module is the production-shaped alternative: frames are submitted
//! from a capture thread and detection runs on worker threads behind
//! bounded queues. Since the sharded pipeline's merged output is
//! byte-identical to a single engine for any shard count,
//! [`OnlineScidive`] is simply a [`ShardedScidive`] fixed at one shard —
//! the same submit/finish surface, the same detection semantics.

use crate::alert::Alert;
use crate::engine::{PipelineStats, ScidiveConfig};
use crate::observe::PipelineObservation;
use crate::shard::ShardedScidive;
use scidive_netsim::packet::IpPacket;
use scidive_netsim::time::SimTime;

/// A frame handed to the online engine.
#[derive(Debug, Clone)]
pub struct CaptureFrame {
    /// Capture timestamp.
    pub time: SimTime,
    /// The packet.
    pub packet: IpPacket,
}

/// Handle to a running online IDS.
///
/// # Examples
///
/// ```
/// use scidive_core::online::OnlineScidive;
/// use scidive_core::engine::ScidiveConfig;
/// use scidive_netsim::packet::IpPacket;
/// use scidive_netsim::time::SimTime;
/// use std::net::Ipv4Addr;
///
/// let mut ids = OnlineScidive::spawn(ScidiveConfig::default(), 64);
/// ids.submit(SimTime::ZERO, IpPacket::udp(
///     Ipv4Addr::new(10, 0, 0, 1), 5060,
///     Ipv4Addr::new(10, 0, 0, 2), 5060,
///     b"OPTIONS sip:b@lab SIP/2.0\r\nCall-ID: x\r\n\r\n".as_ref(),
/// ));
/// let (alerts, stats, observation) = ids.finish();
/// assert_eq!(stats.frames, 1);
/// assert_eq!(observation.pipeline.frames, 1);
/// assert!(alerts.iter().all(|a| a.rule == "sip-format"));
/// ```
#[derive(Debug)]
pub struct OnlineScidive {
    inner: ShardedScidive,
}

impl OnlineScidive {
    /// Spawns the worker with a bounded input queue of `queue_depth`.
    pub fn spawn(config: ScidiveConfig, queue_depth: usize) -> OnlineScidive {
        OnlineScidive {
            inner: ShardedScidive::new(config, 1, queue_depth),
        }
    }

    /// Submits one frame (blocks if the queue is full).
    pub fn submit(&mut self, time: SimTime, packet: IpPacket) {
        self.inner.submit(time, &packet);
    }

    /// Snapshot of the alerts published so far.
    pub fn alerts_snapshot(&self) -> Vec<Alert> {
        self.inner.alerts_snapshot()
    }

    /// Live observation snapshot alongside the alert snapshot: what the
    /// pipeline has done so far (counters may trail the submit side by
    /// one in-flight batch; `finish` is authoritative).
    pub fn observed_snapshot(&self) -> (Vec<Alert>, PipelineObservation) {
        (self.inner.alerts_snapshot(), self.inner.observation())
    }

    /// Closes the input, waits for the worker to drain, and returns all
    /// alerts, the pipeline counters, and the full observation.
    ///
    /// # Panics
    ///
    /// Panics if the worker thread panicked.
    pub fn finish(self) -> (Vec<Alert>, PipelineStats, PipelineObservation) {
        let report = self.inner.finish();
        (report.alerts, report.stats, report.observation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Scidive;
    use std::net::Ipv4Addr;

    fn sip_frame(payload: &str) -> IpPacket {
        IpPacket::udp(
            Ipv4Addr::new(10, 0, 0, 2),
            5060,
            Ipv4Addr::new(10, 0, 0, 1),
            5060,
            payload.as_bytes().to_vec(),
        )
    }

    #[test]
    fn online_matches_offline() {
        let frames: Vec<(SimTime, IpPacket)> = (0..20)
            .map(|i| {
                (
                    SimTime::from_millis(i),
                    sip_frame("OPTIONS sip:b@lab SIP/2.0\r\nCall-ID: x\r\n\r\n"),
                )
            })
            .collect();

        let mut offline = Scidive::new(ScidiveConfig::default());
        for (t, f) in &frames {
            offline.on_frame(*t, f);
        }

        let mut online = OnlineScidive::spawn(ScidiveConfig::default(), 4);
        for (t, f) in &frames {
            online.submit(*t, f.clone());
        }
        let (alerts, stats, observation) = online.finish();
        assert_eq!(alerts, offline.alerts());
        assert_eq!(stats.frames, 20);
        assert_eq!(observation.pipeline.frames, 20);
        assert_eq!(observation.severity.total(), alerts.len() as u64);
    }

    #[test]
    fn snapshot_while_running() {
        let mut online = OnlineScidive::spawn(ScidiveConfig::default(), 4);
        online.submit(
            SimTime::ZERO,
            sip_frame("OPTIONS sip:b@lab SIP/2.0\r\nCall-ID: x\r\n\r\n"),
        );
        // Snapshot is best-effort; finish() is authoritative.
        let _ = online.alerts_snapshot();
        let (_, snapshot) = online.observed_snapshot();
        assert!(snapshot.dispatch.frames >= 1);
        let (alerts, _, _) = online.finish();
        assert!(!alerts.is_empty());
    }
}
