//! Online (threaded) deployment of the engine.
//!
//! The simulator drives the IDS synchronously under virtual time; this
//! module is the production-shaped alternative: frames are submitted
//! from a capture thread over a channel and the engine runs on its own
//! worker, publishing alerts behind a lock. Detection semantics are
//! identical — the worker is the same [`Scidive`] — only the threading
//! differs.

use crate::alert::Alert;
use crate::engine::{PipelineStats, Scidive, ScidiveConfig};
use crossbeam_channel::{bounded, Sender};
use parking_lot::Mutex;
use scidive_netsim::packet::IpPacket;
use scidive_netsim::time::SimTime;
use std::sync::Arc;
use std::thread::JoinHandle;

/// A frame handed to the online engine.
#[derive(Debug, Clone)]
pub struct CaptureFrame {
    /// Capture timestamp.
    pub time: SimTime,
    /// The packet.
    pub packet: IpPacket,
}

/// Handle to a running online IDS.
///
/// # Examples
///
/// ```
/// use scidive_core::online::OnlineScidive;
/// use scidive_core::engine::ScidiveConfig;
/// use scidive_netsim::packet::IpPacket;
/// use scidive_netsim::time::SimTime;
/// use std::net::Ipv4Addr;
///
/// let ids = OnlineScidive::spawn(ScidiveConfig::default(), 64);
/// ids.submit(SimTime::ZERO, IpPacket::udp(
///     Ipv4Addr::new(10, 0, 0, 1), 5060,
///     Ipv4Addr::new(10, 0, 0, 2), 5060,
///     b"OPTIONS sip:b@lab SIP/2.0\r\nCall-ID: x\r\n\r\n".as_ref(),
/// ));
/// let (alerts, stats) = ids.finish();
/// assert_eq!(stats.frames, 1);
/// assert!(alerts.iter().all(|a| a.rule == "sip-format"));
/// ```
#[derive(Debug)]
pub struct OnlineScidive {
    tx: Sender<CaptureFrame>,
    alerts: Arc<Mutex<Vec<Alert>>>,
    worker: JoinHandle<PipelineStats>,
}

impl OnlineScidive {
    /// Spawns the worker with a bounded input queue of `queue_depth`.
    pub fn spawn(config: ScidiveConfig, queue_depth: usize) -> OnlineScidive {
        let (tx, rx) = bounded::<CaptureFrame>(queue_depth);
        let alerts: Arc<Mutex<Vec<Alert>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = alerts.clone();
        let worker = std::thread::spawn(move || {
            let mut ids = Scidive::new(config);
            while let Ok(frame) = rx.recv() {
                let new = ids.on_frame(frame.time, &frame.packet);
                if !new.is_empty() {
                    sink.lock().extend(new);
                }
            }
            ids.stats()
        });
        OnlineScidive { tx, alerts, worker }
    }

    /// Submits one frame (blocks if the queue is full).
    pub fn submit(&self, time: SimTime, packet: IpPacket) {
        // A closed channel means the worker panicked; surface that at
        // `finish` rather than here.
        let _ = self.tx.send(CaptureFrame { time, packet });
    }

    /// Snapshot of the alerts published so far.
    pub fn alerts_snapshot(&self) -> Vec<Alert> {
        self.alerts.lock().clone()
    }

    /// Closes the input, waits for the worker to drain, and returns all
    /// alerts plus the pipeline counters.
    ///
    /// # Panics
    ///
    /// Panics if the worker thread panicked.
    pub fn finish(self) -> (Vec<Alert>, PipelineStats) {
        drop(self.tx);
        let stats = self.worker.join().expect("ids worker panicked");
        let alerts = Arc::try_unwrap(self.alerts)
            .map(|m| m.into_inner())
            .unwrap_or_else(|arc| arc.lock().clone());
        (alerts, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn sip_frame(payload: &str) -> IpPacket {
        IpPacket::udp(
            Ipv4Addr::new(10, 0, 0, 2),
            5060,
            Ipv4Addr::new(10, 0, 0, 1),
            5060,
            payload.as_bytes().to_vec(),
        )
    }

    #[test]
    fn online_matches_offline() {
        let frames: Vec<(SimTime, IpPacket)> = (0..20)
            .map(|i| {
                (
                    SimTime::from_millis(i),
                    sip_frame("OPTIONS sip:b@lab SIP/2.0\r\nCall-ID: x\r\n\r\n"),
                )
            })
            .collect();

        let mut offline = Scidive::new(ScidiveConfig::default());
        for (t, f) in &frames {
            offline.on_frame(*t, f);
        }

        let online = OnlineScidive::spawn(ScidiveConfig::default(), 4);
        for (t, f) in &frames {
            online.submit(*t, f.clone());
        }
        let (alerts, stats) = online.finish();
        assert_eq!(alerts, offline.alerts());
        assert_eq!(stats.frames, 20);
    }

    #[test]
    fn snapshot_while_running() {
        let online = OnlineScidive::spawn(ScidiveConfig::default(), 4);
        online.submit(
            SimTime::ZERO,
            sip_frame("OPTIONS sip:b@lab SIP/2.0\r\nCall-ID: x\r\n\r\n"),
        );
        // Snapshot is best-effort; finish() is authoritative.
        let _ = online.alerts_snapshot();
        let (alerts, _) = online.finish();
        assert!(!alerts.is_empty());
    }
}
