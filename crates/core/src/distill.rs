//! The Distiller (paper §3.1): raw frames → footprints.
//!
//! "Incoming network flows first pass through the Distiller, which
//! translates packets into protocol dependent information units called
//! Footprints. The Distiller is responsible for doing IP fragmentation,
//! reassembly, decoding protocols, and finally generating the
//! corresponding Footprints."
//!
//! The Distiller itself only handles transport: fragment reassembly,
//! ICMP/non-UDP bodies, and UDP header validation. Application-payload
//! classification is delegated to the [`crate::proto::ProtocolSet`] it
//! was built with, so registering a new protocol module never touches
//! this file.

use crate::footprint::{CorruptReason, Footprint, FootprintBody, PacketMeta};
use crate::proto::ProtocolSet;
use scidive_netsim::frag::Reassembler;
use scidive_netsim::packet::{IpPacket, IpProto};
use scidive_netsim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Distiller configuration.
#[derive(Debug, Clone)]
pub struct DistillerConfig {
    /// Ports treated as SIP signalling.
    pub sip_ports: Vec<u16>,
    /// Port carrying accounting transactions.
    pub acct_port: u16,
    /// How long to hold incomplete IP fragments.
    pub reassembly_timeout: SimDuration,
    /// Run the retained reference implementations (naive SIP tokenizer,
    /// scalar UDP checksum) instead of the SWAR fast paths. Behavior is
    /// byte-identical either way — this exists so the pipeline bench can
    /// measure the pre-optimization baseline on the same harness, and as
    /// a live differential check.
    pub reference_impl: bool,
}

impl Default for DistillerConfig {
    fn default() -> DistillerConfig {
        DistillerConfig {
            sip_ports: vec![5060],
            acct_port: 2427,
            reassembly_timeout: SimDuration::from_secs(30),
            reference_impl: false,
        }
    }
}

/// Counters kept by the Distiller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistillStats {
    /// Frames offered.
    pub frames: u64,
    /// Footprints produced.
    pub footprints: u64,
    /// Fragments buffered awaiting reassembly.
    pub fragments_buffered: u64,
    /// Datagrams reassembled from fragments.
    pub reassembled: u64,
    /// UDP datagrams with bad headers/checksums.
    pub corrupt_udp: u64,
    /// SIP-port payloads that failed to parse.
    pub malformed_sip: u64,
}

/// The Distiller: stateful packet decoding front-end of the IDS.
///
/// # Examples
///
/// ```
/// use scidive_core::distill::{Distiller, DistillerConfig};
/// use scidive_core::footprint::FootprintBody;
/// use scidive_netsim::packet::IpPacket;
/// use scidive_netsim::time::SimTime;
/// use std::net::Ipv4Addr;
///
/// let mut d = Distiller::new(DistillerConfig::default());
/// let pkt = IpPacket::udp(
///     Ipv4Addr::new(10, 0, 0, 1), 5060,
///     Ipv4Addr::new(10, 0, 0, 2), 5060,
///     b"OPTIONS sip:b@10.0.0.2 SIP/2.0\r\nCall-ID: x\r\n\r\n".as_ref(),
/// );
/// let fp = d.distill(SimTime::ZERO, &pkt).expect("complete datagram");
/// assert!(matches!(fp.body, FootprintBody::Sip(_)));
/// ```
#[derive(Debug)]
pub struct Distiller {
    config: DistillerConfig,
    reassembler: Reassembler,
    protocols: ProtocolSet,
    stats: DistillStats,
}

impl Distiller {
    /// Creates a distiller classifying through the default protocol
    /// registry.
    pub fn new(config: DistillerConfig) -> Distiller {
        Distiller::with_protocols(config, ProtocolSet::default())
    }

    /// Creates a distiller classifying through the given protocol
    /// registry.
    pub fn with_protocols(config: DistillerConfig, protocols: ProtocolSet) -> Distiller {
        let reassembler = Reassembler::new(config.reassembly_timeout);
        Distiller {
            config,
            reassembler,
            protocols,
            stats: DistillStats::default(),
        }
    }

    /// Current counters.
    pub fn stats(&self) -> DistillStats {
        self.stats
    }

    /// Offers one frame as seen at the tap; returns the footprint for a
    /// complete datagram, or `None` while fragments accumulate.
    ///
    /// A frame yields at most one footprint, so the result is an
    /// `Option` — not a `Vec` — and the steady-state path performs no
    /// container allocation.
    pub fn distill(&mut self, time: SimTime, pkt: &IpPacket) -> Option<Footprint> {
        self.stats.frames += 1;
        // Whole datagrams — the overwhelming common case — skip the
        // reassembler's clone-and-return round trip; only the timeout
        // sweep it would have run still runs, so partial-drop timing is
        // unchanged. The reference configuration keeps the
        // pre-optimization structure (clone every frame, round-trip
        // through `offer`) so the bench baseline pays the same costs the
        // production path used to.
        if !self.config.reference_impl && !pkt.frag.is_fragment() {
            self.reassembler.expire(time);
            let fp = self.decode(time, pkt);
            self.stats.footprints += 1;
            return Some(fp);
        }
        let was_fragment = pkt.frag.is_fragment();
        let Some(whole) = self.reassembler.offer(time, pkt.clone()) else {
            self.stats.fragments_buffered += 1;
            return None;
        };
        if was_fragment {
            self.stats.reassembled += 1;
        }
        let fp = self.decode(time, &whole);
        self.stats.footprints += 1;
        Some(fp)
    }

    fn decode(&mut self, time: SimTime, pkt: &IpPacket) -> Footprint {
        let mut meta = PacketMeta {
            time,
            src: pkt.src,
            src_port: 0,
            dst: pkt.dst,
            dst_port: 0,
        };
        match pkt.proto {
            IpProto::Icmp => {
                let icmp_type = pkt.payload.first().copied().unwrap_or(0);
                return Footprint {
                    meta,
                    body: FootprintBody::Icmp { icmp_type },
                };
            }
            IpProto::Other(_) => {
                return Footprint {
                    meta,
                    body: FootprintBody::UdpOther { payload_len: pkt.payload.len() },
                };
            }
            IpProto::Udp => {}
        }
        let decoded = if self.config.reference_impl {
            pkt.decode_udp_reference()
        } else {
            pkt.decode_udp()
        };
        let udp = match decoded {
            Ok(udp) => udp,
            Err(e) => {
                self.stats.corrupt_udp += 1;
                return Footprint {
                    meta,
                    body: FootprintBody::UdpCorrupt {
                        reason: CorruptReason::from(&e),
                    },
                };
            }
        };
        meta.src_port = udp.src_port;
        meta.dst_port = udp.dst_port;
        let body = self.classify(&udp.payload, meta);
        Footprint { meta, body }
    }

    /// Application-payload classification, dispatched to the protocol
    /// registry: each module is asked in priority order, first answer
    /// wins. `payload` is the shared datagram buffer, so modules can
    /// slice it zero-copy.
    fn classify(&mut self, payload: &bytes::Bytes, meta: PacketMeta) -> FootprintBody {
        let body = self.protocols.classify(payload, &meta, &self.config);
        if matches!(body, FootprintBody::SipMalformed { .. }) {
            self.stats.malformed_sip += 1;
        }
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use scidive_netsim::frag::fragment;
    use scidive_rtp::rtcp::RtcpPacket;
    use scidive_rtp::source::MediaSource;
    use std::net::Ipv4Addr;

    fn d() -> Distiller {
        Distiller::new(DistillerConfig::default())
    }

    fn a() -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, 1)
    }
    fn b() -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, 2)
    }

    #[test]
    fn classifies_sip_request() {
        let mut dist = d();
        let pkt = IpPacket::udp(a(), 5060, b(), 5060, b"BYE sip:x@h SIP/2.0\r\nCall-ID: c\r\n\r\n".as_ref());
        let fp = dist.distill(SimTime::ZERO, &pkt).unwrap();
        assert!(matches!(&fp.body, FootprintBody::Sip(m) if m.is_request()));
        assert_eq!(fp.meta.dst_port, 5060);
    }

    #[test]
    fn classifies_malformed_sip_on_sip_port() {
        let mut dist = d();
        let pkt = IpPacket::udp(a(), 5060, b(), 5060, b"NOTSIP garbage here\r\n\r\n".as_ref());
        let fp = dist.distill(SimTime::ZERO, &pkt).unwrap();
        assert!(matches!(&fp.body, FootprintBody::SipMalformed { .. }));
        assert_eq!(dist.stats().malformed_sip, 1);
    }

    #[test]
    fn classifies_rtp() {
        let mut dist = d();
        let mut src = MediaSource::new(7, 100, 0);
        let pkt = IpPacket::udp(a(), 8000, b(), 9000, src.next_packet().encode());
        let fp = dist.distill(SimTime::ZERO, &pkt).unwrap();
        assert!(matches!(
            &fp.body,
            FootprintBody::Rtp { header, payload_len: 160 } if header.seq == 100
        ));
    }

    #[test]
    fn classifies_rtcp() {
        let mut dist = d();
        let bye = RtcpPacket::Bye { ssrcs: vec![9] };
        let pkt = IpPacket::udp(a(), 8001, b(), 9001, bye.encode());
        let fp = dist.distill(SimTime::ZERO, &pkt).unwrap();
        assert!(matches!(&fp.body, FootprintBody::Rtcp(RtcpPacket::Bye { .. })));
    }

    #[test]
    fn classifies_acct() {
        let mut dist = d();
        let pkt = IpPacket::udp(a(), 2427, b(), 2427, "ACCT START a@l b@l c9".as_bytes());
        let fp = dist.distill(SimTime::ZERO, &pkt).unwrap();
        assert!(matches!(&fp.body, FootprintBody::Acct(acct) if acct.call_id == "c9"));
    }

    #[test]
    fn classifies_icmp_and_garbage() {
        let mut dist = d();
        let icmp = IpPacket::icmp(a(), b(), &scidive_netsim::packet::IcmpMessage::PortUnreachable);
        let fp = dist.distill(SimTime::ZERO, &icmp).unwrap();
        assert!(matches!(&fp.body, FootprintBody::Icmp { icmp_type: 3 }));

        let garbage = IpPacket::udp(a(), 4444, b(), 8000, vec![0x00u8; 40]);
        let fp = dist.distill(SimTime::ZERO, &garbage).unwrap();
        assert!(matches!(&fp.body, FootprintBody::UdpOther { payload_len: 40 }));
    }

    #[test]
    fn corrupt_udp_detected() {
        let mut dist = d();
        let good = IpPacket::udp(a(), 1, b(), 2, b"payload".as_ref());
        let mut raw = good.payload.to_vec();
        raw[10] ^= 0xff;
        let bad = IpPacket { payload: Bytes::from(raw), ..good };
        let fp = dist.distill(SimTime::ZERO, &bad).unwrap();
        assert!(matches!(&fp.body, FootprintBody::UdpCorrupt { .. }));
        assert_eq!(dist.stats().corrupt_udp, 1);
    }

    #[test]
    fn reassembles_fragmented_sip() {
        // A SIP message whose attack-relevant header sits beyond the
        // first fragment: a per-packet matcher would miss it.
        let mut big_body = String::from("v=0\r\n");
        big_body.push_str(&"a=padding:xxxxxxxxxxxxxxxx\r\n".repeat(40));
        let raw = format!(
            "INVITE sip:b@h SIP/2.0\r\nCall-ID: frag-test\r\nContent-Length: {}\r\n\r\n{}",
            big_body.len(),
            big_body
        );
        let pkt = IpPacket::udp(a(), 5060, b(), 5060, raw.into_bytes()).with_id(77);
        let frags = fragment(&pkt, 256);
        assert!(frags.len() > 2);
        let mut dist = d();
        let mut out = Vec::new();
        for f in &frags {
            out.extend(dist.distill(SimTime::ZERO, f));
        }
        assert_eq!(out.len(), 1);
        assert!(matches!(
            &out[0].body,
            FootprintBody::Sip(m) if m.call_id().unwrap() == "frag-test"
        ));
        assert_eq!(dist.stats().reassembled, 1);
        assert_eq!(dist.stats().fragments_buffered as usize, frags.len() - 1);
    }

    #[test]
    fn off_port_sip_still_recognized() {
        let mut dist = d();
        let pkt = IpPacket::udp(a(), 7777, b(), 7777, b"BYE sip:x@h SIP/2.0\r\nCall-ID: c\r\n\r\n".as_ref());
        let fp = dist.distill(SimTime::ZERO, &pkt).unwrap();
        assert!(matches!(&fp.body, FootprintBody::Sip(_)));
    }

    #[test]
    fn stats_count_frames_and_footprints() {
        let mut dist = d();
        for i in 0..5u16 {
            let pkt = IpPacket::udp(a(), 1000 + i, b(), 9000, vec![0u8; 8]);
            dist.distill(SimTime::ZERO, &pkt);
        }
        assert_eq!(dist.stats().frames, 5);
        assert_eq!(dist.stats().footprints, 5);
    }
}
