//! Golden-message tests for every DSL diagnostic.
//!
//! Each lexer, parser, and validator error (and each validator warning)
//! is pinned down to its exact span (`line`, `col`, `len`), message,
//! and hint. These are the strings operators see when a `.scid` file is
//! rejected — changing any of them is a user-visible change and must
//! show up here.

use scidive_core::event::EventClass;
use scidive_core::rules::{Diagnostic, Program};

/// Asserts that `src` fails with exactly this diagnostic.
#[track_caller]
fn expect_err(src: &str, line: usize, col: usize, len: usize, message: &str, hint: Option<&str>) {
    let err = Program::parse(src).expect_err("program unexpectedly compiled");
    let want = Diagnostic {
        line,
        col,
        len,
        message: message.to_string(),
        hint: hint.map(str::to_string),
    };
    assert_eq!(err, want, "\nsource: {src:?}\nrendered:\n{}", err.render(src));
}

/// Asserts that `src` compiles but produces exactly this warning.
#[track_caller]
fn expect_warning(
    src: &str,
    line: usize,
    col: usize,
    len: usize,
    message: &str,
    hint: Option<&str>,
) {
    let (_, warnings) = Program::check(src).expect("program should compile");
    let want = Diagnostic {
        line,
        col,
        len,
        message: message.to_string(),
        hint: hint.map(str::to_string),
    };
    assert_eq!(warnings, vec![want], "\nsource: {src:?}");
}

// ---------------------------------------------------------------- lexer

#[test]
fn unterminated_string_literal() {
    expect_err(
        "emit \"oops",
        1,
        6,
        5,
        "string literal is not closed",
        Some("close it with `\"` on the same line"),
    );
}

#[test]
fn lone_equals_is_not_an_operator() {
    expect_err(
        "rule x { any-of A(f = 1) }",
        1,
        21,
        1,
        "unexpected character `=`",
        Some("comparison operators are == != >= <= > <"),
    );
}

#[test]
fn stray_punctuation_is_rejected() {
    expect_err("rule x;", 1, 7, 1, "unexpected character `;`", None);
}

// --------------------------------------------------------------- parser

#[test]
fn top_level_must_start_with_rule() {
    expect_err(
        "sequence A",
        1,
        1,
        8,
        "expected `rule <id> [severity <s>] [window <dur>] {`",
        None,
    );
}

#[test]
fn missing_rule_id_before_brace() {
    expect_err("rule {", 1, 6, 1, "missing rule id", None);
}

#[test]
fn missing_rule_id_at_eof() {
    expect_err("rule", 1, 5, 1, "missing rule id", None);
}

#[test]
fn unknown_severity_word() {
    expect_err(
        "rule x severity loud { any-of A }",
        1,
        17,
        4,
        "unknown severity `loud`",
        Some("info | warning | critical"),
    );
}

#[test]
fn bad_window_duration() {
    expect_err(
        "rule x window 5 { any-of A }",
        1,
        15,
        1,
        "bad duration `5`",
        Some("use e.g. 500ms, 2s"),
    );
}

#[test]
fn unknown_header_key() {
    expect_err(
        "rule x frequency 5 { any-of A }",
        1,
        8,
        9,
        "unknown header key `frequency`",
        Some("severity | window"),
    );
}

#[test]
fn punctuation_cannot_open_the_body() {
    expect_err(
        "rule x , { any-of A }",
        1,
        8,
        1,
        "expected `{` to open the rule body",
        Some("severity | window"),
    );
}

#[test]
fn unterminated_rule_block() {
    expect_err("rule x {", 1, 9, 1, "rule `x` is not closed with `}`", None);
}

#[test]
fn header_value_missing_at_eof() {
    expect_err(
        "rule x severity",
        1,
        16,
        1,
        "rule `x` is not closed with `}` (`severity` needs a value)",
        None,
    );
}

#[test]
fn header_key_without_value() {
    expect_err(
        "rule x severity { any-of A }",
        1,
        17,
        1,
        "`severity` needs a value",
        None,
    );
}

#[test]
fn empty_rule_body() {
    expect_err("rule x { }", 1, 10, 1, "rule body is empty", None);
}

#[test]
fn clause_keyword_must_be_a_word() {
    expect_err(
        "rule x { , }",
        1,
        10,
        1,
        "expected a clause keyword",
        Some("sequence | all-of | any-of | threshold"),
    );
}

#[test]
fn unknown_body_kind() {
    expect_err(
        "rule x { when A }",
        1,
        10,
        4,
        "unknown body kind `when`",
        Some("sequence | all-of | any-of | threshold"),
    );
}

#[test]
fn class_list_cannot_be_empty() {
    expect_err("rule x { sequence }", 1, 19, 1, "no event classes listed", None);
}

#[test]
fn class_name_must_be_a_word() {
    expect_err(
        "rule x { sequence , }",
        1,
        19,
        1,
        "expected an event class name",
        None,
    );
}

#[test]
fn predicate_list_needs_comma_or_close() {
    expect_err(
        "rule x { any-of A(delta >= 5 { }",
        1,
        30,
        1,
        "expected `,` or `)` after a predicate",
        None,
    );
}

#[test]
fn predicate_field_must_be_a_word() {
    expect_err(
        "rule x { any-of A(, }",
        1,
        19,
        1,
        "expected a field name",
        None,
    );
}

#[test]
fn predicate_needs_a_comparison_operator() {
    expect_err(
        "rule x { any-of A(delta near 5) }",
        1,
        25,
        4,
        "expected a comparison operator",
        Some("== != >= <= > < contains"),
    );
}

#[test]
fn unquoted_text_value_is_rejected_with_a_hint() {
    expect_err(
        "rule x { any-of A(delta == five) }",
        1,
        28,
        4,
        "expected a number or quoted string, got `five`",
        Some("quote text values: caller == \"alice@lab\""),
    );
}

#[test]
fn predicate_value_must_be_number_or_string() {
    expect_err(
        "rule x { any-of A(delta == () }",
        1,
        28,
        1,
        "expected a number or quoted string",
        None,
    );
}

#[test]
fn one_clause_per_rule() {
    expect_err(
        "rule x { any-of A any-of B }",
        1,
        19,
        6,
        "expected `}` (one clause per rule)",
        None,
    );
}

const THRESHOLD_GRAMMAR: &str = "threshold <Class> by <field> count >= <N> \
                                 [distinct <field> >= <M>] within <dur> [emit \"...\"]";

#[test]
fn threshold_requires_by() {
    expect_err(
        "rule x { threshold A from caller count >= 5 within 60s }",
        1,
        22,
        4,
        "expected `by`",
        Some(THRESHOLD_GRAMMAR),
    );
}

#[test]
fn threshold_comparisons_are_ge_only() {
    expect_err(
        "rule x { threshold A by caller count > 5 within 60s }",
        1,
        38,
        1,
        "threshold comparisons use `>=`",
        None,
    );
}

#[test]
fn threshold_count_must_be_numeric() {
    expect_err(
        "rule x { threshold A by caller count >= many within 60s }",
        1,
        41,
        4,
        "expected a number, got `many`",
        None,
    );
}

#[test]
fn threshold_within_needs_a_duration() {
    expect_err(
        "rule x { threshold A by caller count >= 5 within soon }",
        1,
        50,
        4,
        "bad duration `soon`",
        Some("use e.g. 500ms, 2s"),
    );
}

#[test]
fn emit_template_must_be_quoted() {
    expect_err(
        "rule x { threshold A by caller count >= 5 within 60s emit busy }",
        1,
        59,
        4,
        "`emit` needs a quoted template",
        Some("emit \"caller {key} crossed {count} in {window}s\""),
    );
}

// ------------------------------------------------------------ validator

fn class_list_hint() -> String {
    format!(
        "one of: {}",
        EventClass::ALL
            .iter()
            .map(|c| c.name())
            .collect::<Vec<_>>()
            .join(", ")
    )
}

#[test]
fn unknown_event_class_lists_all_classes() {
    expect_err(
        "rule x { sequence NotAClass }",
        1,
        19,
        9,
        "unknown event class `NotAClass`",
        Some(&class_list_hint()),
    );
}

#[test]
fn unknown_field_lists_the_class_fields() {
    expect_err(
        "rule x { any-of CallEstablished(direction == \"in\") }",
        1,
        33,
        9,
        "unknown field `direction` for CallEstablished",
        Some("fields of CallEstablished: caller, callee"),
    );
}

#[test]
fn predicates_are_any_of_only() {
    expect_err(
        "rule x { sequence CallTornDown(by_aor == \"a\"), OrphanRtpAfterBye }",
        1,
        32,
        6,
        "field predicates are only supported in any-of clauses",
        Some("move the predicate into an `any-of` rule"),
    );
}

#[test]
fn numeric_field_rejects_string_value() {
    expect_err(
        "rule x { any-of RtpSeqViolation(delta == \"big\") }",
        1,
        42,
        5,
        "field `delta` is a number; compare it to a number",
        None,
    );
}

#[test]
fn text_field_rejects_numeric_value() {
    expect_err(
        "rule x { any-of CallEstablished(caller == 5) }",
        1,
        43,
        1,
        "field `caller` is text; compare it to a quoted string",
        None,
    );
}

#[test]
fn contains_needs_a_text_field() {
    expect_err(
        "rule x { any-of RtpSeqViolation(delta contains 5) }",
        1,
        39,
        8,
        "`contains` needs a text field",
        None,
    );
}

#[test]
fn ordering_comparison_needs_a_numeric_field() {
    expect_err(
        "rule x { any-of CallEstablished(caller >= \"a\") }",
        1,
        40,
        2,
        "ordering comparison `>=` needs a numeric field",
        None,
    );
}

#[test]
fn ip_fields_only_support_equality() {
    expect_err(
        "rule x { any-of CallTornDown(by_media_ip > \"10.0.0.9\") }",
        1,
        42,
        1,
        "only `==` and `!=` apply to an IP field",
        None,
    );
}

#[test]
fn duplicate_rule_ids_are_rejected() {
    expect_err(
        "rule x { any-of SipMalformed }\nrule x { any-of SipMalformed }",
        2,
        6,
        1,
        "duplicate rule id `x`",
        None,
    );
}

#[test]
fn all_of_is_capped_at_64_classes() {
    let src = format!(
        "rule big {{ all-of {} }}",
        vec!["SipMalformed"; 65].join(", ")
    );
    expect_err(&src, 1, 6, 3, "all-of lists more than 64 classes", None);
}

#[test]
fn threshold_key_field_must_be_text() {
    expect_err(
        "rule x { threshold RtpSeqViolation by delta count >= 5 within 60s }",
        1,
        39,
        5,
        "threshold key field `delta` must be text",
        Some("key the window by an identity, not a measurement"),
    );
}

#[test]
fn count_threshold_must_be_positive() {
    expect_err(
        "rule x { threshold CallEstablished by caller count >= 0 within 60s }",
        1,
        55,
        1,
        "count threshold must be at least 1",
        None,
    );
}

#[test]
fn distinct_threshold_is_capped() {
    expect_err(
        "rule x { threshold CallEstablished by caller count >= 5 distinct callee >= 65 within 60s }",
        1,
        76,
        2,
        "distinct threshold 65 exceeds the maximum 64",
        Some("the exact-mode probe buffer is fixed-size"),
    );
}

#[test]
fn distinct_threshold_must_be_positive() {
    expect_err(
        "rule x { threshold CallEstablished by caller count >= 5 distinct callee >= 0 within 60s }",
        1,
        76,
        1,
        "distinct threshold must be at least 1",
        None,
    );
}

#[test]
fn unknown_emit_placeholder() {
    expect_err(
        "rule x { threshold CallEstablished by caller count >= 5 within 60s emit \"caller {who}\" }",
        1,
        73,
        14,
        "unknown placeholder `{who}` in emit template",
        Some("placeholders: {key}, {count}, {distinct}, {window}"),
    );
}

// ------------------------------------------------------------- warnings

#[test]
fn window_on_any_of_warns() {
    expect_warning(
        "rule x window 5s { any-of SipMalformed }",
        1,
        15,
        2,
        "rule `x`: `window` has no effect on an any-of clause",
        Some("any-of fires on the first match; drop the header"),
    );
}

#[test]
fn window_on_threshold_warns() {
    expect_warning(
        "rule x window 5s { threshold CallEstablished by caller count >= 5 within 60s }",
        1,
        15,
        2,
        "rule `x`: `window` has no effect on a threshold clause",
        Some("the sliding window comes from `within`"),
    );
}

// ------------------------------------------------------------ rendering

#[test]
fn display_includes_location_and_hint() {
    let err = Program::parse("rule x severity loud { any-of A }").unwrap_err();
    assert_eq!(
        err.to_string(),
        "line 1, col 17: unknown severity `loud` (hint: info | warning | critical)"
    );
}

#[test]
fn render_golden_output() {
    let src = "rule broken {\n    sequence NotAClass\n}\n";
    let err = Program::parse(src).unwrap_err();
    let expected = format!(
        "error: unknown event class `NotAClass`\n\
         --> line 2\n\
         |     sequence NotAClass\n\
         |              ^^^^^^^^^\n\
         = hint: {}\n",
        class_list_hint()
    );
    // `render` indents the gutter; normalize leading whitespace per line.
    let rendered = err.render(src);
    let got: Vec<&str> = rendered.lines().map(str::trim_start).collect();
    let want: Vec<&str> = expected.lines().map(str::trim_start).collect();
    assert_eq!(got, want);
}
