//! Property-based tests for the IDS core: the Distiller is total over
//! arbitrary bytes, trail accounting balances, metric identities hold,
//! routing is stable, and the sharded pipeline is shard-count
//! invariant over random interleaved SIP/RTP schedules.

use proptest::prelude::*;
use scidive_core::alert::{Alert, Severity};
use scidive_core::distill::{Distiller, DistillerConfig};
use scidive_core::engine::{Scidive, ScidiveConfig};
use scidive_core::event::{Event, EventClass, EventKind, FlowKey};
use scidive_core::footprint::{Footprint, FootprintBody, PacketMeta};
use scidive_core::metrics::{DetectionReport, InjectedAttack};
use scidive_core::rate::RateHub;
use scidive_core::routing::SessionRouter;
use scidive_core::rules::{AlertSink, CompiledRuleset, Rule, RuleCtx, RuleInterest};
use scidive_core::shard::ShardedScidive;
use scidive_core::trail::{SessionKey, TrailStore, TrailStoreConfig};
use scidive_netsim::packet::IpPacket;
use scidive_netsim::time::SimTime;
use scidive_rtp::packet::{RtpHeader, RtpPacket};
use scidive_sip::header::{CSeq, HeaderName, NameAddr, Via};
use scidive_sip::method::Method;
use scidive_sip::msg::{response_to, RequestBuilder, SipMessage};
use scidive_sip::sdp::SessionDescription;
use scidive_sip::status::StatusCode;
use std::collections::HashMap;
use std::net::Ipv4Addr;

fn ip() -> impl Strategy<Value = Ipv4Addr> {
    (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Ipv4Addr::new(10, a, 0, b))
}

proptest! {
    #[test]
    fn distiller_is_total_over_arbitrary_udp(
        src in ip(), dst in ip(),
        sport in any::<u16>(), dport in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut d = Distiller::new(DistillerConfig::default());
        let pkt = IpPacket::udp(src, sport, dst, dport, payload);
        let fp = d.distill(SimTime::ZERO, &pkt);
        // Unfragmented input: exactly one footprint, meta preserved.
        prop_assert!(fp.is_some());
        let fp = fp.unwrap();
        prop_assert_eq!(fp.meta.src, src);
        prop_assert_eq!(fp.meta.dst, dst);
        prop_assert_eq!(fp.meta.src_port, sport);
        prop_assert_eq!(fp.meta.dst_port, dport);
    }

    #[test]
    fn engine_never_panics_on_arbitrary_frames(
        frames in proptest::collection::vec(
            (any::<u16>(), any::<u16>(), proptest::collection::vec(any::<u8>(), 0..128)),
            0..40,
        ),
    ) {
        let mut ids = Scidive::new(ScidiveConfig::default());
        for (i, (sport, dport, payload)) in frames.iter().enumerate() {
            let pkt = IpPacket::udp(
                Ipv4Addr::new(10, 0, 0, 1),
                *sport,
                Ipv4Addr::new(10, 0, 0, 2),
                *dport,
                payload.clone(),
            );
            ids.on_frame(SimTime::from_millis(i as u64), &pkt);
        }
        let stats = ids.stats();
        prop_assert_eq!(stats.frames, frames.len() as u64);
        prop_assert!(stats.footprints <= stats.frames);
        prop_assert_eq!(stats.alerts as usize, ids.alerts().len());
    }

    #[test]
    fn trail_store_accounting_balances(
        inserts in proptest::collection::vec((any::<u16>(), any::<u16>(), any::<u16>()), 1..300),
        cap in 1usize..64,
    ) {
        let mut store = TrailStore::new(TrailStoreConfig {
            max_footprints_per_trail: cap,
            ..TrailStoreConfig::default()
        });
        for (i, (port, seq, _)) in inserts.iter().enumerate() {
            let fp = Footprint {
                meta: PacketMeta {
                    time: SimTime::from_millis(i as u64),
                    src: Ipv4Addr::new(10, 0, 0, 3),
                    src_port: 9000,
                    dst: Ipv4Addr::new(10, 0, 0, 2),
                    dst_port: *port,
                    },
                body: FootprintBody::Rtp {
                    header: RtpHeader::new(0, *seq, 0, 1),
                    payload_len: 160,
                },
            };
            store.insert(fp);
        }
        let stats = store.stats();
        prop_assert_eq!(stats.inserted, inserts.len() as u64);
        // retained + evicted == inserted (no idle expiry at these times).
        prop_assert_eq!(
            store.footprint_count() as u64 + stats.evicted,
            stats.inserted
        );
        // Every trail honours the cap.
        for port in inserts.iter().map(|(p, _, _)| *p) {
            let key = scidive_core::trail::TrailKey {
                session: scidive_core::trail::SessionKey::new(
                    format!("flow-10.0.0.2:{port}"),
                ),
                proto: scidive_core::footprint::TrailProto::Rtp,
            };
            if let Some(trail) = store.trail(&key) {
                prop_assert!(trail.len() <= cap);
            }
        }
    }

    #[test]
    fn detection_report_identity(
        n_attacks in 0usize..6,
        n_alerts in 0usize..6,
        offsets in proptest::collection::vec(any::<u64>(), 0..12),
    ) {
        let attacks: Vec<InjectedAttack> = (0..n_attacks)
            .map(|i| InjectedAttack::new(
                "bye-attack",
                SimTime::from_millis(*offsets.get(i).unwrap_or(&0) % 1000),
            ))
            .collect();
        let alerts: Vec<Alert> = (0..n_alerts)
            .map(|i| Alert::new(
                "bye-attack",
                Severity::Critical,
                SimTime::from_millis(*offsets.get(i + n_attacks).unwrap_or(&0) % 1000),
                None,
                "x",
            ))
            .collect();
        let report = DetectionReport::evaluate(&alerts, &attacks);
        // Identities: detected + missed = injected; every alert is either
        // credited to an attack or a false alarm.
        prop_assert_eq!(report.detected_count() + report.missed_count(), n_attacks);
        prop_assert_eq!(
            report.detected_count() + report.false_alarms.len(),
            n_alerts.max(report.detected_count())
        );
        // Delays are never negative.
        for o in &report.outcomes {
            if let Some(d) = o.delay() {
                prop_assert!(d.as_micros() < u64::MAX);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Random interleaved SIP/RTP schedules.
//
// A schedule is a list of (call, op, noise) triples lowered to concrete
// frames by a per-call dialog state machine, so every generated capture
// is causally well-formed: media only flows to sinks that were already
// announced in SDP, or to sinks that are *never* announced (pure
// noise). That restriction mirrors the documented sharding caveat —
// RTP that races its own announcement may split generator-local state
// across shards — and keeps the differential property exact.
// ---------------------------------------------------------------------------

/// One randomly chosen schedule step, before lowering.
type Op = (usize, u8, u16);

const CALLS: usize = 4;

fn caller_ip(call: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 1, call as u8 + 1)
}

fn callee_ip(call: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 2, call as u8 + 1)
}

fn caller_media_port(call: usize) -> u16 {
    8000 + 2 * call as u16
}

fn callee_media_port(call: usize) -> u16 {
    9000 + 2 * call as u16
}

fn sip_frame(src: Ipv4Addr, dst: Ipv4Addr, msg: &SipMessage) -> IpPacket {
    IpPacket::udp(src, 5060, dst, 5060, msg.to_bytes())
}

fn invite_msg(call: usize) -> SipMessage {
    let sdp = SessionDescription::audio_offer("alice", caller_ip(call), caller_media_port(call));
    let mut b = RequestBuilder::new(Method::Invite, "sip:bob@lab".parse().unwrap());
    b.from(NameAddr::new("sip:alice@lab".parse().unwrap()).with_tag("a"))
        .to(NameAddr::new("sip:bob@lab".parse().unwrap()))
        .call_id(format!("prop-call-{call}"))
        .cseq(CSeq::new(1, Method::Invite))
        .via(Via::udp("10.0.1.1:5060", "z9hG4bK-p"))
        .body("application/sdp", sdp.to_string());
    b.build()
}

fn invite_packet(call: usize) -> IpPacket {
    sip_frame(caller_ip(call), callee_ip(call), &invite_msg(call))
}

/// 200 OK answering the INVITE, carrying the callee's SDP answer.
fn ok_packet(call: usize) -> IpPacket {
    let sdp = SessionDescription::audio_offer("bob", callee_ip(call), callee_media_port(call));
    let mut resp = response_to(&invite_msg(call), StatusCode::OK, Some("b"));
    resp.headers.set(HeaderName::ContentType, "application/sdp");
    resp.body = sdp.to_string().into();
    sip_frame(callee_ip(call), caller_ip(call), &resp)
}

fn bye_packet(call: usize) -> IpPacket {
    let mut b = RequestBuilder::new(Method::Bye, "sip:bob@lab".parse().unwrap());
    b.from(NameAddr::new("sip:alice@lab".parse().unwrap()).with_tag("a"))
        .to(NameAddr::new("sip:bob@lab".parse().unwrap()).with_tag("b"))
        .call_id(format!("prop-call-{call}"))
        .cseq(CSeq::new(2, Method::Bye))
        .via(Via::udp("10.0.1.1:5060", "z9hG4bK-q"));
    sip_frame(caller_ip(call), callee_ip(call), &b.build())
}

fn rtp_packet(src: Ipv4Addr, sport: u16, dst: Ipv4Addr, dport: u16, seq: u16, ssrc: u32) -> IpPacket {
    let pkt = RtpPacket::new(RtpHeader::new(0, seq, seq as u32 * 160, ssrc), vec![0u8; 160]);
    IpPacket::udp(src, sport, dst, dport, pkt.encode())
}

/// RTP to a sink no SDP ever announces: always unattributable, always
/// the overflow shard.
fn noise_rtp(noise: u16, seq: u16) -> IpPacket {
    rtp_packet(
        Ipv4Addr::new(10, 9, 1, 1),
        7000,
        Ipv4Addr::new(10, 9, 0, noise as u8),
        40000 + noise % 1000,
        seq,
        0x9999,
    )
}

/// Non-RTP garbage to an equally never-announced sink.
fn garbage_udp(noise: u16) -> IpPacket {
    IpPacket::udp(
        Ipv4Addr::new(10, 9, 1, 2),
        7001,
        Ipv4Addr::new(10, 9, 0, noise as u8),
        41000 + noise % 1000,
        b"not media, not signalling".as_ref(),
    )
}

/// REGISTER from a rotating set of users: exercises the identity plane
/// (learning, registration windows) that lives in the dispatcher.
fn register_packet(noise: u16) -> IpPacket {
    let user = noise % 8;
    let src = Ipv4Addr::new(10, 3, user as u8, 1);
    let mut b = RequestBuilder::new(Method::Register, "sip:lab".parse().unwrap());
    b.from(NameAddr::new(format!("sip:user{user}@lab").parse().unwrap()).with_tag("r"))
        .to(NameAddr::new(format!("sip:user{user}@lab").parse().unwrap()))
        .call_id(format!("reg-{user}"))
        .cseq(CSeq::new(1, Method::Register))
        .via(Via::udp("10.3.0.1:5060", "z9hG4bK-s"))
        .contact(NameAddr::new(format!("sip:user{user}@{src}").parse().unwrap()))
        .expires(3600);
    sip_frame(src, Ipv4Addr::new(10, 0, 0, 100), &b.build())
}

/// Lowers a random op list to a causally well-formed capture with
/// strictly monotone timestamps.
fn schedule_frames(ops: &[Op]) -> Vec<(SimTime, IpPacket)> {
    // Dialog phase per call: 0 idle, 1 invited (caller SDP announced),
    // 2 established (both SDPs announced), 3 torn down.
    let mut phase = [0u8; CALLS];
    let mut frames = Vec::new();
    for (step, &(call, kind, noise)) in ops.iter().enumerate() {
        let seq = step as u16;
        let pkt = match kind {
            0 => match phase[call] {
                0 => {
                    phase[call] = 1;
                    Some(invite_packet(call))
                }
                1 => {
                    phase[call] = 2;
                    Some(ok_packet(call))
                }
                2 => {
                    phase[call] = 3;
                    Some(bye_packet(call))
                }
                _ => None,
            },
            // Media toward the caller's sink: valid once the INVITE
            // announced it.
            1 if phase[call] >= 1 => Some(rtp_packet(
                callee_ip(call),
                callee_media_port(call),
                caller_ip(call),
                caller_media_port(call),
                seq,
                0x1000 + call as u32,
            )),
            // Media toward the callee's sink: valid once the 200 OK
            // answered.
            2 if phase[call] >= 2 => Some(rtp_packet(
                caller_ip(call),
                caller_media_port(call),
                callee_ip(call),
                callee_media_port(call),
                seq,
                0x2000 + call as u32,
            )),
            3 => Some(noise_rtp(noise, seq)),
            4 => Some(garbage_udp(noise)),
            5 => Some(register_packet(noise)),
            _ => None,
        };
        if let Some(p) = pkt {
            frames.push((SimTime::from_millis(10 * step as u64 + 1), p));
        }
    }
    frames
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0usize..CALLS, 0u8..6, any::<u16>()), 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Routing stability: the dispatcher's session resolution is
    /// deterministic, agrees with the trail store's keying (the two
    /// views of "which session does this footprint belong to" never
    /// diverge), and every footprint of a session lands on the same
    /// shard for the whole capture.
    #[test]
    fn routing_is_stable_over_random_schedules(ops in ops()) {
        let frames = schedule_frames(&ops);
        let mut router_a = SessionRouter::new(5);
        let mut router_b = SessionRouter::new(5);
        let mut store = TrailStore::new(TrailStoreConfig::default());
        let mut distiller = Distiller::new(DistillerConfig::default());
        let mut pinned: HashMap<SessionKey, usize> = HashMap::new();
        for (t, pkt) in &frames {
            if let Some(fp) = distiller.distill(*t, pkt) {
                let da = router_a.route(&fp);
                let db = router_b.route(&fp);
                prop_assert_eq!(&da, &db);
                let (_, key) = store.insert(fp);
                prop_assert_eq!(&da.session, &key.session);
                if let Some(prev) = pinned.insert(da.session.clone(), da.shard) {
                    prop_assert_eq!(prev, da.shard);
                }
            }
        }
    }

    /// Shard-count invariance: replaying any causally well-formed
    /// random schedule through `ShardedScidive` yields the same alert
    /// stream and the same summed counters as a single `Scidive`, for
    /// every shard count — including a prime that divides nothing.
    #[test]
    fn random_schedules_are_shard_count_invariant(ops in ops()) {
        let frames = schedule_frames(&ops);
        let mut single = Scidive::new(ScidiveConfig::default());
        for (t, pkt) in &frames {
            single.on_frame(*t, pkt);
        }
        for shards in [1usize, 2, 5] {
            let mut sharded = ShardedScidive::new(ScidiveConfig::default(), shards, 16);
            for (t, pkt) in &frames {
                sharded.submit(*t, pkt);
            }
            let report = sharded.finish();
            prop_assert_eq!(&report.alerts[..], single.alerts());
            prop_assert_eq!(report.stats, single.stats());
            prop_assert_eq!(report.dispatch.dropped, 0);
            prop_assert_eq!(report.dispatch.frames, frames.len() as u64);
        }
    }
}

// ---------------------------------------------------------------------------
// Protocol-module registry: classification over random payloads to every
// registered port is total (never panics), deterministic, and
// independent of the order modules were registered in.
// ---------------------------------------------------------------------------

use bytes::Bytes;
use scidive_core::proto::{
    acct::AcctModule, mgcp::MgcpModule, rtcp::RtcpModule, rtp::RtpModule, sip::SipModule,
    ProtocolSet, ProtocolSetBuilder,
};

fn registry_forward() -> ProtocolSet {
    ProtocolSetBuilder::empty()
        .register(Box::new(SipModule::new()))
        .register(Box::new(RtpModule::new()))
        .register(Box::new(RtcpModule::new()))
        .register(Box::new(AcctModule::new()))
        .register(Box::new(MgcpModule::new()))
        .build()
}

fn registry_reverse() -> ProtocolSet {
    ProtocolSetBuilder::empty()
        .register(Box::new(MgcpModule::new()))
        .register(Box::new(AcctModule::new()))
        .register(Box::new(RtcpModule::new()))
        .register(Box::new(RtpModule::new()))
        .register(Box::new(SipModule::new()))
        .build()
}

proptest! {
    /// Every registered port (SIP 5060, RTP/RTCP media pair, accounting
    /// 2427, MGCP 2727) plus arbitrary ports, fed arbitrary bytes:
    /// classification never panics, is a pure function of the input,
    /// and two registries built from opposite registration orders agree
    /// byte-for-byte — explicit priority, not Vec order, decides.
    #[test]
    fn classification_is_total_deterministic_and_order_independent(
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        port_pick in 0usize..8,
        arbitrary_port in any::<u16>(),
        sport in any::<u16>(),
        src in ip(), dst in ip(),
    ) {
        let ports = [5060u16, 8000, 8001, 9001, 2427, 2727, 40000, arbitrary_port];
        let dst_port = ports[port_pick];
        let meta = PacketMeta {
            time: SimTime::from_millis(1),
            src,
            src_port: sport,
            dst,
            dst_port,
        };
        let bytes = Bytes::from(payload);
        let cfg = DistillerConfig::default();
        let forward = registry_forward();
        let reverse = registry_reverse();
        prop_assert_eq!(forward.names(), reverse.names());
        let a = forward.classify(&bytes, &meta, &cfg);
        let b = forward.classify(&bytes, &meta, &cfg);
        prop_assert_eq!(&a, &b, "classification is not deterministic");
        let c = reverse.classify(&bytes, &meta, &cfg);
        prop_assert_eq!(&a, &c, "registration order changed classification");
        // Attribution stays with whichever module owns the body in
        // both registries — the dispatch target is order-independent
        // too.
        prop_assert_eq!(
            forward.module_for(&a).name(),
            reverse.module_for(&c).name()
        );
    }
}

// ---------------------------------------------------------------------------
// Compiled rule dispatch: a rule subscribed to a random subset of event
// classes sees exactly the events of those classes, in stream order.
// ---------------------------------------------------------------------------

/// The event-class pool the dispatch property draws from.
const DISPATCH_CLASSES: [EventClass; 6] = [
    EventClass::CallEstablished,
    EventClass::CallTornDown,
    EventClass::RtpSeqViolation,
    EventClass::SipMalformed,
    EventClass::MediaPortGarbage,
    EventClass::RtpUnknownSource,
];

/// A synthetic event of the pool class `which`, stamped with `step` so
/// each event in a stream is distinguishable.
fn synthetic_event(which: u8, step: usize) -> Event {
    let flow = FlowKey {
        src: Ipv4Addr::new(10, 0, 0, 3),
        dst: Ipv4Addr::new(10, 0, 0, 2),
        dst_port: 8000,
    };
    let kind = match which % 6 {
        0 => EventKind::CallEstablished {
            caller: "a@lab".to_string(),
            callee: "b@lab".to_string(),
        },
        1 => EventKind::CallTornDown {
            by_aor: "a@lab".to_string(),
            by_media_ip: None,
        },
        2 => EventKind::RtpSeqViolation { flow, delta: 7000 },
        3 => EventKind::SipMalformed {
            violations: vec!["missing Via".to_string()],
            src: Ipv4Addr::new(10, 0, 0, 9),
        },
        4 => EventKind::MediaPortGarbage {
            sink: (Ipv4Addr::new(10, 0, 0, 2), 8000),
            reason: "short".to_string(),
        },
        _ => EventKind::RtpUnknownSource { flow },
    };
    Event {
        time: SimTime::from_millis(step as u64),
        session: Some(SessionKey::new(format!("s{}", step % 3))),
        kind,
    }
}

/// Records every event offered to it; `classes` empty means "all"
/// (the [`RuleInterest::all`] escape hatch).
struct RecorderRule {
    classes: Vec<EventClass>,
    seen: std::rc::Rc<std::cell::RefCell<Vec<(SimTime, EventClass)>>>,
}

impl Rule for RecorderRule {
    fn id(&self) -> &str {
        "recorder"
    }

    fn description(&self) -> &str {
        "records offered events"
    }

    fn is_cross_protocol(&self) -> bool {
        false
    }

    fn is_stateful(&self) -> bool {
        false
    }

    fn interests(&self) -> RuleInterest {
        if self.classes.is_empty() {
            RuleInterest::all()
        } else {
            RuleInterest::of(&self.classes)
        }
    }

    fn on_event(&mut self, ev: &Event, _ctx: &RuleCtx<'_>, _sink: &mut AlertSink<'_>) {
        self.seen.borrow_mut().push((ev.time, ev.class()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The compiled dispatch table offers a rule exactly the events of
    /// its subscribed classes, in stream order — and a rule with the
    /// "all" escape hatch sees the entire stream.
    #[test]
    fn compiled_dispatch_offers_exactly_the_subscribed_classes(
        stream in proptest::collection::vec(0u8..6, 1..80),
        mask in any::<u8>(),
    ) {
        let subscribed: Vec<EventClass> = DISPATCH_CLASSES
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, c)| *c)
            .collect();
        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let rule = RecorderRule {
            classes: subscribed.clone(),
            seen: seen.clone(),
        };
        let mut ruleset = CompiledRuleset::new(vec![Box::new(rule)], false);
        let store = TrailStore::new(TrailStoreConfig::default());
        let rates = RateHub::default();
        let mut scratch = Vec::new();
        for (step, which) in stream.iter().enumerate() {
            let ev = synthetic_event(*which, step);
            let ctx = RuleCtx { now: ev.time, trails: &store, rates: &rates };
            ruleset.dispatch(&ev, &ctx, &mut AlertSink::new(&mut scratch));
        }
        let expected: Vec<(SimTime, EventClass)> = stream
            .iter()
            .enumerate()
            .map(|(step, which)| {
                let ev = synthetic_event(*which, step);
                (ev.time, ev.class())
            })
            .filter(|(_, class)| subscribed.is_empty() || subscribed.contains(class))
            .collect();
        prop_assert_eq!(seen.borrow().clone(), expected);
        // The exact eval counter agrees with what the rule observed.
        prop_assert_eq!(
            ruleset.rule_evals()[0].evals as usize,
            seen.borrow().len()
        );
    }
}

// ----------------------------------------------------------------------
// Rate primitives vs exact oracles
// ----------------------------------------------------------------------

use scidive_core::rate::{CountMinSketch, WindowedSketch};
use scidive_netsim::time::SimDuration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Count-min with conservative update against an exact `HashMap`
    /// oracle over random event streams: estimates never undercount
    /// (hard, per key), and the classical (ε, δ) bound — an estimate
    /// exceeds its true count by more than ε·N with probability at most
    /// δ — holds as a per-case violation budget over the probed keys.
    #[test]
    fn count_min_never_undercounts_and_meets_its_error_bound(
        keys in proptest::collection::vec(0u64..512, 1..800),
        seed in any::<u64>(),
    ) {
        let (epsilon, delta) = (0.01, 0.02);
        let mut cms = CountMinSketch::with_error(epsilon, delta, seed);
        let mut exact: HashMap<u64, u32> = HashMap::new();
        for &k in &keys {
            let est = cms.observe(k);
            let e = exact.entry(k).or_insert(0);
            *e += 1;
            // observe() returns the post-increment estimate.
            prop_assert!(est >= *e, "undercount for {}: {} < {}", k, est, *e);
        }
        let n = keys.len() as f64;
        let mut violations = 0usize;
        for (&k, &count) in &exact {
            let est = cms.estimate(k);
            prop_assert!(est >= count, "undercount for {}: {} < {}", k, est, count);
            if f64::from(est - count) > epsilon * n {
                violations += 1;
            }
        }
        // Expected violations ≤ δ·keys; budget one extra for small
        // populations so the test is a gate, not a coin flip.
        let budget = (delta * exact.len() as f64).ceil() as usize + 1;
        prop_assert!(
            violations <= budget,
            "{} of {} keys broke the ε-bound (budget {})",
            violations,
            exact.len(),
            budget
        );
    }

    /// A single-key windowed sketch equals the quantized timestamp-queue
    /// oracle exactly, for arbitrary interleavings of time advances,
    /// observations, and read-only estimates. The retention rule under
    /// test: an event in bucket epoch `e` is still counted at epoch
    /// `e_now` iff `e_now - e < buckets` (never less than the exact
    /// window; stale by at most one bucket width).
    #[test]
    fn windowed_sketch_matches_quantized_queue_oracle(
        steps in proptest::collection::vec(
            // (advance µs, observe?) — advances up to 3 windows.
            (0u64..300_000, any::<bool>()),
            1..120,
        ),
        seed in any::<u64>(),
    ) {
        const KEY: u64 = 0xfeed;
        const BUCKETS: u64 = 8;
        let window = SimDuration::from_millis(100);
        let mut sketch = WindowedSketch::new(window, BUCKETS as usize, 64, 2, seed);
        let bucket_us = sketch.bucket_width().as_micros();
        prop_assert_eq!(bucket_us, window.as_micros().div_ceil(BUCKETS - 1));

        let mut t = 0u64;
        let mut observed: Vec<u64> = Vec::new();
        for &(advance, observe) in &steps {
            t += advance;
            let now = SimTime::from_micros(t);
            let e_now = t / bucket_us;
            if observe {
                observed.push(t);
                let oracle = observed
                    .iter()
                    .filter(|&&at| e_now - at / bucket_us < BUCKETS)
                    .count() as u32;
                prop_assert_eq!(sketch.observe(now, KEY), oracle);
            } else {
                let oracle = observed
                    .iter()
                    .filter(|&&at| e_now - at / bucket_us < BUCKETS)
                    .count() as u32;
                prop_assert_eq!(sketch.estimate(now, KEY), oracle);
            }
            // Never undercount the exact (unquantized) sliding window.
            let exact_window = observed
                .iter()
                .filter(|&&at| t - at <= window.as_micros())
                .count() as u32;
            prop_assert!(sketch.estimate(now, KEY) >= exact_window);
        }
    }
}

// ----------------------------------------------------------------------
// Differential parsing: the SWAR fast path vs the retained reference
// ----------------------------------------------------------------------

/// Header names mixing the interned well-knowns, compact forms, unknown
/// extensions, and near-miss spellings that must all take the same
/// interning decisions on both parser paths.
fn header_name() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("Via".to_string()),
        Just("v".to_string()),
        Just("From".to_string()),
        Just("TO".to_string()),
        Just("Call-ID".to_string()),
        Just("CSeq".to_string()),
        Just("Content-Length".to_string()),
        Just("X-Custom-Header".to_string()),
        Just("Vial".to_string()),
        "[A-Za-z][A-Za-z0-9-]{0,24}",
    ]
}

/// Header values spanning every `ByteStr` representation boundary: the
/// empty value, short inlined values, values straddling both the
/// reference's 38-byte and the fast path's current inline capacity, and
/// oversized ones that must slice the shared wire buffer. Interior
/// whitespace and non-ASCII exercise the trim paths.
fn header_value() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        "[ -~]{1,20}",
        "[ -~]{30,45}",
        "[ -~]{55,70}",
        "[ -~]{90,140}",
        "[a-z]{3} {1,3}[a-z]{3}",
        Just("café \u{2603} value".to_string()),
    ]
}

/// One header line with adversarial framing: CRLF or bare-LF
/// termination, optional whitespace padding around the colon, optional
/// folded continuation line, or a torn line with no colon at all.
fn header_line() -> impl Strategy<Value = String> {
    (
        header_name(),
        header_value(),
        any::<bool>(), // bare LF instead of CRLF
        any::<bool>(), // pad around the colon
        0u8..4,              // 1-3: append a folded continuation
    )
        .prop_map(|(name, value, bare_lf, pad, fold)| {
            let eol = if bare_lf { "\n" } else { "\r\n" };
            let colon = if pad { " : " } else { ":" };
            let mut line = format!("{name}{colon}{value}{eol}");
            match fold {
                1 => line.push_str(&format!(" folded continuation{eol}")),
                2 => line.push_str(&format!("\tfolded\ttab{eol}")),
                3 => line.push_str(&format!("   {eol}")), // fold to nothing
                _ => {}
            }
            line
        })
}

fn start_line() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("INVITE sip:bob@lab SIP/2.0\r\n".to_string()),
        Just("REGISTER sip:lab;transport=udp SIP/2.0\r\n".to_string()),
        Just("OPTIONS sip:a@b:5060 SIP/2.0\n".to_string()),
        Just("SIP/2.0 200 OK\r\n".to_string()),
        Just("SIP/2.0 401 Unauthorized Here\r\n".to_string()),
        Just("SIP/2.0 180\r\n".to_string()),
        Just("BANANA sip:x SIP/2.0\r\n".to_string()),
        Just("INVITE\r\n".to_string()),
        "[ -~]{0,30}\r\n",
    ]
}

/// Assembles a SIP-shaped byte string, then optionally tears it: an
/// arbitrary truncation offset and an arbitrary single-byte stomp.
fn sip_like_input() -> impl Strategy<Value = Vec<u8>> {
    (
        start_line(),
        proptest::collection::vec(header_line(), 0..12),
        any::<bool>(), // terminate with bare LF-LF
        proptest::collection::vec(any::<u8>(), 0..40), // body
        any::<u16>(), // truncation selector
        proptest::option::of((any::<u16>(), any::<u8>())), // byte stomp
    )
        .prop_map(|(start, headers, bare_end, body, cut, stomp)| {
            let mut text = start;
            for h in headers {
                text.push_str(&h);
            }
            text.push_str(if bare_end { "\n" } else { "\r\n" });
            let mut bytes = text.into_bytes();
            bytes.extend_from_slice(&body);
            if let Some((at, val)) = stomp {
                if !bytes.is_empty() {
                    let at = at as usize % bytes.len();
                    bytes[at] = val;
                }
            }
            // cut == u16::MAX keeps the full message more often than a
            // uniform cut would.
            let cut = cut as usize;
            if cut < bytes.len() {
                bytes.truncate(cut);
            }
            bytes
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The zero-copy fast parser and the retained reference parser are
    /// observationally identical over adversarial SIP-shaped inputs:
    /// same accept/reject decision, same error, and — via `SipMessage`'s
    /// content-based equality — the same parsed message, independent of
    /// inline/shared `ByteStr` representation choices.
    #[test]
    fn fast_sip_parser_matches_reference(input in sip_like_input()) {
        let bytes = bytes::Bytes::from(input);
        let fast = SipMessage::parse_bytes(bytes.clone());
        let reference = SipMessage::parse_bytes_reference(bytes.clone());
        prop_assert_eq!(&fast, &reference, "diverged on {:?}", bytes);
        // And both survive the sniffer disagreeing-free.
        prop_assert_eq!(
            scidive_sip::parse::looks_like_sip(&bytes),
            scidive_sip::parse::looks_like_sip_reference(&bytes)
        );
    }

    /// Pure byte soup (no SIP shape at all) must also never split the
    /// two parsers — most of it is rejected, and rejection reasons
    /// must match.
    #[test]
    fn parser_paths_agree_on_byte_soup(soup in proptest::collection::vec(any::<u8>(), 0..256)) {
        let bytes = bytes::Bytes::from(soup);
        let fast = SipMessage::parse_bytes(bytes.clone());
        let reference = SipMessage::parse_bytes_reference(bytes.clone());
        prop_assert_eq!(&fast, &reference, "diverged on {:?}", bytes);
    }
}

// ----------------------------------------------------------------------
// The rule DSL: derived interests are sound, printing is a fixed point
// ----------------------------------------------------------------------

use scidive_core::rules::dsl::ast::Clause;
use scidive_core::rules::dsl::{compile_program, print_program, threshold_specs};
use scidive_core::rules::Program;
use std::collections::HashSet;

fn dsl_class() -> impl Strategy<Value = &'static str> {
    proptest::sample::select(
        EventClass::ALL.iter().map(|c| c.name()).collect::<Vec<_>>(),
    )
}

/// An `any-of` class spec, sometimes narrowed by well-typed predicates.
fn any_of_spec() -> impl Strategy<Value = String> {
    prop_oneof![
        3 => dsl_class().prop_map(str::to_string),
        1 => Just("RtpSeqViolation(delta >= 5000)".to_string()),
        1 => Just("CallEstablished(caller == \"alice@lab\")".to_string()),
        1 => Just("CallEstablished(caller contains \"@lab\", callee != \"x\")".to_string()),
        1 => Just("CallTornDown(by_media_ip == \"10.0.0.1\")".to_string()),
    ]
}

/// A `threshold` clause drawn from text-keyed classes, with optional
/// distinct term and emit template.
fn threshold_body() -> impl Strategy<Value = String> {
    (
        proptest::sample::select(vec![
            ("CallEstablished", "caller", "callee"),
            ("ImObserved", "claimed_aor", "call_id"),
            ("AcctMismatch", "billed", "call_id"),
            ("PasswordGuessing", "username", "src"),
        ]),
        1u32..=30,
        proptest::option::of(1u32..=64),
        proptest::sample::select(vec!["500ms", "2s", "60s"]),
        proptest::option::of(proptest::sample::select(vec![
            "caller {key} hit {count} in {window}s",
            "{key}: {count}/{distinct}",
            "plain text",
        ])),
    )
        .prop_map(|((class, key, dfield), count, distinct, within, emit)| {
            let mut s = format!("threshold {class} by {key} count >= {count}");
            if let Some(d) = distinct {
                s += &format!(" distinct {dfield} >= {d}");
            }
            s += &format!(" within {within}");
            if let Some(e) = emit {
                s += &format!(" emit \"{e}\"");
            }
            s
        })
}

fn rule_clause() -> impl Strategy<Value = String> {
    prop_oneof![
        proptest::collection::vec(dsl_class(), 1..4)
            .prop_map(|cs| format!("sequence {}", cs.join(", "))),
        proptest::collection::vec(dsl_class(), 1..4)
            .prop_map(|cs| format!("all-of {}", cs.join(", "))),
        proptest::collection::vec(any_of_spec(), 1..3)
            .prop_map(|cs| format!("any-of {}", cs.join(", "))),
        threshold_body(),
    ]
}

/// A random well-formed program: unique rule ids, valid classes and
/// fields, windows only on the clause kinds that read them.
fn program_src() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        (
            rule_clause(),
            proptest::option::of(proptest::sample::select(vec![
                "info", "warning", "critical",
            ])),
            proptest::option::of(proptest::sample::select(vec!["500ms", "2s", "90s"])),
        ),
        1..5,
    )
    .prop_map(|rules| {
        let mut src = String::new();
        for (i, (clause, severity, window)) in rules.iter().enumerate() {
            src += &format!("rule r{i}");
            if let Some(s) = severity {
                src += &format!(" severity {s}");
            }
            // `window` only matters (and prints) on sequence / all-of;
            // elsewhere it would draw a --deny-warnings diagnostic.
            if window.is_some()
                && (clause.starts_with("sequence") || clause.starts_with("all-of"))
            {
                src += &format!(" window {}", window.unwrap());
            }
            src += &format!(" {{ {clause} }}\n");
        }
        src
    })
}

/// The classes a clause names on its surface — the spec the derived
/// `RuleInterest` must match exactly.
fn named_classes(clause: &Clause) -> HashSet<EventClass> {
    match clause {
        Clause::Sequence(specs) | Clause::AllOf(specs) | Clause::AnyOf(specs) => specs
            .iter()
            .map(|s| EventClass::parse_name(&s.class.node).expect("validated class"))
            .collect(),
        Clause::Threshold(t) => {
            std::iter::once(EventClass::parse_name(&t.class.node).expect("validated class"))
                .collect()
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Derived-interest soundness: for every rule of every fuzzed
    /// program, the compiled `RuleInterest` admits exactly the event
    /// classes the clause names — nothing leaks in (wasted dispatch),
    /// nothing is dropped (missed events).
    #[test]
    fn dsl_interests_are_exactly_the_named_classes(src in program_src()) {
        let program = Program::parse(&src).expect("generated program is valid");
        let rules = compile_program(&program);
        prop_assert_eq!(rules.len(), program.rules.len());
        for (decl, rule) in program.rules.iter().zip(&rules) {
            prop_assert_eq!(rule.id(), decl.id.node.as_str());
            let named = named_classes(&decl.clause);
            let interests = rule.interests();
            for class in EventClass::ALL {
                prop_assert_eq!(
                    interests.contains(class),
                    named.contains(&class),
                    "rule `{}`: interest for {:?} diverges from the clause ({})",
                    decl.id.node, class, src
                );
            }
        }
    }

    /// `parse → print → parse → print` is a fixed point, and printing
    /// preserves semantics: the reprinted program compiles to rules with
    /// the same ids and interests and to identical threshold specs.
    #[test]
    fn dsl_print_is_a_semantic_fixed_point(src in program_src()) {
        let p1 = Program::parse(&src).expect("generated program is valid");
        let s1 = print_program(&p1);
        let p2 = Program::parse(&s1).expect("printed program re-parses");
        let s2 = print_program(&p2);
        prop_assert_eq!(&s1, &s2, "printer is not a fixed point over reparse");

        let r1 = compile_program(&p1);
        let r2 = compile_program(&p2);
        prop_assert_eq!(r1.len(), r2.len());
        for (a, b) in r1.iter().zip(&r2) {
            prop_assert_eq!(a.id(), b.id());
            for class in EventClass::ALL {
                prop_assert_eq!(a.interests().contains(class), b.interests().contains(class));
            }
        }
        prop_assert_eq!(threshold_specs(&p1), threshold_specs(&p2));
    }
}
