//! Property-based tests for the IDS core: the Distiller is total over
//! arbitrary bytes, trail accounting balances, and metric identities
//! hold.

use proptest::prelude::*;
use scidive_core::alert::{Alert, Severity};
use scidive_core::distill::{Distiller, DistillerConfig};
use scidive_core::engine::{Scidive, ScidiveConfig};
use scidive_core::footprint::{Footprint, FootprintBody, PacketMeta};
use scidive_core::metrics::{DetectionReport, InjectedAttack};
use scidive_core::trail::{TrailStore, TrailStoreConfig};
use scidive_netsim::packet::IpPacket;
use scidive_netsim::time::SimTime;
use scidive_rtp::packet::RtpHeader;
use std::net::Ipv4Addr;

fn ip() -> impl Strategy<Value = Ipv4Addr> {
    (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Ipv4Addr::new(10, a, 0, b))
}

proptest! {
    #[test]
    fn distiller_is_total_over_arbitrary_udp(
        src in ip(), dst in ip(),
        sport in any::<u16>(), dport in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut d = Distiller::new(DistillerConfig::default());
        let pkt = IpPacket::udp(src, sport, dst, dport, payload);
        let fps = d.distill(SimTime::ZERO, &pkt);
        // Unfragmented input: exactly one footprint, meta preserved.
        prop_assert_eq!(fps.len(), 1);
        prop_assert_eq!(fps[0].meta.src, src);
        prop_assert_eq!(fps[0].meta.dst, dst);
        prop_assert_eq!(fps[0].meta.src_port, sport);
        prop_assert_eq!(fps[0].meta.dst_port, dport);
    }

    #[test]
    fn engine_never_panics_on_arbitrary_frames(
        frames in proptest::collection::vec(
            (any::<u16>(), any::<u16>(), proptest::collection::vec(any::<u8>(), 0..128)),
            0..40,
        ),
    ) {
        let mut ids = Scidive::new(ScidiveConfig::default());
        for (i, (sport, dport, payload)) in frames.iter().enumerate() {
            let pkt = IpPacket::udp(
                Ipv4Addr::new(10, 0, 0, 1),
                *sport,
                Ipv4Addr::new(10, 0, 0, 2),
                *dport,
                payload.clone(),
            );
            ids.on_frame(SimTime::from_millis(i as u64), &pkt);
        }
        let stats = ids.stats();
        prop_assert_eq!(stats.frames, frames.len() as u64);
        prop_assert!(stats.footprints <= stats.frames);
        prop_assert_eq!(stats.alerts as usize, ids.alerts().len());
    }

    #[test]
    fn trail_store_accounting_balances(
        inserts in proptest::collection::vec((any::<u16>(), any::<u16>(), any::<u16>()), 1..300),
        cap in 1usize..64,
    ) {
        let mut store = TrailStore::new(TrailStoreConfig {
            max_footprints_per_trail: cap,
            ..TrailStoreConfig::default()
        });
        for (i, (port, seq, _)) in inserts.iter().enumerate() {
            let fp = Footprint {
                meta: PacketMeta {
                    time: SimTime::from_millis(i as u64),
                    src: Ipv4Addr::new(10, 0, 0, 3),
                    src_port: 9000,
                    dst: Ipv4Addr::new(10, 0, 0, 2),
                    dst_port: *port,
                    },
                body: FootprintBody::Rtp {
                    header: RtpHeader::new(0, *seq, 0, 1),
                    payload_len: 160,
                },
            };
            store.insert(fp);
        }
        let stats = store.stats();
        prop_assert_eq!(stats.inserted, inserts.len() as u64);
        // retained + evicted == inserted (no idle expiry at these times).
        prop_assert_eq!(
            store.footprint_count() as u64 + stats.evicted,
            stats.inserted
        );
        // Every trail honours the cap.
        for port in inserts.iter().map(|(p, _, _)| *p) {
            let key = scidive_core::trail::TrailKey {
                session: scidive_core::trail::SessionKey::new(
                    format!("flow-10.0.0.2:{port}"),
                ),
                proto: scidive_core::footprint::TrailProto::Rtp,
            };
            if let Some(trail) = store.trail(&key) {
                prop_assert!(trail.len() <= cap);
            }
        }
    }

    #[test]
    fn detection_report_identity(
        n_attacks in 0usize..6,
        n_alerts in 0usize..6,
        offsets in proptest::collection::vec(any::<u64>(), 0..12),
    ) {
        let attacks: Vec<InjectedAttack> = (0..n_attacks)
            .map(|i| InjectedAttack::new(
                "bye-attack",
                SimTime::from_millis(*offsets.get(i).unwrap_or(&0) % 1000),
            ))
            .collect();
        let alerts: Vec<Alert> = (0..n_alerts)
            .map(|i| Alert::new(
                "bye-attack",
                Severity::Critical,
                SimTime::from_millis(*offsets.get(i + n_attacks).unwrap_or(&0) % 1000),
                None,
                "x",
            ))
            .collect();
        let report = DetectionReport::evaluate(&alerts, &attacks);
        // Identities: detected + missed = injected; every alert is either
        // credited to an attack or a false alarm.
        prop_assert_eq!(report.detected_count() + report.missed_count(), n_attacks);
        prop_assert_eq!(
            report.detected_count() + report.false_alarms.len(),
            n_alerts.max(report.detected_count())
        );
        // Delays are never negative.
        for o in &report.outcomes {
            if let Some(d) = o.delay() {
                prop_assert!(d.as_micros() < u64::MAX);
            }
        }
    }
}
