#!/usr/bin/env bash
# CI gate: release build, full test suite, lint wall.
#
# The test suite includes the sharded-pipeline differential harness
# (tests/shard_equivalence.rs, crates/core/tests/properties.rs) and the
# 2-shard smoke in scidive-bench, so a green run proves the parallel
# deployment is byte-identical to the single engine.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== clippy (deny warnings) =="
cargo clippy --workspace -- -D warnings

echo "CI green."
