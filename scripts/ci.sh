#!/usr/bin/env bash
# CI gate: release build, full test suite, lint wall, bench smoke.
#
# The test suite includes the sharded-pipeline differential harness
# (tests/shard_equivalence.rs, crates/core/tests/properties.rs) and the
# 2-shard smoke in scidive-bench, so a green run proves the parallel
# deployment is byte-identical to the single engine. The allocation
# regression gate (crates/bench/tests/alloc_budget.rs) runs under the
# counting allocator feature, and the bench smoke runs every criterion
# routine once so the benchmarks cannot silently rot. The observability
# gates run last: the leak-plateau test proves the session-index
# lifecycle keeps state bounded, and exp_observe_overhead fails the run
# if observation at default settings costs more than 5% of pipeline
# throughput (artifact: results/observability_overhead.txt). The rule
# dispatch gates close out the run: the differential suite
# (tests/rule_dispatch_equivalence.rs) proves the compiled event-class
# dispatch table is byte-identical to the full-scan reference on benign
# and attack traffic, and the rule_matching bench fails the run unless
# compiled dispatch beats the full scan by at least 5x at 128 padding
# rules (artifacts: BENCH_rules.json, results/rule_dispatch.txt).
# The protocol-module gates (DESIGN SS12) prove the registry seam stays
# clean: a dedicated clippy pass over scidive-core, a structural check
# that no module under core/src/proto/ imports a sibling protocol
# module (modules may only talk through the mod.rs contexts), the
# registry-order classification property, and the registry differential
# suite (tests/proto_registry_equivalence.rs) with the MGCP fifth
# protocol at 1/2/4 shards.
# The rate-primitive gates (DESIGN SS13) prove the constant-memory
# rewiring of the flood rules is safe and actually constant-memory: the
# sketch property tests pin count-min's (eps, delta) bound and the
# sliding window's oracle equality, the differential suite
# (tests/rate_equivalence.rs) requires byte-identical alerts with
# exact_rate_state on vs off at 1/2/4 shards, a 100k-dialog release
# soak (tests/soak.rs) gates the byte-for-byte rate-state plateau, and
# exp_capacity regenerates BENCH_capacity.json, failing the run unless
# rate bytes are constant across the full 10k -> 1M dialog ladder.
# The cross-shard fold gates (DESIGN SS15) prove threshold clauses see
# the global stream: the rate_equivalence cross-shard suite requires a
# flood that hashes across every shard to raise byte-identical alerts
# at 1/2/4 shards (and pins the pre-fold per-shard miss with the fold
# disabled), and exp_capacity runs the ladder through the 4-shard
# deployment so the gate also covers the global fold hub's footprint
# (constant across rungs, under the same 2 MiB cap).
# The distiller gates (DESIGN SS14) keep the zero-alloc fast path
# honest: differential proptests (crates/core/tests/properties.rs) hold
# the SWAR parser byte-identical to the byte-at-a-time reference, the
# leak-plateau and soak runs above cover the session-plane idle expiry,
# and exp_pipeline regenerates BENCH_pipeline.json, failing the run
# unless the fast distiller beats the reference parser by at least 2x
# (artifact: results/pipeline_stages.txt).
# The operator-DSL gates (DESIGN SS16) keep the declarative rule layer
# and its hot-reload path honest: the golden suite
# (crates/core/tests/dsl_golden.rs) pins the span, message, and hint of
# every lexer/parser/validator diagnostic, the DSL property tests prove
# derived RuleInterest soundness and the parse -> print -> parse fixed
# point, rule_dispatch_equivalence pins DSL rules byte-identical to
# their hand-written Rust twins, the swap suite (tests/ruleset_swap.rs)
# gates the deterministic barrier boundary / state adoption /
# failed-compile isolation at 1/2/4 shards, the soak swap loop churns
# the live ruleset through a 100k-dialog stream, and the .scid compile
# gate (dsl_rules --check) denies warnings on every shipped rule file.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== allocation budget (counting allocator) =="
cargo test -q -p scidive-bench --features count-allocs --test alloc_budget

echo "== clippy (deny warnings + alloc-discipline lints) =="
cargo clippy --workspace --all-targets -- \
  -D warnings \
  -D clippy::redundant_clone \
  -D clippy::inefficient_to_string \
  -D clippy::format_collect

echo "== bench smoke (one iteration per routine) =="
cargo bench -q -- --test

echo "== state-gauge leak plateau (index lifecycle) =="
cargo test -q --test chaos state_gauges_plateau_across_idle_expiry

echo "== observability overhead gate (<= 5%) =="
cargo run --release -q -p scidive-bench --bin exp_observe_overhead -- --gate 5

echo "== rule dispatch equivalence (compiled vs full scan) =="
cargo test -q --test rule_dispatch_equivalence

echo "== rule dispatch regression gate (>= 5x at 128 rules) =="
cargo bench -q -p scidive-bench --bench rule_matching -- --gate 5

echo "== clippy: scidive-core standalone (deny warnings) =="
cargo clippy -p scidive-core -- -D warnings

echo "== protocol-module isolation (no sibling imports) =="
violations=0
for f in crates/core/src/proto/*.rs; do
  base=$(basename "$f" .rs)
  [ "$base" = mod ] && continue
  for sib in acct mgcp other rtcp rtp sip; do
    [ "$sib" = "$base" ] && continue
    if grep -nE "(proto::|super::|self::)${sib}\b" "$f"; then
      echo "sibling import: $f reaches into '$sib'" >&2
      violations=1
    fi
  done
done
[ "$violations" -eq 0 ] || { echo "protocol modules must not import siblings" >&2; exit 1; }

echo "== registry-order classification property =="
cargo test -q -p scidive-core --test properties \
  classification_is_total_deterministic_and_order_independent

echo "== protocol registry equivalence (MGCP fifth protocol, 1/2/4 shards) =="
cargo test -q --test proto_registry_equivalence

echo "== rate primitive properties (count-min, sliding window vs oracles) =="
cargo test -q -p scidive-core --test properties -- \
  count_min_never_undercounts_and_meets_its_error_bound \
  windowed_sketch_matches_quantized_queue_oracle

echo "== rate equivalence (exact vs sketch, 1/2/4 shards) =="
cargo test -q --test rate_equivalence

echo "== cross-shard flood gate (global fold plane, 1/2/4 shards) =="
cargo test --release -q --test rate_equivalence -- \
  rapid_connect_fanout_is_shard_count_invariant \
  per_shard_slices_miss_the_flood_without_the_fold

echo "== DSL diagnostics golden suite (span/message/hint) =="
cargo test -q -p scidive-core --test dsl_golden

echo "== DSL properties (derived interests, print fixed point) =="
cargo test -q -p scidive-core --test properties -- \
  dsl_interests_are_exactly_the_named_classes \
  dsl_print_is_a_semantic_fixed_point

echo "== ruleset hot-reload gates (barrier, adoption, 1/2/4 shards) =="
cargo test -q --test ruleset_swap

echo "== operator .scid compile gate (deny warnings) =="
cargo run -q --example dsl_rules -- --check

echo "== million-session soak, short profile (100k dialogs, release) =="
SCIDIVE_SOAK_DIALOGS=100000 cargo test --release -q --test soak

echo "== capacity ladder gate (BENCH_capacity.json regeneration, 4-shard fold plane) =="
cargo run --release -q -p scidive-bench --bin exp_capacity -- --gate --shards 4
git diff --stat -- BENCH_capacity.json || true

echo "== distiller speedup gate (fast parse >= 2x reference) =="
cargo run --release -q -p scidive-bench --bin exp_pipeline -- --gate 2.0
git diff --stat -- BENCH_pipeline.json || true

echo "CI green."
