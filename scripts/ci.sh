#!/usr/bin/env bash
# CI gate: release build, full test suite, lint wall, bench smoke.
#
# The test suite includes the sharded-pipeline differential harness
# (tests/shard_equivalence.rs, crates/core/tests/properties.rs) and the
# 2-shard smoke in scidive-bench, so a green run proves the parallel
# deployment is byte-identical to the single engine. The allocation
# regression gate (crates/bench/tests/alloc_budget.rs) runs under the
# counting allocator feature, and the bench smoke runs every criterion
# routine once so the benchmarks cannot silently rot. The observability
# gates run last: the leak-plateau test proves the session-index
# lifecycle keeps state bounded, and exp_observe_overhead fails the run
# if observation at default settings costs more than 5% of pipeline
# throughput (artifact: results/observability_overhead.txt).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== allocation budget (counting allocator) =="
cargo test -q -p scidive-bench --features count-allocs --test alloc_budget

echo "== clippy (deny warnings + alloc-discipline lints) =="
cargo clippy --workspace --all-targets -- \
  -D warnings \
  -D clippy::redundant_clone \
  -D clippy::inefficient_to_string \
  -D clippy::format_collect

echo "== bench smoke (one iteration per routine) =="
cargo bench -q -- --test

echo "== state-gauge leak plateau (index lifecycle) =="
cargo test -q --test chaos state_gauges_plateau_across_idle_expiry

echo "== observability overhead gate (<= 5%) =="
cargo run --release -q -p scidive-bench --bin exp_observe_overhead -- --gate 5

echo "CI green."
