#![allow(clippy::all)]
//! Offline stub of `crossbeam-channel`.
//!
//! Backed by `std::sync::mpsc`: [`bounded`] maps to `sync_channel`
//! (blocking send when full — the backpressure behaviour the online
//! pipeline relies on) and [`unbounded`] maps to `channel`. Receivers
//! are not cloneable in this stub (the workspace uses single-consumer
//! queues only).

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::mpsc;
use std::time::Duration;

/// Error on send: the receiving side disconnected (payload returned).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error on `try_send`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The queue is full.
    Full(T),
    /// The receiving side disconnected.
    Disconnected(T),
}

impl<T> TrySendError<T> {
    /// Recovers the unsent payload.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
        }
    }

    /// Whether the failure was a full queue.
    pub fn is_full(&self) -> bool {
        matches!(self, TrySendError::Full(_))
    }
}

/// Error on recv: the sending side disconnected and the queue is empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error on `try_recv`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Queue currently empty.
    Empty,
    /// Senders disconnected and queue drained.
    Disconnected,
}

/// Error on `recv_timeout`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Timed out with no message.
    Timeout,
    /// Senders disconnected and queue drained.
    Disconnected,
}

enum Tx<T> {
    Bounded(mpsc::SyncSender<T>),
    Unbounded(mpsc::Sender<T>),
}

impl<T> Clone for Tx<T> {
    fn clone(&self) -> Tx<T> {
        match self {
            Tx::Bounded(s) => Tx::Bounded(s.clone()),
            Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
        }
    }
}

/// The sending half of a channel.
pub struct Sender<T> {
    tx: Tx<T>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        Sender {
            tx: self.tx.clone(),
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> Sender<T> {
    /// Sends, blocking while a bounded queue is full.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        match &self.tx {
            Tx::Bounded(s) => s.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
            Tx::Unbounded(s) => s.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
        }
    }

    /// Sends without blocking.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        match &self.tx {
            Tx::Bounded(s) => s.try_send(value).map_err(|e| match e {
                mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
            }),
            Tx::Unbounded(s) => s
                .send(value)
                .map_err(|mpsc::SendError(v)| TrySendError::Disconnected(v)),
        }
    }
}

/// The receiving half of a channel.
pub struct Receiver<T> {
    rx: mpsc::Receiver<T>,
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

impl<T> Receiver<T> {
    /// Receives, blocking until a message or disconnect.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.rx.recv().map_err(|_| RecvError)
    }

    /// Receives without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.rx.try_recv().map_err(|e| match e {
            mpsc::TryRecvError::Empty => TryRecvError::Empty,
            mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
        })
    }

    /// Receives with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
            mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
        })
    }

    /// A blocking iterator over received messages.
    pub fn iter(&self) -> mpsc::Iter<'_, T> {
        self.rx.iter()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = mpsc::IntoIter<T>;
    fn into_iter(self) -> Self::IntoIter {
        self.rx.into_iter()
    }
}

/// Creates a bounded channel: `send` blocks while `cap` messages queue.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::sync_channel(cap);
    (
        Sender {
            tx: Tx::Bounded(tx),
        },
        Receiver { rx },
    )
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (
        Sender {
            tx: Tx::Unbounded(tx),
        },
        Receiver { rx },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_blocks_at_capacity() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn disconnect_surfaces() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
        let (tx2, rx2) = bounded::<u32>(4);
        tx2.send(9).unwrap();
        drop(tx2);
        assert_eq!(rx2.recv(), Ok(9));
        assert_eq!(rx2.recv(), Err(RecvError));
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = bounded::<u64>(2);
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let sum: u64 = rx.iter().sum();
        h.join().unwrap();
        assert_eq!(sum, 4950);
    }
}
