//! Sampling strategies over fixed collections.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy choosing uniformly from an owned list.
pub struct Select<T: Clone> {
    choices: Vec<T>,
}

/// Uniform choice from `choices`; must be non-empty.
pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
    assert!(!choices.is_empty(), "select() needs at least one choice");
    Select { choices }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.choices[rng.below(self.choices.len() as u64) as usize].clone()
    }
}
