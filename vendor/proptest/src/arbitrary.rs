//! `any::<T>()` — the canonical whole-domain strategy per type.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain generator.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: PhantomData<fn() -> T>,
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text debuggable.
        (0x20 + rng.below(0x5f) as u8) as char
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, roughly log-uniform across magnitudes.
        let mag = rng.unit_f64() * 2.0 - 1.0;
        let exp = rng.below(61) as i32 - 30;
        mag * 2f64.powi(exp)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl<A: Arbitrary, B: Arbitrary> Arbitrary for (A, B) {
    fn arbitrary(rng: &mut TestRng) -> (A, B) {
        (A::arbitrary(rng), B::arbitrary(rng))
    }
}
