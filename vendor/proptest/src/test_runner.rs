//! Test configuration and the deterministic RNG used by strategies.

/// Per-test configuration; only `cases` is honored by this stub.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // The real default is 256; 64 keeps suite runtime modest while
        // still exercising varied inputs, and failures are
        // reproducible because seeding is deterministic.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic splitmix64-based RNG. Seeded from the test name, so a
/// failing case reproduces on every run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded from an arbitrary label (FNV-1a of the bytes).
    pub fn deterministic(label: &str) -> TestRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: hash | 1,
        }
    }

    /// An RNG from a numeric seed.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng {
            state: seed | 1,
        }
    }

    /// Next 64 uniform bits (splitmix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 32 uniform bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform integer in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant for test-input generation.
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)` with 53-bit precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform bool.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}
