//! A generator for the regex subset used as string strategies:
//! literals, escaped chars, char classes with ranges, groups, and the
//! `{n}` / `{m,n}` / `?` / `*` / `+` quantifiers.

use crate::test_runner::TestRng;

const UNBOUNDED_MAX: u32 = 8;

#[derive(Debug)]
enum Node {
    Lit(char),
    /// Expanded set of candidate characters.
    Class(Vec<char>),
    Group(Vec<Quantified>),
}

#[derive(Debug)]
struct Quantified {
    node: Node,
    min: u32,
    max: u32,
}

/// A compiled pattern.
#[derive(Debug)]
pub struct RegexGen {
    seq: Vec<Quantified>,
}

impl RegexGen {
    /// Compiles the pattern.
    ///
    /// # Errors
    ///
    /// Returns a message for syntax outside the supported subset.
    pub fn compile(pattern: &str) -> Result<RegexGen, String> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0;
        let seq = parse_seq(&chars, &mut pos, false)?;
        if pos != chars.len() {
            return Err(format!("unexpected {:?} at {pos}", chars[pos]));
        }
        Ok(RegexGen { seq })
    }

    /// Generates one matching string.
    pub fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        gen_seq(&self.seq, rng, &mut out);
        out
    }
}

fn gen_seq(seq: &[Quantified], rng: &mut TestRng, out: &mut String) {
    for q in seq {
        let span = u64::from(q.max - q.min + 1);
        let count = q.min + rng.below(span) as u32;
        for _ in 0..count {
            match &q.node {
                Node::Lit(c) => out.push(*c),
                Node::Class(set) => {
                    out.push(set[rng.below(set.len() as u64) as usize]);
                }
                Node::Group(inner) => gen_seq(inner, rng, out),
            }
        }
    }
}

fn parse_seq(chars: &[char], pos: &mut usize, in_group: bool) -> Result<Vec<Quantified>, String> {
    let mut seq = Vec::new();
    while *pos < chars.len() {
        let node = match chars[*pos] {
            ')' if in_group => break,
            '[' => parse_class(chars, pos)?,
            '(' => {
                *pos += 1;
                let inner = parse_seq(chars, pos, true)?;
                if chars.get(*pos) != Some(&')') {
                    return Err("unterminated group".to_string());
                }
                *pos += 1;
                Node::Group(inner)
            }
            '\\' => {
                let c = *chars
                    .get(*pos + 1)
                    .ok_or_else(|| "dangling backslash".to_string())?;
                *pos += 2;
                Node::Lit(unescape(c))
            }
            '.' => {
                *pos += 1;
                Node::Class((' '..='~').collect())
            }
            c @ (')' | ']' | '{' | '}' | '*' | '+' | '?' | '|') => {
                return Err(format!("unsupported metachar {c:?} at {pos:?}"));
            }
            c => {
                *pos += 1;
                Node::Lit(c)
            }
        };
        let (min, max) = parse_quantifier(chars, pos)?;
        seq.push(Quantified { node, min, max });
    }
    Ok(seq)
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        'r' => '\r',
        't' => '\t',
        other => other,
    }
}

fn parse_class(chars: &[char], pos: &mut usize) -> Result<Node, String> {
    *pos += 1; // '['
    let mut set = Vec::new();
    while *pos < chars.len() && chars[*pos] != ']' {
        let lo = if chars[*pos] == '\\' {
            let c = *chars
                .get(*pos + 1)
                .ok_or_else(|| "dangling backslash in class".to_string())?;
            *pos += 2;
            unescape(c)
        } else {
            let c = chars[*pos];
            *pos += 1;
            c
        };
        // `a-z` range, unless '-' is the last char before ']'.
        if chars.get(*pos) == Some(&'-') && chars.get(*pos + 1).is_some_and(|c| *c != ']') {
            let hi = chars[*pos + 1];
            *pos += 2;
            if hi < lo {
                return Err(format!("inverted class range {lo}-{hi}"));
            }
            set.extend(lo..=hi);
        } else {
            set.push(lo);
        }
    }
    if chars.get(*pos) != Some(&']') {
        return Err("unterminated char class".to_string());
    }
    *pos += 1;
    if set.is_empty() {
        return Err("empty char class".to_string());
    }
    Ok(Node::Class(set))
}

fn parse_quantifier(chars: &[char], pos: &mut usize) -> Result<(u32, u32), String> {
    match chars.get(*pos) {
        Some('?') => {
            *pos += 1;
            Ok((0, 1))
        }
        Some('*') => {
            *pos += 1;
            Ok((0, UNBOUNDED_MAX))
        }
        Some('+') => {
            *pos += 1;
            Ok((1, UNBOUNDED_MAX))
        }
        Some('{') => {
            *pos += 1;
            let mut min_text = String::new();
            while chars.get(*pos).is_some_and(char::is_ascii_digit) {
                min_text.push(chars[*pos]);
                *pos += 1;
            }
            let min: u32 = min_text
                .parse()
                .map_err(|_| "bad {} quantifier".to_string())?;
            let max = match chars.get(*pos) {
                Some(',') => {
                    *pos += 1;
                    let mut max_text = String::new();
                    while chars.get(*pos).is_some_and(char::is_ascii_digit) {
                        max_text.push(chars[*pos]);
                        *pos += 1;
                    }
                    if max_text.is_empty() {
                        min + UNBOUNDED_MAX
                    } else {
                        max_text.parse().map_err(|_| "bad {} quantifier".to_string())?
                    }
                }
                _ => min,
            };
            if chars.get(*pos) != Some(&'}') {
                return Err("unterminated {} quantifier".to_string());
            }
            *pos += 1;
            if max < min {
                return Err(format!("quantifier max {max} < min {min}"));
            }
            Ok((min, max))
        }
        _ => Ok((1, 1)),
    }
}
