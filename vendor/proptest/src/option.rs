//! `Option` strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Option<S::Value>`.
pub struct OptionStrategy<S> {
    inner: S,
}

/// `None` about a quarter of the time, otherwise `Some` of `inner`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
