//! Collection strategies.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// A vector whose length is uniform in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start).max(1) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
