//! The [`Strategy`] trait and combinators.

use std::ops::{Range, RangeInclusive};

use crate::regex::RegexGen;
use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (bounded retries; the last
    /// draw is returned even if unsatisfying, since there is no
    /// rejection machinery in this stub).
    fn prop_filter<F>(self, _whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, pred }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] output.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// [`Strategy::prop_filter`] output.
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let mut last = self.inner.generate(rng);
        for _ in 0..64 {
            if (self.pred)(&last) {
                break;
            }
            last = self.inner.generate(rng);
        }
        last
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `arms`; must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

// ---------------------------------------------------------------------
// Ranges
// ---------------------------------------------------------------------

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range: any value works.
                    return rng.next_u64() as $t;
                }
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start() + (rng.unit_f64() as $t) * (self.end() - self.start())
            }
        }
    )*};
}
impl_float_range!(f32, f64);

// ---------------------------------------------------------------------
// String literals as regex-subset strategies
// ---------------------------------------------------------------------

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        RegexGen::compile(self)
            .unwrap_or_else(|e| panic!("bad regex strategy {self:?}: {e}"))
            .generate(rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}

// ---------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}
