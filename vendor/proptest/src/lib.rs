#![allow(clippy::all)]
//! Offline stub of `proptest`.
//!
//! Generate-only property testing: the [`proptest!`] macro expands each
//! case into a loop that draws inputs from [`Strategy`] values with a
//! deterministic per-test RNG and runs the body; `prop_assert*` macros
//! are plain asserts (no shrinking — a failure reports the first
//! counterexample as-is). Supported strategies cover this workspace:
//! integer/float ranges, `any::<T>()`, tuples to 8 elements, regex-like
//! string literals (char classes, groups, `{m,n}` repetition),
//! `collection::vec`, `option::of`, `sample::select`, `Just`,
//! `prop_map`, and unweighted [`prop_oneof!`].

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod regex;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                // Bodies may `return Ok(())` early, as in real proptest.
                let mut __body = move || -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    Ok(())
                };
                __body().expect("property returned Err");
            }
        }
    )*};
}

/// Asserts within a property body (no shrinking in this stub).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assert within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies with a common value type. Weighted
/// arms (`n => strat`) are accepted but the weight is ignored.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..200 {
            let v = (1u16..500).generate(&mut rng);
            assert!((1..500).contains(&v));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
            let (a, b) = (any::<u8>(), 3usize..7).generate(&mut rng);
            let _ = a;
            assert!((3..7).contains(&b));
        }
    }

    #[test]
    fn regex_strategies_match_shape() {
        let mut rng = TestRng::deterministic("regex");
        for _ in 0..100 {
            let s = "[a-zA-Z][a-zA-Z0-9]{0,11}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 12);
            assert!(s.chars().next().unwrap().is_ascii_alphabetic());
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric()));

            let d = "[a-z]{1,8}(\\.[a-z]{2,5}){0,2}".generate(&mut rng);
            for part in d.split('.') {
                assert!(!part.is_empty() && part.chars().all(|c| c.is_ascii_lowercase()));
            }
        }
    }

    #[test]
    fn oneof_vec_option_select_compose() {
        let mut rng = TestRng::deterministic("compose");
        let strat = prop_oneof![
            (0u32..10).prop_map(|n| n.to_string()),
            "[a-z]{2,4}",
        ];
        let mut saw_digit = false;
        let mut saw_alpha = false;
        for _ in 0..100 {
            let s = strat.generate(&mut rng);
            saw_digit |= s.chars().all(|c| c.is_ascii_digit());
            saw_alpha |= s.chars().all(|c| c.is_ascii_lowercase());
            let v = crate::collection::vec(any::<u16>(), 0..5).generate(&mut rng);
            assert!(v.len() < 5);
            let o = crate::option::of(0u8..4).generate(&mut rng);
            assert!(o.is_none() || o.unwrap() < 4);
            let pick = crate::sample::select(vec![10, 20, 30]).generate(&mut rng);
            assert!([10, 20, 30].contains(&pick));
        }
        assert!(saw_digit && saw_alpha);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_smoke(mut xs in crate::collection::vec(any::<u8>(), 1..10), k in 0usize..3) {
            xs.sort_unstable();
            prop_assert!(xs.windows(2).all(|w| w[0] <= w[1]));
            prop_assert!(k < 3);
            prop_assert_ne!(xs.len(), 0);
        }
    }
}
