#![allow(clippy::all)]
//! Offline stub of the `bytes` crate.
//!
//! Implements the subset this workspace uses: [`Bytes`] (cheaply
//! cloneable, immutable byte buffer), [`BytesMut`] and the [`BufMut`]
//! write helpers (big-endian `put_*`), plus `serde` support behind the
//! `serde` feature.

#![forbid(unsafe_code)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Creates a buffer by copying `data`.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Creates a buffer from a static slice (copies in this stub).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a sub-buffer sharing the same allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// The contents as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes { data, start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes::from(v.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(v: BytesMut) -> Bytes {
        Bytes::from(v.buf)
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

fn fmt_bytes(bytes: &[u8], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "b\"")?;
    for &b in bytes {
        match b {
            b'"' => write!(f, "\\\"")?,
            b'\\' => write!(f, "\\\\")?,
            b'\n' => write!(f, "\\n")?,
            b'\r' => write!(f, "\\r")?,
            b'\t' => write!(f, "\\t")?,
            0x20..=0x7e => write!(f, "{}", b as char)?,
            _ => write!(f, "\\x{b:02x}")?,
        }
    }
    write!(f, "\"")
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_bytes(self.as_slice(), f)
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable byte buffer for assembling wire formats.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Creates an empty buffer with `cap` reserved bytes.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// The contents as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_bytes(self.as_slice(), f)
    }
}

/// Big-endian write helpers (the subset of `bytes::BufMut` used here).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `i16`.
    fn put_i16(&mut self, v: i16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `i32`.
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(feature = "serde")]
mod serde_impls {
    use super::Bytes;
    use serde::{DeError, Deserialize, Serialize, Value};

    impl Serialize for Bytes {
        fn to_value(&self) -> Value {
            Value::Seq(self.as_slice().iter().map(|&b| Value::U64(b as u64)).collect())
        }
    }

    impl Deserialize for Bytes {
        fn from_value(v: &Value) -> Result<Bytes, DeError> {
            let bytes: Vec<u8> = Vec::<u8>::from_value(v)?;
            Ok(Bytes::from(bytes))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slice() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
        let s = b.slice(1..4);
        assert_eq!(s.as_slice(), &[2, 3, 4]);
        assert_eq!(s.slice(..2).as_slice(), &[2, 3]);
    }

    #[test]
    fn put_helpers_are_big_endian() {
        let mut m = BytesMut::new();
        m.put_u8(0xab);
        m.put_u16(0x0102);
        m.put_u32(0x03040506);
        assert_eq!(m.as_slice(), &[0xab, 1, 2, 3, 4, 5, 6]);
        let frozen = m.freeze();
        assert_eq!(frozen.len(), 7);
    }

    #[test]
    fn equality_and_hash_by_content() {
        use std::collections::HashSet;
        let a = Bytes::from(vec![9u8, 9]);
        let b = Bytes::from(vec![9u8, 9]);
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }
}
