#![allow(clippy::all)]
//! Offline stub of `criterion`.
//!
//! A minimal wall-clock harness behind criterion's API: benchmarks are
//! calibrated by doubling iteration counts until a target measurement
//! window is filled, then the mean time per iteration (and optional
//! throughput) is printed to stdout. No statistics, plots, or saved
//! baselines.
//!
//! Like real criterion, `--test` (as in `cargo bench -- --test`) runs
//! every benchmark routine exactly once with no warmup or calibration —
//! a fast smoke that keeps benches compiling *and running* in CI.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(60);
const MEASURE: Duration = Duration::from_millis(400);

/// How batched inputs are sized; ignored by this stub.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Units for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Whether `--test` was passed (e.g. `cargo bench -- --test`): run each
/// routine once as a smoke test instead of measuring.
fn test_mode() -> bool {
    static MODE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *MODE.get_or_init(|| std::env::args().any(|a| a == "--test"))
}

/// Drives the timed closure for one benchmark.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    fn new() -> Bencher {
        Bencher {
            total: Duration::ZERO,
            iters: 0,
        }
    }

    /// Times `routine` over a calibrated number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if test_mode() {
            let start = Instant::now();
            black_box(routine());
            self.iters = 1;
            self.total = start.elapsed();
            return;
        }
        // Warmup.
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP {
            black_box(routine());
        }
        // Measure with doubling batches until the window is filled.
        let mut batch: u64 = 1;
        let start = Instant::now();
        loop {
            for _ in 0..batch {
                black_box(routine());
            }
            self.iters += batch;
            self.total = start.elapsed();
            if self.total >= MEASURE {
                break;
            }
            batch = batch.saturating_mul(2);
        }
    }

    /// Times `routine` on fresh inputs from `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if test_mode() {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.iters = 1;
            self.total = start.elapsed();
            return;
        }
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP {
            let input = setup();
            black_box(routine(input));
        }
        // One input at a time, setup excluded by pausing the clock:
        // pre-building a whole batch of inputs would hold every one of
        // them live at once (worker threads, queues), which distorts
        // what the routine is being measured against.
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
            if self.total >= MEASURE {
                break;
            }
        }
    }

    /// Like `iter_batched` with `&mut` access to the input.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.iter_batched(move || setup(), move |mut input| routine(&mut input), _size);
    }
}

/// The benchmark manager.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { _private: () }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl ToString) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl ToString, f: F) -> &mut Self {
        run_bench(&id.to_string(), None, f);
        self
    }
}

/// A named group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl ToString, f: F) -> &mut Self {
        run_bench(
            &format!("{}/{}", self.name, id.to_string()),
            self.throughput,
            f,
        );
        self
    }

    /// Finishes the group (reporting already happened per-bench).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, throughput: Option<Throughput>, mut f: F) {
    let mut bencher = Bencher::new();
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("{id:<40} (no iterations)");
        return;
    }
    let ns_per_iter = bencher.total.as_nanos() as f64 / bencher.iters as f64;
    let rate = |count: u64| {
        let per_sec = count as f64 * 1e9 / ns_per_iter;
        format_si(per_sec)
    };
    match throughput {
        Some(Throughput::Elements(n)) => println!(
            "{id:<40} {:>12} /iter  thrpt: {:>10} elem/s",
            format_time(ns_per_iter),
            rate(n)
        ),
        Some(Throughput::Bytes(n)) => println!(
            "{id:<40} {:>12} /iter  thrpt: {:>10} B/s",
            format_time(ns_per_iter),
            rate(n)
        ),
        None => println!("{id:<40} {:>12} /iter", format_time(ns_per_iter)),
    }
}

fn format_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn format_si(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2}K", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups (`--test` runs each
/// routine once; other CLI flags are ignored).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_counts() {
        let mut b = Bencher::new();
        let mut n = 0u64;
        b.iter(|| {
            n = n.wrapping_add(1);
            n
        });
        assert!(b.iters > 0);
        assert!(b.total > Duration::ZERO);
    }
}
