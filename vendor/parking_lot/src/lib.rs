#![allow(clippy::all)]
//! Offline stub of `parking_lot`.
//!
//! Wraps `std::sync` primitives with `parking_lot`'s panic-free API
//! (lock acquisition never returns `Result`; a poisoned lock is treated
//! as still usable, matching `parking_lot`'s poison-free semantics).

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{self, MutexGuard as StdMutexGuard};
use std::sync::{RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard};

/// A mutex that does not poison.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard for [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(StdMutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates the mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.inner.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock that does not poison.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(StdReadGuard<'a, T>);

/// Guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(StdWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates the lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.inner.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires the exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.inner.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_lock_and_into_inner() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }
}
