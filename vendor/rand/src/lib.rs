#![allow(clippy::all)]
//! Offline stub of the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, API-compatible subset of `rand` 0.8: the
//! [`RngCore`] / [`SeedableRng`] / [`Rng`] traits and a deterministic
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64). Streams are
//! reproducible from a seed but are **not** bit-compatible with the real
//! `rand` crate — everything in this workspace derives randomness from
//! explicit seeds, so only self-consistency matters.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations (never produced by the stub).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// The core RNG interface.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let word = self.next_u64().to_le_bytes();
            let n = (dest.len() - i).min(8);
            dest[i..i + n].copy_from_slice(&word[..n]);
            i += n;
        }
    }
    /// Fallible fill (infallible here).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of real `rand`).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::standard_sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f32::standard_sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly over the type's domain.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, RA: SampleRange<T>>(&mut self, range: RA) -> T {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s
    /// ChaCha-based `StdRng`; reproducible, not cryptographic).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> StdRng {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }

    /// Alias: the stub has no platform entropy, `SmallRng` = `StdRng`.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_eq!(a.next_u32(), b.next_u32());
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f: f64 = r.gen_range(0.5f64..0.75);
            assert!((0.5..0.75).contains(&f));
            let i: i64 = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_covers_buffer() {
        let mut r = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 37];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
