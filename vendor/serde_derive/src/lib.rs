#![allow(clippy::all)]
//! Offline stub of `serde_derive`.
//!
//! Generates value-model `serde::Serialize` / `serde::Deserialize`
//! impls (see the `serde` stub) by walking the raw `proc_macro` token
//! stream directly — no `syn`/`quote` dependency. Supports named
//! structs, tuple/newtype structs, unit structs, and enums with
//! unit/newtype/tuple/struct variants (externally tagged), plus the
//! `#[serde(skip)]` field attribute. Generic type parameters are not
//! supported (the workspace derives only concrete types).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
}

#[derive(Debug)]
enum Fields {
    Named(Vec<Field>),
    /// Per-position skip flags.
    Tuple(Vec<bool>),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Input {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

/// Derives `serde::Serialize` via the value model.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let ast = parse(input);
    gen_serialize(&ast).parse().expect("serde_derive stub: generated code failed to parse")
}

/// Derives `serde::Deserialize` via the value model.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let ast = parse(input);
    gen_deserialize(&ast).parse().expect("serde_derive stub: generated code failed to parse")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(i) if i.to_string() == s)
}

/// `#[serde(... skip ...)]` detection on an attribute's bracket group.
fn attr_is_serde_skip(tokens: &[TokenTree]) -> bool {
    let [TokenTree::Ident(id), TokenTree::Group(inner)] = tokens else {
        return false;
    };
    id.to_string() == "serde"
        && inner
            .stream()
            .into_iter()
            .any(|t| is_ident(&t, "skip"))
}

/// Skips `#[...]` attributes at `i`, returning whether any was
/// `#[serde(skip)]`.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    while *i < tokens.len() && is_punct(&tokens[*i], '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            skip |= attr_is_serde_skip(&inner);
            *i += 2;
        } else {
            *i += 1;
        }
    }
    skip
}

/// Skips `pub` / `pub(crate)` visibility at `i`.
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if *i < tokens.len() && is_ident(&tokens[*i], "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Advances past a type (or discriminant expression) up to a top-level
/// `,`, tracking `<`/`>` nesting. Leaves `i` past the comma (or at end).
fn skip_to_next_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut depth: i32 = 0;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth <= 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let skip = skip_attrs(&tokens, &mut i);
        skip_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1; // name
        i += 1; // ':'
        skip_to_next_comma(&tokens, &mut i);
        fields.push(Field { name, skip });
    }
    fields
}

fn parse_tuple_fields(group: &proc_macro::Group) -> Vec<bool> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut skips = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let skip = skip_attrs(&tokens, &mut i);
        skip_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_to_next_comma(&tokens, &mut i);
        skips.push(skip);
    }
    skips
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(parse_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g))
            }
            _ => Fields::Unit,
        };
        // Past an optional `= discriminant` and the trailing comma.
        skip_to_next_comma(&tokens, &mut i);
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    loop {
        assert!(i < tokens.len(), "serde_derive stub: no struct/enum found");
        skip_attrs(&tokens, &mut i);
        skip_vis(&tokens, &mut i);
        if is_ident(&tokens[i], "struct") || is_ident(&tokens[i], "enum") {
            break;
        }
        i += 1;
    }
    let is_enum = is_ident(&tokens[i], "enum");
    i += 1;
    let TokenTree::Ident(name) = &tokens[i] else {
        panic!("serde_derive stub: expected type name");
    };
    let name = name.to_string();
    i += 1;
    assert!(
        !matches!(tokens.get(i), Some(t) if is_punct(t, '<')),
        "serde_derive stub: generic types are not supported"
    );
    if is_enum {
        let Some(TokenTree::Group(body)) = tokens.get(i) else {
            panic!("serde_derive stub: expected enum body");
        };
        Input::Enum {
            name,
            variants: parse_variants(body),
        }
    } else {
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(parse_tuple_fields(g))
            }
            _ => Fields::Unit,
        };
        Input::Struct { name, fields }
    }
}

// ---------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let (name, body) = match input {
        Input::Struct { name, fields } => (name, ser_struct_body(fields)),
        Input::Enum { name, variants } => (name, ser_enum_body(name, variants)),
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_variables, clippy::all)]\n\
         impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

fn ser_struct_body(fields: &Fields) -> String {
    match fields {
        Fields::Named(fields) => {
            let mut body = String::from(
                "let mut entries: Vec<(String, serde::Value)> = Vec::new();\n",
            );
            for f in fields {
                if f.skip {
                    continue;
                }
                body.push_str(&format!(
                    "entries.push((\"{0}\".to_string(), serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            body.push_str("serde::Value::Map(entries)");
            body
        }
        Fields::Tuple(skips) if skips.len() == 1 => {
            "serde::Serialize::to_value(&self.0)".to_string()
        }
        Fields::Tuple(skips) => {
            let items: Vec<String> = skips
                .iter()
                .enumerate()
                .filter(|(_, skip)| !**skip)
                .map(|(idx, _)| format!("serde::Serialize::to_value(&self.{idx})"))
                .collect();
            format!("serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Fields::Unit => "serde::Value::Null".to_string(),
    }
}

fn ser_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.fields {
            Fields::Unit => {
                arms.push_str(&format!(
                    "{name}::{vn} => serde::Value::Str(\"{vn}\".to_string()),\n"
                ));
            }
            Fields::Tuple(skips) if skips.len() == 1 => {
                arms.push_str(&format!(
                    "{name}::{vn}(f0) => serde::Value::Map(vec![(\"{vn}\".to_string(), \
                     serde::Serialize::to_value(f0))]),\n"
                ));
            }
            Fields::Tuple(skips) => {
                let binds: Vec<String> = (0..skips.len()).map(|i| format!("f{i}")).collect();
                let items: Vec<String> = (0..skips.len())
                    .filter(|i| !skips[*i])
                    .map(|i| format!("serde::Serialize::to_value(f{i})"))
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vn}({}) => serde::Value::Map(vec![(\"{vn}\".to_string(), \
                     serde::Value::Seq(vec![{}]))]),\n",
                    binds.join(", "),
                    items.join(", ")
                ));
            }
            Fields::Named(fields) => {
                let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                let items: Vec<String> = fields
                    .iter()
                    .filter(|f| !f.skip)
                    .map(|f| {
                        format!(
                            "(\"{0}\".to_string(), serde::Serialize::to_value({0}))",
                            f.name
                        )
                    })
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vn} {{ {} }} => serde::Value::Map(vec![(\"{vn}\".to_string(), \
                     serde::Value::Map(vec![{}]))]),\n",
                    binds.join(", "),
                    items.join(", ")
                ));
            }
        }
    }
    format!("match self {{\n{arms}}}")
}

fn gen_deserialize(input: &Input) -> String {
    let (name, body) = match input {
        Input::Struct { name, fields } => (name, de_struct_body(name, fields)),
        Input::Enum { name, variants } => (name, de_enum_body(name, variants)),
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_variables, clippy::all)]\n\
         impl serde::Deserialize for {name} {{\n\
             fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n{body}\n}}\n\
         }}\n"
    )
}

fn de_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    if f.skip {
                        format!("{}: Default::default()", f.name)
                    } else {
                        format!("{0}: serde::de_field(v, \"{0}\")?", f.name)
                    }
                })
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Fields::Tuple(skips) if skips.len() == 1 => {
            format!("Ok({name}(serde::Deserialize::from_value(v)?))")
        }
        Fields::Tuple(skips) => {
            let inits: Vec<String> = skips
                .iter()
                .enumerate()
                .map(|(idx, skip)| {
                    if *skip {
                        "Default::default()".to_string()
                    } else {
                        format!("serde::de_index(v, {idx})?")
                    }
                })
                .collect();
            format!("Ok({name}({}))", inits.join(", "))
        }
        Fields::Unit => format!("let _ = v; Ok({name})"),
    }
}

fn de_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut data_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.fields {
            Fields::Unit => {
                unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
            }
            Fields::Tuple(skips) if skips.len() == 1 => {
                data_arms.push_str(&format!(
                    "\"{vn}\" => Ok({name}::{vn}(serde::Deserialize::from_value(inner)?)),\n"
                ));
            }
            Fields::Tuple(skips) => {
                let inits: Vec<String> = skips
                    .iter()
                    .enumerate()
                    .map(|(idx, skip)| {
                        if *skip {
                            "Default::default()".to_string()
                        } else {
                            format!("serde::de_index(inner, {idx})?")
                        }
                    })
                    .collect();
                data_arms.push_str(&format!(
                    "\"{vn}\" => Ok({name}::{vn}({})),\n",
                    inits.join(", ")
                ));
            }
            Fields::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        if f.skip {
                            format!("{}: Default::default()", f.name)
                        } else {
                            format!("{0}: serde::de_field(inner, \"{0}\")?", f.name)
                        }
                    })
                    .collect();
                data_arms.push_str(&format!(
                    "\"{vn}\" => Ok({name}::{vn} {{ {} }}),\n",
                    inits.join(", ")
                ));
            }
        }
    }
    format!(
        "match v {{\n\
             serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => Err(serde::DeError::msg(format!(\"unknown variant {{other:?}}\"))),\n\
             }},\n\
             serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                 let (tag, inner) = &entries[0];\n\
                 match tag.as_str() {{\n\
                     {data_arms}\
                     other => Err(serde::DeError::msg(format!(\"unknown variant {{other:?}}\"))),\n\
                 }}\n\
             }}\n\
             _ => Err(serde::DeError::expected(\"enum value\", v)),\n\
         }}"
    )
}
