#![allow(clippy::all)]
//! Offline stub of `serde`.
//!
//! The real `serde` is a visitor-based framework; this stub replaces it
//! with a small JSON-like value model: [`Serialize`] renders a type to a
//! [`Value`], [`Deserialize`] rebuilds it from one. The `derive` feature
//! re-exports `#[derive(Serialize, Deserialize)]` macros from the
//! companion `serde_derive` stub which generate value-model impls. The
//! `serde_json` stub renders [`Value`] to JSON text and parses it back,
//! so `to_string_pretty`/`from_str` round-trips work as the workspace
//! expects.
//!
//! Supported shapes: named structs, tuple/newtype structs, enums with
//! unit/tuple/struct variants (externally tagged, like real serde), and
//! the `#[serde(skip)]` field attribute (skipped on serialize, filled
//! from `Default` on deserialize).

#![forbid(unsafe_code)]

pub mod value;

pub use value::{DeError, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Types renderable to a [`Value`].
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types rebuildable from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds from a value tree.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] naming the mismatch.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// `serde::ser` compatibility alias.
pub mod ser {
    pub use crate::Serialize;
}

/// `serde::de` compatibility alias.
pub mod de {
    pub use crate::{DeError, Deserialize};
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| DeError::expected("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| DeError::msg(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| DeError::expected("integer", v))?;
                <$t>::try_from(n).map_err(|_| DeError::msg(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
impl_sint!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.as_f64().ok_or_else(|| DeError::expected("number", v))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::expected("single-char string", v)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(Into::into)
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(|items| items.into_iter().collect())
    }
}

impl<T: Serialize + std::hash::Hash + Eq> Serialize for std::collections::HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::hash::Hash + Eq> Deserialize for std::collections::HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(|items| items.into_iter().collect())
    }
}

/// Map keys renderable as JSON object keys.
pub trait MapKey: Sized {
    /// Renders the key.
    fn to_key(&self) -> String;
    /// Parses the key.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] if the key does not parse.
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_string())
    }
}

macro_rules! impl_mapkey_parse {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse().map_err(|_| DeError::msg(format!(
                    "bad map key {key:?} for {}", stringify!($t)
                )))
            }
        }
    )*};
}
impl_mapkey_parse!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

impl<K: MapKey + std::hash::Hash + Eq, V: Deserialize> Deserialize
    for std::collections::HashMap<K, V>
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::expected("object", v)),
        }
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::expected("object", v)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let Value::Seq(items) = v else {
                    return Err(DeError::expected("tuple (array)", v));
                };
                let expected = [$(stringify!($idx)),+].len();
                if items.len() != expected {
                    return Err(DeError::msg(format!(
                        "tuple length {} != {expected}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for std::net::Ipv4Addr {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for std::net::Ipv4Addr {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => s
                .parse()
                .map_err(|_| DeError::msg(format!("bad IPv4 address {s:?}"))),
            _ => Err(DeError::expected("IPv4 address string", v)),
        }
    }
}

impl Serialize for std::net::Ipv6Addr {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for std::net::Ipv6Addr {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => s
                .parse()
                .map_err(|_| DeError::msg(format!("bad IPv6 address {s:?}"))),
            _ => Err(DeError::expected("IPv6 address string", v)),
        }
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            ("nanos".to_string(), Value::U64(self.subsec_nanos() as u64)),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let secs: u64 = de_field(v, "secs")?;
        let nanos: u32 = de_field(v, "nanos")?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            _ => Err(DeError::expected("null", v)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------
// Derive-support helpers (called from serde_derive-generated code)
// ---------------------------------------------------------------------

/// Looks up a named field in a map value and deserializes it. Missing
/// fields deserialize from `Null` (so `Option` fields default to `None`).
///
/// # Errors
///
/// Returns [`DeError`] for non-map values or field-level failures.
pub fn de_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    let Value::Map(entries) = v else {
        return Err(DeError::expected("object", v));
    };
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, field)) => {
            T::from_value(field).map_err(|e| DeError::msg(format!("field {name:?}: {e}")))
        }
        None => T::from_value(&Value::Null)
            .map_err(|_| DeError::msg(format!("missing field {name:?}"))),
    }
}

/// Indexes a sequence value (tuple-struct fields) and deserializes it.
///
/// # Errors
///
/// Returns [`DeError`] for non-seq values or index-level failures.
pub fn de_index<T: Deserialize>(v: &Value, idx: usize) -> Result<T, DeError> {
    let Value::Seq(items) = v else {
        return Err(DeError::expected("array", v));
    };
    let item = items
        .get(idx)
        .ok_or_else(|| DeError::msg(format!("missing tuple field {idx}")))?;
    T::from_value(item).map_err(|e| DeError::msg(format!("tuple field {idx}: {e}")))
}
