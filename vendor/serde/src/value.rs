//! The JSON-like value model shared by the serde/serde_json stubs.

use std::fmt;

/// An owned value tree, the intermediate representation between typed
/// Rust data and JSON text.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (serialized without a decimal point).
    I64(i64),
    /// Unsigned integer (serialized without a decimal point).
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object; insertion order is preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Integral view accepting both signed and unsigned storage.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) => u64::try_from(*n).ok(),
            Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// Integral view accepting both signed and unsigned storage.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) => i64::try_from(*n).ok(),
            Value::F64(f) if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 => {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// Numeric view: any numeric storage widens to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(f) => Some(*f),
            Value::I64(n) => Some(*n as f64),
            Value::U64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Short tag for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }

    /// Map-field lookup (`None` for non-maps or absent keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization failure: a shape or type mismatch in the value tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// An error from a preformatted message.
    pub fn msg(msg: impl Into<String>) -> DeError {
        DeError { msg: msg.into() }
    }

    /// A "expected X, found Y" mismatch error.
    pub fn expected(what: &str, found: &Value) -> DeError {
        DeError {
            msg: format!("expected {what}, found {}", found.kind()),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}
