#![allow(clippy::all)]
//! Offline stub of `serde_json`.
//!
//! Renders the serde stub's [`Value`] model to JSON text and parses it
//! back. Supports `to_string` / `to_string_pretty` / `from_str` and a
//! minimal [`json!`] macro (flat objects/arrays whose values are
//! `Serialize` expressions — sufficient for this workspace).

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// JSON serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error::new(e.to_string())
    }
}

/// Renders a [`Value`] from any `Serialize` type.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serializes to compact JSON.
///
/// # Errors
///
/// Never fails in this stub; the `Result` mirrors the real API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Never fails in this stub; the `Result` mirrors the real API.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any `Deserialize` type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_complete(s)?;
    T::from_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        // Rust's `{}` prints integral floats without a fraction ("1");
        // that still round-trips because numeric deserializers widen.
        out.push_str(&f.to_string());
    } else {
        // Real serde_json rejects these; emitting null keeps us total.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}",
                expected as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::new(format!("expected {kw:?} at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected byte {:?} at {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not reconstructed;
                            // our writer never emits them.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume a full UTF-8 scalar, not a single byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("bad number {text:?}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .or_else(|_| text.parse::<f64>().map(Value::F64))
                .map_err(|_| Error::new(format!("bad number {text:?}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .or_else(|_| text.parse::<f64>().map(Value::F64))
                .map_err(|_| Error::new(format!("bad number {text:?}")))
        }
    }
}

/// Builds a [`Value`] from literal-ish syntax. Supports `null`, flat
/// `{ "key": expr, ... }` objects, `[expr, ...]` arrays, and bare
/// `Serialize` expressions; nested braces must be built via nested
/// `json!` calls bound to locals.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $val:expr),* $(,)? }) => {
        $crate::Value::Map(vec![ $( (($key).to_string(), $crate::to_value(&$val)) ),* ])
    };
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Seq(vec![ $( $crate::to_value(&$val) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Value::Map(vec![
            ("name".to_string(), Value::Str("a \"b\"\n".to_string())),
            (
                "items".to_string(),
                Value::Seq(vec![Value::U64(1), Value::I64(-2), Value::F64(1.5)]),
            ),
            ("none".to_string(), Value::Null),
            ("ok".to_string(), Value::Bool(true)),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn parse_rejects_trailing_garbage() {
        assert!(from_str::<Value>("{} x").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn json_macro_builds_flat_object() {
        let rows = vec![1u64, 2, 3];
        let v = json!({ "model": rows, "label": "x" });
        let text = to_string(&v).unwrap();
        assert_eq!(text, r#"{"model":[1,2,3],"label":"x"}"#);
    }

    #[test]
    fn typed_roundtrip_via_traits() {
        let orig: Vec<(String, u32)> = vec![("a".to_string(), 1), ("b".to_string(), 2)];
        let text = to_string_pretty(&orig).unwrap();
        let back: Vec<(String, u32)> = from_str(&text).unwrap();
        assert_eq!(back, orig);
    }
}
